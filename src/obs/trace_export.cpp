#include "obs/trace_export.hpp"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace cilkm::obs {

namespace {

using rt::TraceEvent;
using rt::TraceRecord;

/// Events that begin a duration slice on their worker's track.
bool is_opener(TraceEvent e) noexcept {
  return e == TraceEvent::kLaunch || e == TraceEvent::kResumeByThief ||
         e == TraceEvent::kResumeSelf;
}

/// Events that end the running slice (openers also end it — a resume both
/// closes the thief's stolen-branch slice and opens the continuation's).
bool is_closer(TraceEvent e) noexcept {
  return is_opener(e) || e == TraceEvent::kPark ||
         e == TraceEvent::kDepositRight || e == TraceEvent::kRootDone;
}

const char* slice_name(TraceEvent e) noexcept {
  return e == TraceEvent::kLaunch ? "strand" : "resume";
}

/// Microseconds (Chrome-trace native unit) since the first record.
double rel_us(std::uint64_t t, std::uint64_t t0) noexcept {
  return static_cast<double>(t - t0) / 1000.0;
}

void emit_number(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out << buf;
}

void emit_frame_arg(std::ostream& out, const void* frame) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%" PRIxPTR,
                reinterpret_cast<std::uintptr_t>(frame));
  out << "\"args\":{\"frame\":\"" << buf << "\"}";
}

struct EventList {
  std::ostream& out;
  bool first = true;

  void begin(const char* ph) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"ph\":\"" << ph << "\",\"pid\":1,";
  }
};

}  // namespace

void write_chrome_trace(const std::vector<TraceRecord>& records,
                        const MetricsSnapshot& metrics, std::ostream& out) {
  const std::uint64_t t0 = records.empty() ? 0 : records.front().time_ns;
  const std::uint64_t t_end = records.empty() ? 0 : records.back().time_ns;

  // A ring that snapshotted exactly full may have overwritten its oldest
  // events; flag it so consumers (trace_check.py) relax pairing checks.
  std::array<std::size_t, rt::Tracer::kMaxWorkers> per_worker_count{};
  for (const TraceRecord& rec : records) ++per_worker_count[rec.worker];
  const bool ring_wrapped =
      std::any_of(per_worker_count.begin(), per_worker_count.end(),
                  [](std::size_t n) { return n >= rt::Tracer::kRingCapacity; });

  out << "{\n\"schema\":\"cilkm-trace-v1\",\n\"displayTimeUnit\":\"ms\",\n";
  out << "\"otherData\":{";
  out << "\"ring_wrapped\":" << (ring_wrapped ? 1 : 0);
  for (const Metric& m : metrics.flatten()) {
    out << ",\"" << m.name << "\":";
    emit_number(out, m.value);
  }
  out << "},\n\"traceEvents\":[\n";

  EventList ev{out};

  // Metadata: name the process and every worker track present in the trace.
  ev.begin("M");
  out << "\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"cilkm\"}}";
  for (unsigned w = 0; w < rt::Tracer::kMaxWorkers; ++w) {
    if (per_worker_count[w] == 0) continue;
    ev.begin("M");
    out << "\"tid\":" << w
        << ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker " << w
        << "\"}}";
    ev.begin("M");
    out << "\"tid\":" << w
        << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":" << w
        << "}}";
  }

  // Duration slices per worker track, from the open/close grammar above.
  struct OpenSlice {
    bool open = false;
    std::uint64_t start_ns = 0;
    TraceEvent opener = TraceEvent::kLaunch;
    const void* frame = nullptr;
  };
  std::array<OpenSlice, rt::Tracer::kMaxWorkers> open{};
  auto close_slice = [&](unsigned w, std::uint64_t end_ns) {
    OpenSlice& s = open[w];
    if (!s.open) return;
    s.open = false;
    ev.begin("X");
    out << "\"tid\":" << w << ",\"name\":\"" << slice_name(s.opener)
        << "\",\"ts\":";
    emit_number(out, rel_us(s.start_ns, t0));
    out << ",\"dur\":";
    emit_number(out, rel_us(end_ns, s.start_ns));
    out << ",";
    emit_frame_arg(out, s.frame);
    out << "}";
  };
  for (const TraceRecord& rec : records) {
    if (is_closer(rec.event)) close_slice(rec.worker, rec.time_ns);
    if (is_opener(rec.event)) {
      open[rec.worker] = {true, rec.time_ns, rec.event, rec.frame};
    }
  }
  for (unsigned w = 0; w < rt::Tracer::kMaxWorkers; ++w) {
    close_slice(w, t_end);
  }

  // One instant per raw record: the full event stream stays inspectable.
  for (const TraceRecord& rec : records) {
    ev.begin("i");
    out << "\"tid\":" << static_cast<unsigned>(rec.worker) << ",\"s\":\"t\","
        << "\"name\":\"" << rt::to_string(rec.event) << "\",\"ts\":";
    emit_number(out, rel_us(rec.time_ns, t0));
    out << ",";
    emit_frame_arg(out, rec.frame);
    out << "}";
  }

  // Cumulative scheduler counters, sampled so huge traces stay ~512 counter
  // points; the final sample always lands so totals read off the right edge.
  if (!records.empty()) {
    const std::size_t stride = std::max<std::size_t>(1, records.size() / 512);
    std::uint64_t steals = 0, merges = 0, parks = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
      const TraceRecord& rec = records[i];
      steals += rec.event == TraceEvent::kSteal;
      merges += rec.event == TraceEvent::kMerge;
      parks += rec.event == TraceEvent::kPark;
      if (i % stride != 0 && i + 1 != records.size()) continue;
      ev.begin("C");
      out << "\"tid\":0,\"name\":\"sched\",\"ts\":";
      emit_number(out, rel_us(rec.time_ns, t0));
      out << ",\"args\":{\"steals\":" << steals << ",\"merges\":" << merges
          << ",\"parks\":" << parks << "}}";
    }
  }

  out << "\n]\n}\n";
}

bool export_chrome_trace_file(const std::string& path,
                              const MetricsSnapshot& metrics) {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(rt::Tracer::instance().snapshot(), metrics, out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace cilkm::obs
