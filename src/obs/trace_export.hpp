// Chrome trace_event exporter: converts the Tracer's per-worker rings into
// the JSON object format chrome://tracing and Perfetto load directly. Per
// worker track (pid 1, tid = worker id):
//
//   - X duration slices reconstructed from the launch/park/resume grammar:
//     kLaunch opens a "strand" slice, kResumeByThief/kResumeSelf close the
//     running slice and open a "resume" slice, kPark / kDepositRight /
//     kRootDone close it.
//   - an "i" instant for EVERY raw record (named by to_string(event)), so
//     nothing the rings retained is invisible in the timeline.
//   - a "C" counter track ("sched") sampling cumulative steal / merge /
//     park counts over trace time.
//
// The run's MetricsSnapshot rides in otherData (flattened), together with
// "schema": "cilkm-trace-v1" and a "ring_wrapped" flag warning that slice
// pairing may be truncated at the front (a full ring overwrote its oldest
// events). Timestamps are microseconds relative to the first record.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/trace.hpp"

namespace cilkm::obs {

/// Serialize `records` (time-ordered, as from Tracer::snapshot()) plus the
/// flattened `metrics` to `out` as one Chrome-trace JSON object.
void write_chrome_trace(const std::vector<rt::TraceRecord>& records,
                        const MetricsSnapshot& metrics, std::ostream& out);

/// Snapshot the process tracer and write it to `path`. Returns false when
/// the file cannot be opened or written. Call after quiescence (the
/// Tracer::snapshot contract).
bool export_chrome_trace_file(const std::string& path,
                              const MetricsSnapshot& metrics);

}  // namespace cilkm::obs
