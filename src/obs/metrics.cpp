#include "obs/metrics.hpp"

#include "runtime/scheduler.hpp"
#include "runtime/trace.hpp"

namespace cilkm::obs {

MetricsSnapshot capture(rt::Scheduler* sched) {
  MetricsSnapshot snap;
  if (sched != nullptr) {
    snap.workers = sched->num_workers();
    snap.per_worker.reserve(snap.workers);
    for (unsigned i = 0; i < snap.workers; ++i) {
      snap.per_worker.push_back(sched->worker(i).stats());
      snap.aggregate += snap.per_worker.back();
    }
  }
  auto& alloc = mem::InternalAlloc::instance();
  alloc.stats_sync();  // fold this thread's in-magazine deltas in
  for (std::size_t t = 0; t < mem::kNumTags; ++t) {
    snap.mem_tags[t] = alloc.tag_stats(static_cast<mem::AllocTag>(t));
  }
  snap.trace_dropped = rt::Tracer::instance().dropped();
  for (unsigned s = 0; s < chaos::kNumSites; ++s) {
    snap.chaos_sites[s] = chaos::site_stats(static_cast<chaos::Site>(s));
  }
  return snap;
}

std::vector<Metric> MetricsSnapshot::flatten() const {
  std::vector<Metric> out;
  out.push_back({"workers", static_cast<double>(workers)});
  for (unsigned c = 0; c < static_cast<unsigned>(StatCounter::kCount); ++c) {
    const auto counter = static_cast<StatCounter>(c);
    out.push_back({std::string(to_string(counter)),
                   static_cast<double>(aggregate[counter])});
  }
  for (std::size_t t = 0; t < WorkerStats::kStealTiers; ++t) {
    const std::string tier = std::to_string(t);
    out.push_back({"steal_ns_t" + tier,
                   static_cast<double>(aggregate.steal_lat_ns[t])});
    out.push_back({"steal_count_t" + tier,
                   static_cast<double>(aggregate.steal_lat_count[t])});
    for (std::size_t b = 0; b < WorkerStats::kStealLatBuckets; ++b) {
      out.push_back({"steal_hist_t" + tier + "_b" + std::to_string(b),
                     static_cast<double>(aggregate.steal_lat_hist[t][b])});
    }
  }
  for (std::size_t t = 0; t < mem::kNumTags; ++t) {
    const mem::TagStats& ts = mem_tags[t];
    const std::string prefix =
        std::string("mem.") + mem::to_string(static_cast<mem::AllocTag>(t)) +
        ".";
    out.push_back({prefix + "live_blocks", static_cast<double>(ts.live_blocks)});
    out.push_back({prefix + "peak_blocks", static_cast<double>(ts.peak_blocks)});
    out.push_back({prefix + "live_bytes", static_cast<double>(ts.live_bytes)});
    out.push_back({prefix + "peak_bytes", static_cast<double>(ts.peak_bytes)});
    out.push_back({prefix + "allocs", static_cast<double>(ts.allocs)});
    out.push_back({prefix + "refills", static_cast<double>(ts.refills)});
    out.push_back({prefix + "flushes", static_cast<double>(ts.flushes)});
    out.push_back(
        {prefix + "carved_blocks", static_cast<double>(ts.carved_blocks)});
  }
  for (unsigned s = 0; s < chaos::kNumSites; ++s) {
    const std::string prefix =
        std::string("chaos.") + chaos::to_string(static_cast<chaos::Site>(s)) +
        ".";
    out.push_back(
        {prefix + "consults", static_cast<double>(chaos_sites[s].consults)});
    out.push_back(
        {prefix + "injected", static_cast<double>(chaos_sites[s].injected)});
  }
  out.push_back({"trace_dropped_records", static_cast<double>(trace_dropped)});
  return out;
}

}  // namespace cilkm::obs
