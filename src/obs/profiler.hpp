// Cilkview-style work/span profiler (the scalability-analyzer lineage of the
// source paper's runtime family). When enabled, fork2join and fiber_main
// maintain a per-strand ProfileState alongside the pedigree: every strand's
// elapsed time is charged to both `work` (T1) and `span`, and at each join
// the two branches' subcomputation totals combine as
//
//   work   = work(spawner-prefix) + work(a) + work(b)
//   span   = span(spawner-prefix) + max(span(a), span(b))
//   burden = burden(prefix) + max(burden(a) + victim protocol costs,
//                                 burden(b) + steal + thief protocol costs)
//
// so a run's final state holds T1 (total work), T-infinity (critical-path
// span), parallelism T1/T-inf, and a *burdened* span that additionally
// charges the scheduling costs actually incurred along each path — the steal
// latency that launched a stolen branch plus the view-transferal (deposit)
// and hypermerge time of its join — to the critical path. Burdened
// parallelism T1/burdened-span is the paper-facing number: how much
// parallelism survives the reduce machinery the paper's Figure 8 attributes.
//
// The state travels exactly like the pedigree: a thread-local re-seated at
// every point a strand (re)starts on an OS thread, with stolen branches
// publishing their totals through SpawnFrame::prof_* before the join
// arrival. All hooks are gated on profiler_enabled(): with the profiler off,
// the fork2join fast path pays one relaxed load and a predicted branch.
//
// Accounting is only meaningful for runs that complete without escaping
// exceptions, and the enable flag must not change while a run is in flight.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/timing.hpp"

namespace cilkm::obs {

/// The calling strand's accumulators for the innermost open subcomputation.
/// `work`/`span`/`burden` are ns totals since the subcomputation began;
/// `strand_start` is when the currently running strand was (re)started.
struct ProfileState {
  std::uint64_t work = 0;
  std::uint64_t span = 0;
  std::uint64_t burden = 0;
  std::uint64_t strand_start = 0;
};

namespace detail {
extern std::atomic<bool> g_profiler_enabled;
}  // namespace detail

/// Cheap global gate read on every fork2join. Relaxed: toggling is only
/// legal while no scheduler run is in flight (the driver toggles between
/// cells), so no ordering is needed against the accounting it guards.
inline bool profiler_enabled() noexcept {
  return detail::g_profiler_enabled.load(std::memory_order_relaxed);
}

/// The current strand's profile state. Deliberately OUT OF LINE and noinline
/// for the same reason as rt::current_pedigree(): fibers migrate between OS
/// threads at joins, and a CSE'd thread-local address would charge a resumed
/// strand's time to the thread it departed. Re-fetch after any fork2join or
/// scheduler call; never cache across them.
ProfileState& current_profile() noexcept;

/// Start timing a strand on the current thread.
inline void strand_begin(ProfileState& ps) noexcept {
  ps.strand_start = now_ns();
}

/// Close the running strand: charge its elapsed time to work, span, and
/// burden alike (a strand is on its own critical path by definition).
inline void strand_end(ProfileState& ps) noexcept {
  const std::uint64_t d = now_ns() - ps.strand_start;
  ps.work += d;
  ps.span += d;
  ps.burden += d;
}

/// Accumulated totals over the runs recorded since the last reset(), summed
/// so multi-rep cells report per-run means without the collector caring how
/// many reps the driver chose.
struct RunProfile {
  std::uint64_t runs = 0;
  std::uint64_t work_ns = 0;
  std::uint64_t span_ns = 0;
  std::uint64_t burdened_span_ns = 0;

  double parallelism() const noexcept {
    return span_ns == 0 ? 0.0
                        : static_cast<double>(work_ns) /
                              static_cast<double>(span_ns);
  }
  double burdened_parallelism() const noexcept {
    return burdened_span_ns == 0 ? 0.0
                                 : static_cast<double>(work_ns) /
                                       static_cast<double>(burdened_span_ns);
  }
};

/// Process-wide collector. fiber_main's root-completion path records one
/// entry per scheduler run; readers consume totals after run() returns
/// (quiescence orders the plain fields, exactly like WorkerStats).
class Profiler {
 public:
  static Profiler& instance();

  void enable() noexcept {
    detail::g_profiler_enabled.store(true, std::memory_order_relaxed);
  }
  void disable() noexcept {
    detail::g_profiler_enabled.store(false, std::memory_order_relaxed);
  }

  void reset() noexcept { totals_ = {}; }

  /// Root-done hook: `final_state` is the root strand's combined totals.
  void record_run(const ProfileState& final_state) noexcept {
    ++totals_.runs;
    totals_.work_ns += final_state.work;
    totals_.span_ns += final_state.span;
    totals_.burdened_span_ns += final_state.burden;
  }

  RunProfile totals() const noexcept { return totals_; }

 private:
  RunProfile totals_;
};

}  // namespace cilkm::obs
