#include "obs/profiler.hpp"

namespace cilkm::obs {

namespace detail {
std::atomic<bool> g_profiler_enabled{false};
}  // namespace detail

namespace {
thread_local ProfileState tls_profile;
}  // namespace

// Out of line and noinline on purpose — see the declaration (and the twin
// comment on rt::current_pedigree()): an inlined accessor would let the
// thread-local's address survive a fiber migration and charge strand time to
// the departed thread's accumulators.
__attribute__((noinline)) ProfileState& current_profile() noexcept {
  return tls_profile;
}

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

}  // namespace cilkm::obs
