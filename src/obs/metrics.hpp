// Unified metrics registry: one typed snapshot of everything the runtime
// counts — WorkerStats (per worker and aggregated), steal-latency
// histograms, the internal allocator's per-tag footprint, and the tracer's
// drop counter. Both emission surfaces consume this one schema: the
// cilkm_run JSON report (driver.cpp) and the Chrome-trace exporter's
// otherData block (trace_export.cpp), replacing the three hand-rolled
// emission paths that previously read the sources directly.
//
// capture() takes relaxed/plain snapshots; call it only on a quiesced
// scheduler (Scheduler::run returning gives the happens-before, exactly the
// WorkerStats contract).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "chaos/chaos.hpp"
#include "mem/internal_alloc.hpp"
#include "util/stats.hpp"

namespace cilkm::rt {
class Scheduler;
}  // namespace cilkm::rt

namespace cilkm::obs {

/// One flattened name/value pair, the lowest common denominator both
/// consumers speak (JSON metric rows, trace otherData entries).
struct Metric {
  std::string name;
  double value = 0.0;
};

struct MetricsSnapshot {
  /// Pool width, 0 when captured without a scheduler (mem/trace only).
  unsigned workers = 0;

  /// Sum over per_worker (empty aggregate when workers == 0).
  WorkerStats aggregate;
  std::vector<WorkerStats> per_worker;

  /// Internal-allocator footprint per tag, post stats_sync().
  std::array<mem::TagStats, mem::kNumTags> mem_tags{};

  /// Events the tracer had to discard (worker id beyond its ring table).
  std::uint64_t trace_dropped = 0;

  /// Fault-injection activity per chaos site (all zero when disarmed).
  std::array<chaos::SiteStats, chaos::kNumSites> chaos_sites{};

  /// Flatten to stable names: every StatCounter under its to_string() name,
  /// steal tiers as steal_ns_t<t> / steal_count_t<t> / steal_hist_t<t>_b<b>,
  /// allocator tags as mem.<tag>.<field>, chaos sites as
  /// chaos.<site>.consults / chaos.<site>.injected, plus workers and
  /// trace_dropped_records.
  std::vector<Metric> flatten() const;
};

/// Snapshot all metric sources. `sched` may be null (no worker rows); it
/// must be quiesced otherwise. Folds the calling thread's allocator
/// magazine deltas in (InternalAlloc::stats_sync) before reading tag stats.
MetricsSnapshot capture(rt::Scheduler* sched);

}  // namespace cilkm::obs
