// The scenario fuzzer: composes random reducer monoids × workload shapes ×
// view-store policies × scheduler settings from a single seed, verifies
// every composite against its serial elision, and replays any failure from
// the seed alone. Driven by cilkm_run --fuzz / --fuzz-seed / --fuzz-iters
// and by the bounded fuzz sweep registered in CTest.
//
// Replay discipline: iteration i of a sweep over base seed S runs the
// composite drawn from seed S + i, so a reported failure at seed X replays
// in isolation with `cilkm_run --fuzz --fuzz-seed 0xX --fuzz-iters 1`. The
// draw streams inside a composite come from the DotMix DPRNG
// (util/dprng.hpp), so a replay reproduces the failure under ANY schedule —
// the property the spawn-pedigree runtime exists to provide.
#pragma once

#include <cstdint>
#include <vector>

#include "workloads/workload.hpp"

namespace cilkm::workloads {

struct FuzzOptions {
  std::uint64_t seed = kDefaultSeed;  ///< base seed of the sweep
  int iters = 25;                     ///< composites to run (seed, seed+1, …)
  unsigned scale = 1;                 ///< input-size multiplier per composite
  /// Policies the composite draw may select from (empty = all three).
  std::vector<PolicyKind> policies;
  /// Worker counts the composite draw may select from (empty = {1, 2, 4}).
  std::vector<unsigned> workers;
  /// Arm deterministic fault injection (src/chaos/) for the whole sweep.
  /// Composites still verify against their serial elisions — chaos consults
  /// use the pure pedigree hash, so injected faults never perturb workload
  /// draw streams; a composite aborted by an injected allocator OOM is
  /// reported "ok" with a chaos-oom detail (its verify is skipped).
  bool chaos = false;
  double chaos_p = 0.02;         ///< per-consult injection probability
  std::uint64_t chaos_seed = 0;  ///< 0 = derive deterministically from seed
  std::uint32_t chaos_sites = 0; ///< chaos::site_bit mask; 0 = all sites
};

/// Name of the artifact written (in the working directory) when at least
/// one composite fails: one line per failure with the exact replay command.
/// CI uploads it so a red fuzz job always carries its seeds.
inline constexpr const char* kFuzzFailureArtifact = "FUZZ_failing_seeds.txt";

/// Run the sweep; prints one line per composite and a summary. Returns the
/// number of failing composites (0 = every composite matched its serial
/// elision bit for bit).
int run_fuzz(const FuzzOptions& opts);

}  // namespace cilkm::workloads
