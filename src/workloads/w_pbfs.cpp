// PBFS (the examples/pbfs_demo.cpp run, registered): parallel breadth-first
// search with bag reducers over an RMAT graph, verified distance-for-
// distance against serial BFS — the paper's Section 8 application.
#include <algorithm>
#include <cstdint>

#include "pbfs/pbfs.hpp"
#include "runtime/api.hpp"
#include "util/timing.hpp"
#include "workloads/workload.hpp"

namespace cilkm::workloads {
namespace {

template <typename Policy>
struct Pbfs {
  static RunResult run(const RunConfig& cfg) {
    using namespace cilkm::pbfs;
    const unsigned scale = std::min(9u + cfg.scale, 20u);
    const Graph g =
        rmat(scale, (1ull << scale) * 8, 0.45, 0.22, 0.22, cfg.seed);

    const auto expect = serial_bfs(g, 0);

    BfsResult got;
    const auto t0 = now_ns();
    run_cell(cfg, [&] { got = pbfs<Policy>(g, 0); });
    const auto t1 = now_ns();

    RunResult out;
    out.seconds = static_cast<double>(t1 - t0) / 1e9;
    out.items = g.num_edges();
    out.verified =
        got.dist == expect.dist && got.num_layers == expect.num_layers;
    out.detail =
        out.verified
            ? "distances identical to serial BFS over " +
                  std::to_string(g.num_edges()) + " edges, " +
                  std::to_string(got.reducer_lookups) + " bag lookups"
            : "BFS distances differ from serial reference";
    return out;
  }
};

}  // namespace

void register_pbfs(Registry& r) {
  r.add(make_workload<Pbfs>(
      "pbfs", "bag-reducer parallel BFS on an RMAT graph vs serial BFS"));
}

}  // namespace cilkm::workloads
