// TLMM kernel-design walkthrough (the examples/tlmm_sim.cpp scenario,
// registered): runs the paper's Section 4–7 machinery on the *software*
// TLMM subsystem — sys_palloc, sys_pmap of the same VA to different frames,
// lookups through the simulated page-table walk, and view transferal via
// the mapping strategy. Policy-independent (it exercises the tlmm/ layer
// below the view stores), so all three policies run the same simulation.
#include <cstdint>

#include "spa/spa_map.hpp"
#include "tlmm/address_space.hpp"
#include "util/timing.hpp"
#include "workloads/workload.hpp"

namespace cilkm::workloads {
namespace {

using namespace cilkm::tlmm;

// A toy "view": a long living in the shared heap region.
struct HeapAllocator {
  AddressSpace& as;
  PageDescriptorManager& pdm;
  std::uint64_t next_va = kTlmmRegionBytes;  // shared region starts here
  std::uint64_t bump = 0;

  std::uint64_t alloc_long(long initial) {
    if (bump == 0 || bump + sizeof(long) > kPageSize) {
      as.map_shared(next_va += kPageSize, pdm.palloc());
      bump = 0;
    }
    const std::uint64_t va = next_va + bump;
    bump += sizeof(long);
    as.write<long>(/*any thread*/ 1, va, initial);
    return va;
  }
};

std::uint64_t lookup(AddressSpace& as, ThreadId tid, std::uint64_t tlmm_addr) {
  return as.read<std::uint64_t>(tid, tlmm_addr);
}

template <typename Policy>
struct TlmmSim {
  static RunResult run(const RunConfig& cfg) {
    const long updates = 100 * static_cast<long>(cfg.scale);

    const auto t0 = now_ns();
    PageDescriptorManager pdm;
    AddressSpace as(pdm);
    as.attach_thread(1);
    as.attach_thread(2);
    HeapAllocator heap{as, pdm};

    // Both workers map their own physical page at the SAME virtual address.
    const std::uint32_t pd_w1 = pdm.palloc();
    const std::uint32_t pd_w2 = pdm.palloc();
    const std::uint64_t spa_base = 64 * kPageSize;
    const std::uint32_t m1[] = {pd_w1};
    const std::uint32_t m2[] = {pd_w2};
    as.pmap(1, spa_base, m1);
    as.pmap(2, spa_base, m2);
    const std::uint64_t tlmm_addr = spa_base + spa::slot_offset(0, 3);

    // Each worker installs and updates its own local view.
    const std::uint64_t view1 = heap.alloc_long(0);
    const std::uint64_t view2 = heap.alloc_long(0);
    as.write<std::uint64_t>(1, tlmm_addr, view1);
    as.write<std::uint64_t>(2, tlmm_addr, view2);

    for (long i = 0; i < updates; ++i) {
      const ThreadId tid = (i % 2) ? 1 : 2;
      const std::uint64_t view_va = lookup(as, tid, tlmm_addr);
      as.write<long>(tid, view_va, as.read<long>(tid, view_va) + 1);
    }

    // Same tlmm_addr must resolve to different views per thread.
    const bool views_private = lookup(as, 1, tlmm_addr) == view1 &&
                               lookup(as, 2, tlmm_addr) == view2 &&
                               view1 != view2;

    // View transferal by the mapping strategy: worker 2 maps worker 1's SPA
    // page into a scratch range and hypermerges left ⊗ right.
    const std::uint64_t scratch = 4096 * kPageSize;
    const std::uint32_t pub[] = {pd_w1};
    as.pmap(2, scratch, pub);
    const auto left_view_va =
        as.read<std::uint64_t>(2, scratch + spa::slot_offset(0, 3));
    const long left = as.read<long>(2, left_view_va);
    const auto right_view_va = lookup(as, 2, tlmm_addr);
    const long right = as.read<long>(2, right_view_va);
    as.write<long>(2, left_view_va, left + right);
    const std::uint32_t unmap[] = {kPdNull};
    as.pmap(2, scratch, unmap);

    const long reduced = as.read<long>(2, left_view_va);
    const auto t1 = now_ns();

    RunResult out;
    out.seconds = static_cast<double>(t1 - t0) / 1e9;
    out.items = static_cast<std::uint64_t>(updates);
    out.verified = views_private && reduced == updates;
    out.detail =
        out.verified
            ? "same VA, private views; mapped hypermerge recovered all " +
                  std::to_string(updates) + " updates"
            : "simulated TLMM walkthrough produced " +
                  std::to_string(reduced) + ", expected " +
                  std::to_string(updates);
    return out;
  }
};

}  // namespace

void register_tlmm_sim(Registry& r) {
  r.add(make_workload<TlmmSim>(
      "tlmm_sim", "software-TLMM walkthrough: sys_pmap views + mapped merge"));
}

}  // namespace cilkm::workloads
