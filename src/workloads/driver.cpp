#include "workloads/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "bench/harness.hpp"

namespace cilkm::workloads {

namespace {

constexpr const char* kUsage =
    "usage: cilkm_run [--list] [--workload NAME|all]... [--policy mm|hypermap|flat|all]...\n"
    "                 [--workers N[,N...]] [--scale S] [--seed X] [--reps R]\n"
    "                 [--figure NAME|none]\n"
    "\n"
    "Runs registered workload cells (workload x policy x workers); every cell\n"
    "verifies itself against a serial reference. Exits nonzero if any cell\n"
    "fails verification. Writes BENCH_<figure>.json unless --figure none.\n";

bool parse_workers_list(const char* text, std::vector<unsigned>* out) {
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(p, &end, 10);
    if (end == p || v == 0 || v > 4096) return false;
    out->push_back(static_cast<unsigned>(v));
    p = end;
    if (*p == ',') ++p;
    else if (*p != '\0') return false;
  }
  return !out->empty();
}

}  // namespace

std::vector<unsigned> default_worker_counts() {
  std::vector<unsigned> out{1, 2, std::max(1u, std::thread::hardware_concurrency())};
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool parse_driver_options(int argc, char** argv, DriverOptions* out) {
  auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n%s", argv[i], kUsage);
      return false;
    }
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      out->list_only = true;
    } else if (std::strcmp(arg, "--workload") == 0) {
      if (!need_value(i)) return false;
      const std::string name = argv[++i];
      if (name != "all") out->workload_names.push_back(name);
    } else if (std::strcmp(arg, "--policy") == 0) {
      if (!need_value(i)) return false;
      const std::string name = argv[++i];
      if (name == "all") continue;
      PolicyKind kind;
      if (!parse_policy(name, &kind)) {
        std::fprintf(stderr, "unknown policy '%s'\n%s", name.c_str(), kUsage);
        return false;
      }
      out->policies.push_back(kind);
    } else if (std::strcmp(arg, "--workers") == 0) {
      if (!need_value(i)) return false;
      if (!parse_workers_list(argv[++i], &out->workers)) {
        std::fprintf(stderr, "bad --workers list '%s'\n%s", argv[i], kUsage);
        return false;
      }
    } else if (std::strcmp(arg, "--scale") == 0) {
      if (!need_value(i)) return false;
      const long v = std::atol(argv[++i]);
      if (v < 1) {
        std::fprintf(stderr, "--scale must be >= 1\n%s", kUsage);
        return false;
      }
      out->scale = static_cast<unsigned>(v);
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!need_value(i)) return false;
      out->seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(arg, "--reps") == 0) {
      if (!need_value(i)) return false;
      const long v = std::atol(argv[++i]);
      if (v < 1) {
        std::fprintf(stderr, "--reps must be >= 1\n%s", kUsage);
        return false;
      }
      out->reps = static_cast<int>(v);
    } else if (std::strcmp(arg, "--figure") == 0) {
      if (!need_value(i)) return false;
      const std::string name = argv[++i];
      out->figure = name == "none" ? std::string{} : name;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::fputs(kUsage, stdout);
      out->list_only = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n%s", arg, kUsage);
      return false;
    }
  }
  return true;
}

int run_matrix(const DriverOptions& opts) {
  Registry& registry = Registry::instance();

  if (opts.list_only) {
    for (const Workload& w : registry.all()) {
      std::printf("%-12s %s\n", w.name.c_str(), w.summary.c_str());
    }
    return 0;
  }

  std::vector<const Workload*> selected;
  if (opts.workload_names.empty()) {
    for (const Workload& w : registry.all()) selected.push_back(&w);
  } else {
    for (const std::string& name : opts.workload_names) {
      const Workload* w = registry.find(name);
      if (w == nullptr) {
        std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                     name.c_str());
        return 1;
      }
      selected.push_back(w);
    }
  }

  std::vector<PolicyKind> policies(opts.policies);
  if (policies.empty()) {
    policies.assign(std::begin(kAllPolicies), std::end(kAllPolicies));
  }
  std::vector<unsigned> workers =
      opts.workers.empty() ? default_worker_counts() : opts.workers;

  bench::JsonReport* report = nullptr;
  bench::JsonReport report_storage(opts.figure.empty() ? "unused"
                                                       : opts.figure);
  if (!opts.figure.empty()) report = &report_storage;

  std::printf("%-12s %-9s %3s %6s %12s %12s  %s\n", "workload", "policy", "P",
              "verify", "median_s", "stddev_s", "detail");
  int failures = 0;
  for (const Workload* w : selected) {
    for (const PolicyKind policy : policies) {
      for (const unsigned p : workers) {
        RunConfig cfg;
        cfg.workers = p;
        cfg.scale = opts.scale;
        cfg.seed = opts.seed;

        std::vector<double> samples;
        // On failure, report the FIRST failing rep's detail — later passing
        // reps must not overwrite the diagnostic.
        RunResult shown;
        bool verified = true;
        for (int rep = 0; rep < opts.reps; ++rep) {
          RunResult result = w->run_policy(policy, cfg);
          samples.push_back(result.seconds);
          if (verified) shown = std::move(result);
          verified = verified && shown.verified;
        }
        const bench::RunStat stat = bench::stats_of(std::move(samples));
        if (!verified) ++failures;

        std::printf("%-12s %-9s %3u %6s %12.6f %12.6f  %s\n", w->name.c_str(),
                    policy_name(policy), p, verified ? "ok" : "FAIL",
                    stat.median_s, stat.stddev_s, shown.detail.c_str());
        if (report != nullptr) {
          report->add(w->name + "/" + policy_name(policy),
                      static_cast<double>(p),
                      {{"median_s", stat.median_s},
                       {"stddev_s", stat.stddev_s},
                       {"verified", verified ? 1.0 : 0.0}});
        }
      }
    }
  }
  if (report != nullptr) report->flush();

  if (failures != 0) {
    std::fprintf(stderr, "%d cell(s) FAILED verification\n", failures);
  }
  return failures;
}

int example_main(const char* workload, int argc, char** argv) {
  DriverOptions opts;
  opts.workload_names.push_back(workload);
  if (argc > 1) {
    const long p = std::atol(argv[1]);
    if (p >= 1) opts.workers.push_back(static_cast<unsigned>(p));
  }
  if (argc > 2) {
    const long s = std::atol(argv[2]);
    if (s >= 1) opts.scale = static_cast<unsigned>(s);
  }
  if (opts.workers.empty()) opts.workers.push_back(4);
  opts.figure.clear();  // examples print the table only, no JSON artefact
  return run_matrix(opts) == 0 ? 0 : 1;
}

}  // namespace cilkm::workloads
