#include "workloads/driver.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <new>
#include <optional>
#include <thread>

#include "bench/harness.hpp"
#include "chaos/chaos.hpp"
#include "mem/internal_alloc.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_export.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/trace.hpp"
#include "topo/placement.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"
#include "workloads/fuzzer.hpp"

namespace cilkm::workloads {

namespace {

constexpr const char* kUsage =
    "usage: cilkm_run [--list] [--workload NAME|all]... [--policy mm|hypermap|flat|all]...\n"
    "                 [--workers N[,N...]] [--scale S] [--seed X] [--reps R]\n"
    "                 [--figure NAME|none] [--pin] [--placement spread|compact]\n"
    "                 [--wake-batch K] [--steal locality|uniform]\n"
    "                 [--steal-batch half|N]\n"
    "                 [--profile] [--trace-out FILE] [--trace-csv FILE]\n"
    "                 [--fuzz] [--fuzz-seed X] [--fuzz-iters N]\n"
    "                 [--chaos P] [--chaos-seed X] [--chaos-sites LIST]\n"
    "                 [--watchdog-ms N]\n"
    "\n"
    "Runs registered workload cells (workload x policy x workers); every cell\n"
    "verifies itself against a serial reference. Exits nonzero if any cell\n"
    "fails verification. Writes BENCH_<figure>.json unless --figure none.\n"
    "\n"
    "Observability: --profile turns on the work/span profiler and adds one\n"
    "profile:<workload>/<policy> row per cell (work_ns, span_ns, parallelism,\n"
    "burdened_span_ns, burdened_parallelism). --trace-out writes the LAST\n"
    "cell's scheduler events as Chrome/Perfetto trace JSON; --trace-csv dumps\n"
    "the same rings as raw CSV.\n"
    "\n"
    "--fuzz runs the seed-replayable scenario fuzzer instead: --fuzz-iters\n"
    "composites (random monoid x shape x policy x workers x steal-batch) are\n"
    "drawn from base seed --fuzz-seed and checked against their serial\n"
    "elisions; a failure prints (and records in FUZZ_failing_seeds.txt) the\n"
    "exact --fuzz-seed that replays it alone. --policy/--workers/--scale\n"
    "restrict the composite space.\n"
    "\n"
    "--chaos P arms deterministic fault injection (src/chaos/): each fail\n"
    "point consults a pedigree-keyed DPRNG at probability P, so the same\n"
    "--chaos-seed (default: derived from --seed / --fuzz-seed) injects the\n"
    "same faults at the same strands across worker counts, policies, and\n"
    "steal schedules. --chaos-sites restricts injection to a comma list of\n"
    "alloc,fiber,push,steal,install,merge,deposit (groups: faults, delays,\n"
    "all). Reps aborted by an injected allocator OOM are annotated, not\n"
    "failed. --watchdog-ms N makes a run with no scheduling progress for N\n"
    "ms dump its metrics/trace state and abort instead of hanging.\n"
    "\n"
    "Topology: --pin binds each worker to its assigned CPU, --placement picks\n"
    "the worker->CPU map, --wake-batch caps sleepers woken per push (1..16),\n"
    "--steal selects proximity-ordered or uniform victim selection, and\n"
    "--steal-batch caps frames claimed per theft ('half' = ceil(avail/2),\n"
    "the default; 1 = classic single-frame stealing; N in 1..64).\n";

using bench::parse_long_strict;

bool parse_double_strict(const char* text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_u64_strict(const char* text, std::uint64_t* out) {
  // strtoull silently wraps negative input ("-1" → 2^64-1); reject it.
  if (std::strchr(text, '-') != nullptr) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

bool parse_workers_list(const char* text, std::vector<unsigned>* out) {
  const char* p = text;
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long v = std::strtoul(p, &end, 10);
    if (end == p || v == 0 || v > 4096) return false;
    out->push_back(static_cast<unsigned>(v));
    p = end;
    if (*p == ',') ++p;
    else if (*p != '\0') return false;
  }
  return !out->empty();
}

}  // namespace

std::vector<unsigned> default_worker_counts() {
  std::vector<unsigned> out{1, 2, std::max(1u, std::thread::hardware_concurrency())};
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool parse_driver_options(int argc, char** argv, DriverOptions* out) {
  auto need_value = [&](int i) {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n%s", argv[i], kUsage);
      return false;
    }
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--list") == 0) {
      out->list_only = true;
    } else if (std::strcmp(arg, "--workload") == 0) {
      if (!need_value(i)) return false;
      const std::string name = argv[++i];
      if (name != "all") out->workload_names.push_back(name);
    } else if (std::strcmp(arg, "--policy") == 0) {
      if (!need_value(i)) return false;
      const std::string name = argv[++i];
      if (name == "all") continue;
      PolicyKind kind;
      if (!parse_policy(name, &kind)) {
        std::fprintf(stderr, "unknown policy '%s'\n%s", name.c_str(), kUsage);
        return false;
      }
      out->policies.push_back(kind);
    } else if (std::strcmp(arg, "--workers") == 0) {
      if (!need_value(i)) return false;
      if (!parse_workers_list(argv[++i], &out->workers)) {
        std::fprintf(stderr, "bad --workers list '%s'\n%s", argv[i], kUsage);
        return false;
      }
    } else if (std::strcmp(arg, "--scale") == 0) {
      if (!need_value(i)) return false;
      long v = 0;
      if (!parse_long_strict(argv[++i], &v) || v < 1) {
        std::fprintf(stderr, "bad --scale '%s' (want an integer >= 1)\n%s",
                     argv[i], kUsage);
        return false;
      }
      out->scale = static_cast<unsigned>(v);
    } else if (std::strcmp(arg, "--seed") == 0) {
      if (!need_value(i)) return false;
      if (!parse_u64_strict(argv[++i], &out->seed)) {
        std::fprintf(stderr, "bad --seed '%s' (want an integer)\n%s", argv[i],
                     kUsage);
        return false;
      }
    } else if (std::strcmp(arg, "--reps") == 0) {
      if (!need_value(i)) return false;
      long v = 0;
      if (!parse_long_strict(argv[++i], &v) || v < 1) {
        std::fprintf(stderr, "bad --reps '%s' (want an integer >= 1)\n%s",
                     argv[i], kUsage);
        return false;
      }
      out->reps = static_cast<int>(v);
    } else if (std::strcmp(arg, "--figure") == 0) {
      if (!need_value(i)) return false;
      const std::string name = argv[++i];
      out->figure = name == "none" ? std::string{} : name;
    } else if (std::strcmp(arg, "--pin") == 0) {
      out->sched.pin = true;
    } else if (std::strcmp(arg, "--placement") == 0) {
      if (!need_value(i)) return false;
      if (!topo::parse_placement(argv[++i], &out->sched.placement)) {
        std::fprintf(stderr,
                     "bad --placement '%s' (want spread or compact)\n%s",
                     argv[i], kUsage);
        return false;
      }
    } else if (std::strcmp(arg, "--wake-batch") == 0) {
      if (!need_value(i)) return false;
      long v = 0;
      if (!parse_long_strict(argv[++i], &v) || v < 1 ||
          v > static_cast<long>(rt::ParkingLot::kMaxBatch)) {
        std::fprintf(stderr,
                     "bad --wake-batch '%s' (want an integer in 1..%u)\n%s",
                     argv[i], rt::ParkingLot::kMaxBatch, kUsage);
        return false;
      }
      out->sched.wake_batch = static_cast<unsigned>(v);
    } else if (std::strcmp(arg, "--steal-batch") == 0) {
      if (!need_value(i)) return false;
      const std::string mode = argv[++i];
      if (mode == "half") {
        out->sched.steal_batch = 0;
      } else {
        long v = 0;
        if (!parse_long_strict(mode.c_str(), &v) || v < 1 ||
            v > static_cast<long>(rt::Deque::kMaxStealBatch)) {
          std::fprintf(stderr,
                       "bad --steal-batch '%s' (want 'half' or an integer in "
                       "1..%u)\n%s",
                       mode.c_str(), rt::Deque::kMaxStealBatch, kUsage);
          return false;
        }
        out->sched.steal_batch = static_cast<unsigned>(v);
      }
    } else if (std::strcmp(arg, "--profile") == 0) {
      out->profile = true;
    } else if (std::strcmp(arg, "--trace-out") == 0) {
      if (!need_value(i)) return false;
      out->trace_out = argv[++i];
    } else if (std::strcmp(arg, "--trace-csv") == 0) {
      if (!need_value(i)) return false;
      out->trace_csv = argv[++i];
    } else if (std::strcmp(arg, "--fuzz") == 0) {
      out->fuzz = true;
    } else if (std::strcmp(arg, "--fuzz-seed") == 0) {
      if (!need_value(i)) return false;
      if (!parse_u64_strict(argv[++i], &out->fuzz_seed)) {
        std::fprintf(stderr, "bad --fuzz-seed '%s' (want an integer)\n%s",
                     argv[i], kUsage);
        return false;
      }
    } else if (std::strcmp(arg, "--fuzz-iters") == 0) {
      if (!need_value(i)) return false;
      long v = 0;
      if (!parse_long_strict(argv[++i], &v) || v < 1) {
        std::fprintf(stderr, "bad --fuzz-iters '%s' (want an integer >= 1)\n%s",
                     argv[i], kUsage);
        return false;
      }
      out->fuzz_iters = static_cast<int>(v);
    } else if (std::strcmp(arg, "--chaos") == 0) {
      if (!need_value(i)) return false;
      double p = 0.0;
      if (!parse_double_strict(argv[++i], &p) || p <= 0.0 || p > 1.0) {
        std::fprintf(stderr, "bad --chaos '%s' (want a probability in (0,1])\n%s",
                     argv[i], kUsage);
        return false;
      }
      out->chaos = true;
      out->chaos_p = p;
    } else if (std::strcmp(arg, "--chaos-seed") == 0) {
      if (!need_value(i)) return false;
      if (!parse_u64_strict(argv[++i], &out->chaos_seed)) {
        std::fprintf(stderr, "bad --chaos-seed '%s' (want an integer)\n%s",
                     argv[i], kUsage);
        return false;
      }
    } else if (std::strcmp(arg, "--chaos-sites") == 0) {
      if (!need_value(i)) return false;
      if (!chaos::parse_sites(argv[++i], &out->chaos_sites)) {
        std::fprintf(stderr,
                     "bad --chaos-sites '%s' (want a comma list of "
                     "alloc,fiber,push,steal,install,merge,deposit or "
                     "faults/delays/all)\n%s",
                     argv[i], kUsage);
        return false;
      }
    } else if (std::strcmp(arg, "--watchdog-ms") == 0) {
      if (!need_value(i)) return false;
      long v = 0;
      if (!parse_long_strict(argv[++i], &v) || v < 1) {
        std::fprintf(stderr,
                     "bad --watchdog-ms '%s' (want an integer >= 1)\n%s",
                     argv[i], kUsage);
        return false;
      }
      out->sched.watchdog_ms = static_cast<unsigned>(v);
    } else if (std::strcmp(arg, "--steal") == 0) {
      if (!need_value(i)) return false;
      const std::string mode = argv[++i];
      if (mode == "locality") {
        out->sched.locality_steal = true;
      } else if (mode == "uniform") {
        out->sched.locality_steal = false;
      } else {
        std::fprintf(stderr,
                     "bad --steal '%s' (want locality or uniform)\n%s",
                     mode.c_str(), kUsage);
        return false;
      }
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::fputs(kUsage, stdout);
      out->help = true;
      return true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n%s", arg, kUsage);
      return false;
    }
  }
  return true;
}

int run_matrix(const DriverOptions& opts) {
  Registry& registry = Registry::instance();

  if (opts.help) return 0;
  if (opts.fuzz) {
    FuzzOptions fuzz;
    fuzz.seed = opts.fuzz_seed;
    fuzz.iters = opts.fuzz_iters;
    fuzz.scale = opts.scale;
    fuzz.policies = opts.policies;
    fuzz.workers = opts.workers;
    fuzz.chaos = opts.chaos;
    if (opts.chaos) {
      fuzz.chaos_p = opts.chaos_p;
      fuzz.chaos_seed = opts.chaos_seed;
      fuzz.chaos_sites = opts.chaos_sites;
    }
    return run_fuzz(fuzz);
  }
  if (opts.list_only) {
    for (const Workload& w : registry.all()) {
      std::printf("%-12s %s\n", w.name.c_str(), w.summary.c_str());
    }
    return 0;
  }

  std::vector<const Workload*> selected;
  if (opts.workload_names.empty()) {
    for (const Workload& w : registry.all()) selected.push_back(&w);
  } else {
    for (const std::string& name : opts.workload_names) {
      const Workload* w = registry.find(name);
      if (w == nullptr) {
        std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                     name.c_str());
        return 1;
      }
      selected.push_back(w);
    }
  }

  std::vector<PolicyKind> policies(opts.policies);
  if (policies.empty()) {
    policies.assign(std::begin(kAllPolicies), std::end(kAllPolicies));
  }
  std::vector<unsigned> workers =
      opts.workers.empty() ? default_worker_counts() : opts.workers;

  // Only materialise the report when a figure was requested: JsonReport
  // flushes on destruction, so an unconditional instance would leave a stray
  // BENCH_*.json behind every figure-less invocation (--figure none, the
  // example shims, tests).
  std::optional<bench::JsonReport> report;
  if (!opts.figure.empty()) report.emplace(opts.figure);

  // Self-describing artifacts: record the effective seed on the machine row
  // so a BENCH_*.json (or its console table) can be reproduced without the
  // invoking command line. The seed rides as two 32-bit halves — metric
  // values are doubles, which cannot hold a full 64-bit seed exactly — and
  // bench_diff.py only compares the requested --metric, so the extra metrics
  // never trip a regression diff.
  std::printf("# seed: 0x%llx\n",
              static_cast<unsigned long long>(opts.seed));
  if (report.has_value()) {
    const topo::Topology& topo = topo::Topology::machine();
    report->add("machine:" + topo.describe(),
                static_cast<double>(topo.num_cpus()),
                {{"seed_hi", static_cast<double>(opts.seed >> 32)},
                 {"seed_lo",
                  static_cast<double>(opts.seed & 0xffffffffULL)}});
  }

  // One persistent pool per worker count, shared across every workload,
  // policy, and rep: cells time the computation on warm workers, not
  // per-invocation thread creation.
  std::map<unsigned, std::unique_ptr<rt::Scheduler>> pools;
  for (const unsigned p : workers) {
    auto& pool = pools[p];
    if (pool == nullptr) pool = std::make_unique<rt::Scheduler>(p, opts.sched);
  }

  // Fault injection covers the whole matrix with one armed configuration:
  // the pedigree-keyed decisions make the injected fault set a function of
  // (chaos seed, workload), not of which cell or rep is running.
  if (opts.chaos) {
    chaos::Config ccfg;
    ccfg.p = opts.chaos_p;
    ccfg.seed = opts.chaos_seed;
    if (ccfg.seed == 0) {
      std::uint64_t s = opts.seed;  // deterministic default: --seed decides
      ccfg.seed = splitmix64(s);
    }
    if (opts.chaos_sites != 0) ccfg.sites = opts.chaos_sites;
    chaos::arm(ccfg);
    std::printf("# chaos: armed p=%g seed=0x%llx sites=0x%x\n", ccfg.p,
                static_cast<unsigned long long>(ccfg.seed), ccfg.sites);
  }

  // Observability toggles for the whole sweep. Tracing is per cell (rings
  // reset before each cell), so the exported artifact covers the LAST cell
  // — run a single-cell matrix when the timeline itself is the point.
  const bool tracing = !opts.trace_out.empty() || !opts.trace_csv.empty();
  auto& tracer = rt::Tracer::instance();
  auto& profiler = obs::Profiler::instance();
  if (tracing) tracer.enable();
  if (opts.profile) profiler.enable();

  std::printf("%-12s %-9s %3s %6s %12s %12s  %s\n", "workload", "policy", "P",
              "verify", "median_s", "stddev_s", "detail");
  int failures = 0;
  obs::MetricsSnapshot last_cell;  // rides into the trace exporter's otherData
  for (const Workload* w : selected) {
    for (const PolicyKind policy : policies) {
      for (const unsigned p : workers) {
        RunConfig cfg;
        cfg.workers = p;
        cfg.scale = opts.scale;
        cfg.seed = opts.seed;
        cfg.scheduler = pools[p].get();

        std::vector<double> samples;
        // On failure, report the FIRST failing rep's detail — later passing
        // reps must not overwrite the diagnostic.
        RunResult shown;
        bool verified = true;
        // Per-cell accounting: counters, rings, and profile totals all
        // accumulate on shared process state, so reset here and snapshot
        // once after the rep loop.
        pools[p]->reset_stats();
        if (tracing) tracer.reset();
        if (opts.profile) profiler.reset();
        int oom_reps = 0;
        for (int rep = 0; rep < opts.reps; ++rep) {
          RunResult result;
          try {
            result = w->run_policy(policy, cfg);
          } catch (const std::bad_alloc&) {
            // Injected allocator OOM (chaos kAllocRefill): the run aborted
            // cleanly and the pool is reusable. The rep produced no sample
            // or verdict — annotate rather than fail the cell.
            if (!opts.chaos) throw;
            ++oom_reps;
            continue;
          }
          samples.push_back(result.seconds);
          if (verified) shown = std::move(result);
          verified = verified && shown.verified;
        }
        if (samples.empty()) samples.push_back(0.0);
        if (oom_reps > 0) {
          if (!shown.detail.empty()) shown.detail += "; ";
          shown.detail += std::to_string(oom_reps) +
                          " rep(s) chaos-oom (injected allocator failure)";
        }
        last_cell = obs::capture(pools[p].get());
        const WorkerStats& cell_stats = last_cell.aggregate;
        const bench::RunStat stat = bench::stats_of(std::move(samples));
        if (!verified) ++failures;

        std::printf("%-12s %-9s %3u %6s %12.6f %12.6f  %s\n", w->name.c_str(),
                    policy_name(policy), p, verified ? "ok" : "FAIL",
                    stat.median_s, stat.stddev_s, shown.detail.c_str());
        if (report.has_value()) {
          report->add(w->name + "/" + policy_name(policy),
                      static_cast<double>(p),
                      {{"median_s", stat.median_s},
                       {"stddev_s", stat.stddev_s},
                       {"verified", verified ? 1.0 : 0.0},
                       {"steals",
                        static_cast<double>(cell_stats[StatCounter::kSteals])},
                       {"stolen_frames",
                        static_cast<double>(
                            cell_stats[StatCounter::kStolenFrames])},
                       {"steal_ns_t0",
                        static_cast<double>(cell_stats.steal_lat_ns[0])},
                       {"steal_ns_t1",
                        static_cast<double>(cell_stats.steal_lat_ns[1])},
                       {"steal_ns_t2",
                        static_cast<double>(cell_stats.steal_lat_ns[2])}});
        }
        if (opts.profile) {
          const obs::RunProfile prof = profiler.totals();
          // Per-run means: the totals sum over reps, and each rep is one
          // scheduler run recorded by the root-done hook.
          const double runs = prof.runs == 0 ? 1.0
                                             : static_cast<double>(prof.runs);
          const double work_ns = static_cast<double>(prof.work_ns) / runs;
          const double span_ns = static_cast<double>(prof.span_ns) / runs;
          const double burdened_ns =
              static_cast<double>(prof.burdened_span_ns) / runs;
          std::printf("  profile: work %.3fms span %.3fms parallelism %.2f "
                      "burdened-span %.3fms burdened-parallelism %.2f\n",
                      work_ns / 1e6, span_ns / 1e6, prof.parallelism(),
                      burdened_ns / 1e6, prof.burdened_parallelism());
          if (report.has_value()) {
            report->add("profile:" + w->name + "/" + policy_name(policy),
                        static_cast<double>(p),
                        {{"work_ns", work_ns},
                         {"span_ns", span_ns},
                         {"parallelism", prof.parallelism()},
                         {"burdened_span_ns", burdened_ns},
                         {"burdened_parallelism", prof.burdened_parallelism()},
                         {"runs", static_cast<double>(prof.runs)}});
          }
        }
      }
    }
  }
  if (opts.chaos) {
    // Per-site injection totals for the sweep. The digest is the
    // order-independent fingerprint of the injected fault set (split into
    // 32-bit halves on the JSON row — metric values are doubles).
    for (unsigned s = 0; s < chaos::kNumSites; ++s) {
      const auto site = static_cast<chaos::Site>(s);
      const chaos::SiteStats st = chaos::site_stats(site);
      if (st.consults != 0) {
        std::printf("# chaos: %-8s consults=%llu injected=%llu digest=0x%llx\n",
                    chaos::to_string(site),
                    static_cast<unsigned long long>(st.consults),
                    static_cast<unsigned long long>(st.injected),
                    static_cast<unsigned long long>(st.digest));
      }
      if (report.has_value()) {
        report->add(std::string("chaos:") + chaos::to_string(site), 0.0,
                    {{"consults", static_cast<double>(st.consults)},
                     {"injected", static_cast<double>(st.injected)},
                     {"digest_hi", static_cast<double>(st.digest >> 32)},
                     {"digest_lo",
                      static_cast<double>(st.digest & 0xffffffffULL)}});
      }
    }
    chaos::disarm();
  }

  if (report.has_value()) {
    // Internal-allocator footprint of the sweep, one row per tag: peaks say
    // how much memory each layer (views, SPA pages, hypermap tables, fiber
    // headers, frames) actually needed; live says what is still held now.
    // Snapshot through the metrics registry — same source the exporter sees.
    const obs::MetricsSnapshot end = obs::capture(nullptr);
    for (std::size_t t = 0; t < mem::kNumTags; ++t) {
      const auto tag = static_cast<mem::AllocTag>(t);
      const mem::TagStats& ts = end.mem_tags[t];
      report->add(std::string("mem:") + mem::to_string(tag), 0.0,
                  {{"live_blocks", static_cast<double>(ts.live_blocks)},
                   {"peak_blocks", static_cast<double>(ts.peak_blocks)},
                   {"live_bytes", static_cast<double>(ts.live_bytes)},
                   {"peak_bytes", static_cast<double>(ts.peak_bytes)},
                   {"refills", static_cast<double>(ts.refills)}});
    }
    report->flush();
  }

  if (tracing) {
    tracer.disable();
    if (tracer.dropped() > 0) {
      std::fprintf(stderr,
                   "warning: tracer dropped %llu event(s) (worker id beyond "
                   "its %u rings)\n",
                   static_cast<unsigned long long>(tracer.dropped()),
                   rt::Tracer::kMaxWorkers);
    }
    if (!opts.trace_out.empty()) {
      if (obs::export_chrome_trace_file(opts.trace_out, last_cell)) {
        std::printf("# trace: wrote %s (load in Perfetto / chrome://tracing)\n",
                    opts.trace_out.c_str());
      } else {
        std::fprintf(stderr, "cannot write trace to %s\n",
                     opts.trace_out.c_str());
        return failures == 0 ? 1 : failures;
      }
    }
    if (!opts.trace_csv.empty()) {
      std::ofstream csv(opts.trace_csv);
      if (csv) {
        tracer.dump_csv(csv);
        std::printf("# trace: wrote %s\n", opts.trace_csv.c_str());
      } else {
        std::fprintf(stderr, "cannot write trace CSV to %s\n",
                     opts.trace_csv.c_str());
        return failures == 0 ? 1 : failures;
      }
    }
  }
  if (opts.profile) profiler.disable();

  if (failures != 0) {
    std::fprintf(stderr, "%d cell(s) FAILED verification\n", failures);
  }
  return failures;
}

int example_main(const char* workload, int argc, char** argv) {
  DriverOptions opts;
  opts.workload_names.push_back(workload);
  opts.workers.push_back(4);
  opts.figure.clear();  // examples print the table only, no JSON artefact

  auto positional = [&](int index, const char* what, long* out) {
    if (!parse_long_strict(argv[index], out) || *out < 1) {
      std::fprintf(stderr, "%s: bad %s '%s' (want a positive integer)\n",
                   argv[0], what, argv[index]);
      return false;
    }
    return true;
  };
  if (argc > 3) {
    std::fprintf(stderr, "usage: %s [workers] [scale]\n", argv[0]);
    return 2;
  }
  if (argc > 1) {
    long p = 0;
    if (!positional(1, "worker count", &p)) return 2;
    opts.workers.assign(1, static_cast<unsigned>(p));
  }
  if (argc > 2) {
    long s = 0;
    if (!positional(2, "scale", &s)) return 2;
    opts.scale = static_cast<unsigned>(s);
  }
  return run_matrix(opts) == 0 ? 0 : 1;
}

}  // namespace cilkm::workloads
