// Parallel summation (the quickstart example, registered): sum 1..N into an
// add-reducer and fold N products-of-ones into a mul-reducer on the side,
// verified against closed forms.
#include <cstdint>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "util/timing.hpp"
#include "workloads/workload.hpp"

namespace cilkm::workloads {
namespace {

template <typename Policy>
struct SumLoop {
  static RunResult run(const RunConfig& cfg) {
    const std::int64_t n = 250'000 * static_cast<std::int64_t>(cfg.scale);

    reducer_opadd<long long, Policy> sum;
    reducer_opmul<long long, Policy> parity;  // (-1)^N via repeated * -1

    const auto t0 = now_ns();
    run_cell(cfg, [&] {
      parallel_for(1, n + 1, 4096, [&](std::int64_t i) {
        *sum += i;
        *parity *= -1;
      });
    });
    const auto t1 = now_ns();

    RunResult out;
    out.seconds = static_cast<double>(t1 - t0) / 1e9;
    out.items = static_cast<std::uint64_t>(n);
    const long long expect_sum = n * (n + 1) / 2;
    const long long expect_parity = (n % 2 == 0) ? 1 : -1;
    out.verified = sum.get_value() == expect_sum &&
                   parity.get_value() == expect_parity;
    out.detail = out.verified
                     ? "sum and parity match closed forms"
                     : "sum=" + std::to_string(sum.get_value()) +
                           " expected=" + std::to_string(expect_sum);
    return out;
  }
};

}  // namespace

void register_sum_loop(Registry& r) {
  r.add(make_workload<SumLoop>(
      "sum_loop", "parallel_for summation into add/mul reducers"));
}

}  // namespace cilkm::workloads
