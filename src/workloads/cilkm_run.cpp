// The workload driver: execute any (workload × view-store policy × worker
// count) cell of the registered scenario matrix, verify every cell against
// its serial reference, and report timing as BENCH_workloads.json.
//
//   $ ./cilkm_run --list
//   $ ./cilkm_run --workload pbfs --policy mm --workers 1,2,8
//   $ ./cilkm_run                      # the full smoke matrix
#include "workloads/driver.hpp"

int main(int argc, char** argv) {
  cilkm::workloads::DriverOptions opts;
  if (!cilkm::workloads::parse_driver_options(argc, argv, &opts)) return 2;
  if (opts.help) return 0;  // usage already printed, nothing to run
  return cilkm::workloads::run_matrix(opts) == 0 ? 0 : 1;
}
