// Naive parallel Fibonacci — the canonical spawn-dense Cilk benchmark. The
// value flows back through locals; an add-reducer counts recursion leaves,
// which a serial replay must match exactly. Stresses raw fork2join churn
// with a single hot reducer.
#include <cstdint>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "util/timing.hpp"
#include "workloads/workload.hpp"

namespace cilkm::workloads {
namespace {

constexpr int kSerialCutoff = 12;

std::uint64_t serial_fib(int n, std::uint64_t* leaves) {
  if (n < 2) {
    ++*leaves;
    return static_cast<std::uint64_t>(n);
  }
  return serial_fib(n - 1, leaves) + serial_fib(n - 2, leaves);
}

template <typename Policy>
std::uint64_t fib(int n, reducer_opadd<std::uint64_t, Policy>& leaves) {
  if (n < 2) {
    *leaves += 1;
    return static_cast<std::uint64_t>(n);
  }
  if (n <= kSerialCutoff) {
    std::uint64_t count = 0;
    const std::uint64_t value = serial_fib(n, &count);
    *leaves += count;
    return value;
  }
  std::uint64_t a = 0, b = 0;
  fork2join([&] { a = fib(n - 1, leaves); }, [&] { b = fib(n - 2, leaves); });
  return a + b;
}

template <typename Policy>
struct Fib {
  static RunResult run(const RunConfig& cfg) {
    const int n = 20 + static_cast<int>(cfg.scale > 8 ? 8 : cfg.scale - 1);

    reducer_opadd<std::uint64_t, Policy> leaves;
    std::uint64_t value = 0;
    const auto t0 = now_ns();
    run_cell(cfg, [&] { value = fib<Policy>(n, leaves); });
    const auto t1 = now_ns();

    std::uint64_t expect_leaves = 0;
    const std::uint64_t expect_value = serial_fib(n, &expect_leaves);

    RunResult out;
    out.seconds = static_cast<double>(t1 - t0) / 1e9;
    out.items = expect_leaves;
    out.verified =
        value == expect_value && leaves.get_value() == expect_leaves;
    out.detail = out.verified
                     ? "fib(" + std::to_string(n) + ") and leaf count match"
                     : "fib=" + std::to_string(value) + "/" +
                           std::to_string(expect_value) +
                           " leaves=" + std::to_string(leaves.get_value()) +
                           "/" + std::to_string(expect_leaves);
    return out;
  }
};

}  // namespace

void register_fib(Registry& r) {
  r.add(make_workload<Fib>(
      "fib", "spawn-dense naive Fibonacci with a leaf-counting reducer"));
}

}  // namespace cilkm::workloads
