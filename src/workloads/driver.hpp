// The cilkm_run driver, as a library so the examples/ shims and the tests
// can reuse the cell-matrix runner. A "cell" is one
// (workload × view-store policy × worker count) execution; every cell
// self-verifies against its serial reference, and the matrix run reports
// timing through bench/harness.hpp's JsonReport.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "workloads/workload.hpp"

namespace cilkm::workloads {

struct DriverOptions {
  std::vector<std::string> workload_names;  // empty = every registered one
  std::vector<PolicyKind> policies;         // empty = all three
  std::vector<unsigned> workers;            // empty = {1, 2, hw_concurrency}
  unsigned scale = 1;
  std::uint64_t seed = RunConfig{}.seed;
  int reps = 1;                // timing repetitions per cell (median reported)
  bool list_only = false;
  bool help = false;           // --help: print usage and exit successfully
  std::string figure = "workloads";  // BENCH_<figure>.json; empty = no JSON
  /// --fuzz: run the seed-replayable scenario fuzzer (workloads/fuzzer.hpp)
  /// instead of the cell matrix. --fuzz-seed sets the sweep's base seed,
  /// --fuzz-iters the composite count; --policy/--workers/--scale restrict
  /// the composite space the same way they restrict the matrix.
  bool fuzz = false;
  std::uint64_t fuzz_seed = RunConfig{}.seed;
  int fuzz_iters = 25;
  /// --chaos P: arm deterministic fault injection (src/chaos/) at per-consult
  /// probability P for the whole matrix (or fuzz sweep). --chaos-seed keys
  /// the pedigree DPRNG (0 = derive from --seed / --fuzz-seed); --chaos-sites
  /// restricts the site mask ("alloc,fiber,push,…" or "faults"/"delays"/
  /// "all"). Reps aborted by an injected allocator OOM are annotated, not
  /// counted as verification failures. --watchdog-ms N arms the scheduler's
  /// stalled-run watchdog (SchedulerOptions::watchdog_ms).
  bool chaos = false;
  double chaos_p = 0.02;
  std::uint64_t chaos_seed = 0;
  std::uint32_t chaos_sites = 0;
  /// Topology knobs for the persistent pools run_matrix builds: --pin,
  /// --placement, --wake-batch, --steal.
  rt::SchedulerOptions sched;
  /// --profile: enable the work/span profiler and report one
  /// "profile:<workload>/<policy>" row per cell (work, span, parallelism,
  /// burdened span/parallelism — see obs/profiler.hpp).
  bool profile = false;
  /// --trace-out FILE: enable the Tracer and export the LAST cell's event
  /// rings as Chrome/Perfetto trace JSON (obs/trace_export.hpp).
  std::string trace_out;
  /// --trace-csv FILE: same rings, raw CSV (Tracer::dump_csv).
  std::string trace_csv;
};

/// {1, 2, hardware_concurrency}, deduplicated and sorted.
std::vector<unsigned> default_worker_counts();

/// Parse cilkm_run flags. Returns false (after printing usage to stderr) on
/// unknown flags or unparseable values — including trailing flags with no
/// value and non-numeric or out-of-range numbers. --help sets out->help;
/// callers should then exit 0 without running anything.
bool parse_driver_options(int argc, char** argv, DriverOptions* out);

/// Execute the selected cell matrix: prints one table row per cell, writes
/// BENCH_<figure>.json when a figure is requested (and no JSON file at all
/// otherwise), and returns the number of cells whose verify() failed
/// (0 = everything checked out). One persistent Scheduler per worker count
/// is reused across all workloads, policies, and reps.
int run_matrix(const DriverOptions& opts);

/// Shared main() for the examples/ shims: positional [workers] [scale],
/// running one named workload under all three policies. Rejects
/// non-numeric, non-positive, or extra arguments with exit status 2.
int example_main(const char* workload, int argc, char** argv);

}  // namespace cilkm::workloads
