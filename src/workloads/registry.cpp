#include "workloads/workload.hpp"

#include <cstring>
#include <utility>

#include "runtime/scheduler.hpp"
#include "util/assert.hpp"

namespace cilkm::workloads {

void run_cell(const RunConfig& cfg, std::function<void()> root) {
  if (cfg.scheduler != nullptr) {
    CILKM_CHECK(cfg.scheduler->num_workers() == cfg.workers,
                "run_cell: pool size does not match cfg.workers");
    cfg.scheduler->run(std::move(root));
  } else {
    rt::run(cfg.workers, std::move(root));
  }
}

// One hook per workload file, called in a fixed order so --list and the test
// matrix enumerate deterministically. Adding a workload = one w_*.cpp file
// defining register_<name>() plus one line here.
void register_sum_loop(Registry& r);
void register_fib(Registry& r);
void register_nqueens(Registry& r);
void register_tree_walk(Registry& r);
void register_wordcount(Registry& r);
void register_histogram(Registry& r);
void register_argminmax(Registry& r);
void register_samplesort(Registry& r);
void register_pbfs(Registry& r);
void register_components(Registry& r);
void register_tlmm_sim(Registry& r);
void register_quadtree(Registry& r);
void register_listappend(Registry& r);
void register_streamcount(Registry& r);

const char* policy_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kMm: return "mm";
    case PolicyKind::kHypermap: return "hypermap";
    case PolicyKind::kFlat: return "flat";
  }
  return "?";
}

bool parse_policy(const std::string& text, PolicyKind* out) {
  for (const PolicyKind kind : kAllPolicies) {
    if (text == policy_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

Registry& Registry::instance() {
  static Registry* registry = [] {
    auto* r = new Registry;
    register_sum_loop(*r);
    register_fib(*r);
    register_nqueens(*r);
    register_tree_walk(*r);
    register_wordcount(*r);
    register_histogram(*r);
    register_argminmax(*r);
    register_samplesort(*r);
    register_pbfs(*r);
    register_components(*r);
    register_tlmm_sim(*r);
    register_quadtree(*r);
    register_listappend(*r);
    register_streamcount(*r);
    return r;
  }();
  return *registry;
}

void Registry::add(Workload w) {
  CILKM_CHECK(!w.name.empty(), "workload must have a name");
  for (int p = 0; p < kNumPolicies; ++p) {
    CILKM_CHECK(w.run[p] != nullptr, "workload missing a policy run fn");
  }
  CILKM_CHECK(find(w.name) == nullptr, "duplicate workload registration");
  workloads_.push_back(std::move(w));
}

const Workload* Registry::find(const std::string& name) const {
  for (const Workload& w : workloads_) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

}  // namespace cilkm::workloads
