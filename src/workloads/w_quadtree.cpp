// Quad-tree build (second-wave scenario): recursively partition a random
// point set into quadrants with 4-way parallel_invoke, drawing a DotMix
// signature at every node. The tree shape depends only on the input data;
// the signatures depend only on (seed, pedigree) — so the xor/sum/count
// accumulators must be bit-identical to the serial elision under every
// policy, worker count, and steal schedule.
#include <cstdint>
#include <string>
#include <vector>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "runtime/pedigree.hpp"
#include "util/dprng.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"
#include "workloads/workload.hpp"

namespace cilkm::workloads {
namespace {

struct Point {
  std::uint32_t x, y;
};

std::vector<Point> synth_points(int n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<Point> points;
  points.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    points.push_back({static_cast<std::uint32_t>(rng.below(1u << 16)),
                      static_cast<std::uint32_t>(rng.below(1u << 16))});
  }
  return points;
}

constexpr int kLeafCap = 48;
constexpr unsigned kMaxDepth = 12;

/// Accumulated build outcome; combined with xor/sum/count monoids so the
/// parallel run folds through reducers and the serial run through a plain
/// instance of this struct.
struct BuildSums {
  std::uint64_t sig_xor = 0;   // xor of every node signature
  std::uint64_t weighted = 0;  // Σ signature-low-bits × points-in-node
  std::uint64_t leaves = 0;
};

/// One build node: draw the node signature, split or stop, recurse into the
/// four quadrants via sink (parallel or serial). Splitting on the box
/// midpoint keeps the tree a function of the data alone.
template <typename Sink>
void build_node(const std::vector<Point>& pts, std::uint32_t x0,
                std::uint32_t y0, std::uint32_t half, unsigned depth,
                Dprng& rng, Sink&& sink) {
  const std::uint64_t sig = rng.next();
  sink.node(sig, pts.size());
  if (pts.size() <= kLeafCap || depth >= kMaxDepth || half == 0) {
    sink.leaf();
    return;
  }
  std::vector<Point> quad[4];
  for (const Point& p : pts) {
    const int qx = p.x >= x0 + half ? 1 : 0;
    const int qy = p.y >= y0 + half ? 1 : 0;
    quad[2 * qy + qx].push_back(p);
  }
  const std::uint32_t nx[4] = {x0, x0 + half, x0, x0 + half};
  const std::uint32_t ny[4] = {y0, y0, y0 + half, y0 + half};
  sink.recurse(
      [&](int q) {
        build_node(quad[q], nx[q], ny[q], half / 2, depth + 1, rng, sink);
      });
}

/// Parallel sink: reducer-backed accumulators, 4-way parallel recursion.
template <typename Policy>
struct ReducerSink {
  reducer<op_xor<std::uint64_t>, Policy>* sig_xor;
  reducer<op_add<std::uint64_t>, Policy>* weighted;
  reducer<op_add<std::uint64_t>, Policy>* leaves;

  void node(std::uint64_t sig, std::size_t npts) const {
    sig_xor->view() ^= sig;
    weighted->view() += (sig & 0xffff) * npts;
  }
  void leaf() const { leaves->view() += 1; }
  template <typename Recurse>
  void recurse(Recurse&& into) const {
    parallel_invoke([&] { into(0); }, [&] { into(1); }, [&] { into(2); },
                    [&] { into(3); });
  }
};

/// Serial sink: plain accumulators. The reference runs outside the
/// scheduler, where parallel_invoke takes fork2join's serial path — plain
/// left-to-right execution through the SAME pedigree transitions as the
/// parallel build, which is exactly what makes the draws comparable.
struct SerialSink {
  BuildSums* sums;

  void node(std::uint64_t sig, std::size_t npts) const {
    sums->sig_xor ^= sig;
    sums->weighted += (sig & 0xffff) * npts;
  }
  void leaf() const { sums->leaves += 1; }
  template <typename Recurse>
  void recurse(Recurse&& into) const {
    parallel_invoke([&] { into(0); }, [&] { into(1); }, [&] { into(2); },
                    [&] { into(3); });
  }
};

template <typename Policy>
struct QuadTree {
  static RunResult run(const RunConfig& cfg) {
    const int n = 4000 * static_cast<int>(cfg.scale);
    const auto points = synth_points(n, cfg.seed);

    BuildSums expect;
    {
      rt::PedigreeScope scope;
      Dprng rng(cfg.seed);
      SerialSink sink{&expect};
      build_node(points, 0, 0, 1u << 15, 0, rng, sink);
    }

    reducer<op_xor<std::uint64_t>, Policy> sig_xor;
    reducer<op_add<std::uint64_t>, Policy> weighted;
    reducer<op_add<std::uint64_t>, Policy> leaves;
    Dprng rng(cfg.seed);
    const auto t0 = now_ns();
    run_cell(cfg, [&] {
      ReducerSink<Policy> sink{&sig_xor, &weighted, &leaves};
      build_node(points, 0, 0, 1u << 15, 0, rng, sink);
    });
    const auto t1 = now_ns();

    RunResult out;
    out.seconds = static_cast<double>(t1 - t0) / 1e9;
    out.items = static_cast<std::uint64_t>(n);
    out.verified = sig_xor.get_value() == expect.sig_xor &&
                   weighted.get_value() == expect.weighted &&
                   leaves.get_value() == expect.leaves;
    out.detail =
        out.verified
            ? std::to_string(expect.leaves) +
                  " leaves, signatures bit-identical to the serial build"
            : "quad-tree accumulators diverge from the serial elision";
    return out;
  }
};

}  // namespace

void register_quadtree(Registry& r) {
  r.add(make_workload<QuadTree>(
      "quadtree",
      "DPRNG-signed quad-tree build, bit-identical across schedules"));
}

}  // namespace cilkm::workloads
