// The paper's Figure 2 (the examples/tree_walk.cpp walk, registered): walk
// a random binary tree in parallel and collect matching nodes into a
// list-append reducer — the result must equal the serial preorder list,
// element for element.
#include <cstdint>
#include <list>
#include <vector>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"
#include "workloads/workload.hpp"

namespace cilkm::workloads {
namespace {

struct Node {
  int key;
  Node* left = nullptr;
  Node* right = nullptr;
};

bool has_property(const Node* n) { return n->key % 7 == 0; }

Node* build(std::vector<Node>& pool, int lo, int hi, Xoshiro256& rng) {
  if (lo >= hi) return nullptr;
  const int mid =
      lo + static_cast<int>(rng.below(static_cast<std::uint64_t>(hi - lo)));
  Node* n = &pool[static_cast<std::size_t>(mid)];
  n->key = mid;
  n->left = build(pool, lo, mid, rng);
  n->right = build(pool, mid + 1, hi, rng);
  return n;
}

template <typename Policy>
void walk(const Node* n, list_append_reducer<const Node*, Policy>& l) {
  if (n != nullptr) {
    if (has_property(n)) l->push_back(n);
    fork2join([&] { walk(n->left, l); }, [&] { walk(n->right, l); });
  }
}

void serial_walk(const Node* n, std::list<const Node*>& out) {
  if (n != nullptr) {
    if (has_property(n)) out.push_back(n);
    serial_walk(n->left, out);
    serial_walk(n->right, out);
  }
}

template <typename Policy>
struct TreeWalk {
  static RunResult run(const RunConfig& cfg) {
    const int n = 50'000 * static_cast<int>(cfg.scale);

    std::vector<Node> pool(static_cast<std::size_t>(n));
    Xoshiro256 rng(cfg.seed);
    Node* root = build(pool, 0, n, rng);

    list_append_reducer<const Node*, Policy> l;
    const auto t0 = now_ns();
    run_cell(cfg, [&] { walk<Policy>(root, l); });
    const auto t1 = now_ns();

    std::list<const Node*> expect;
    serial_walk(root, expect);

    RunResult out;
    out.seconds = static_cast<double>(t1 - t0) / 1e9;
    out.items = static_cast<std::uint64_t>(n);
    out.verified = l.get_value() == expect;
    out.detail = out.verified
                     ? std::to_string(expect.size()) +
                           " matches in exact preorder"
                     : "parallel list differs from serial preorder walk";
    return out;
  }
};

}  // namespace

void register_tree_walk(Registry& r) {
  r.add(make_workload<TreeWalk>(
      "tree_walk", "Figure 2 tree walk into a list-append reducer"));
}

}  // namespace cilkm::workloads
