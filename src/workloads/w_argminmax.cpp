// Argmin/argmax with deterministic first-occurrence tie-breaking: the
// values are drawn from a tiny range, so ties abound and only a reducer
// runtime that preserves serial operand order returns the serially-first
// index — a sharp probe of the non-commutative merge path.
#include <cstdint>

#include "reducers/extras.hpp"
#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "util/timing.hpp"
#include "workloads/workload.hpp"

namespace cilkm::workloads {
namespace {

std::uint64_t value_at(std::uint64_t seed, std::int64_t i) {
  std::uint64_t state = seed + static_cast<std::uint64_t>(i);
  return splitmix64(state) % 1024;  // tiny range -> many ties
}

template <typename Policy>
struct ArgMinMax {
  static RunResult run(const RunConfig& cfg) {
    const std::int64_t n = 300'000 * static_cast<std::int64_t>(cfg.scale);

    min_index_reducer<std::int64_t, std::uint64_t, Policy> lo;
    max_index_reducer<std::int64_t, std::uint64_t, Policy> hi;

    const auto t0 = now_ns();
    run_cell(cfg, [&] {
      parallel_for(0, n, 2048, [&](std::int64_t i) {
        const std::uint64_t v = value_at(cfg.seed, i);
        op_min_index<std::int64_t, std::uint64_t>::update(lo.view(), i, v);
        op_max_index<std::int64_t, std::uint64_t>::update(hi.view(), i, v);
      });
    });
    const auto t1 = now_ns();

    indexed_value<std::int64_t, std::uint64_t> expect_lo, expect_hi;
    for (std::int64_t i = 0; i < n; ++i) {
      const std::uint64_t v = value_at(cfg.seed, i);
      op_min_index<std::int64_t, std::uint64_t>::update(expect_lo, i, v);
      op_max_index<std::int64_t, std::uint64_t>::update(expect_hi, i, v);
    }

    RunResult out;
    out.seconds = static_cast<double>(t1 - t0) / 1e9;
    out.items = static_cast<std::uint64_t>(n);
    out.verified =
        lo.get_value() == expect_lo && hi.get_value() == expect_hi;
    out.detail =
        out.verified
            ? "argmin@" + std::to_string(expect_lo.index) + " argmax@" +
                  std::to_string(expect_hi.index) +
                  " with first-occurrence ties"
            : "argmin/argmax index differs (tie-break order violated)";
    return out;
  }
};

}  // namespace

void register_argminmax(Registry& r) {
  r.add(make_workload<ArgMinMax>(
      "argminmax", "min/max-index reducers with first-occurrence ties"));
}

}  // namespace cilkm::workloads
