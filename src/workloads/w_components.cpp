// Connected components by min-label propagation over the pbfs graph layer:
// each round writes next[u] = min(cur[u], min over neighbours cur[v]) in
// parallel, an add-reducer counts label changes (the convergence test) and
// a min-reducer tracks the smallest vertex whose label changed. Converged
// labels must equal the per-component minimum vertex id computed serially.
#include <cstdint>
#include <limits>
#include <vector>

#include "pbfs/graph.hpp"
#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "util/timing.hpp"
#include "workloads/workload.hpp"

namespace cilkm::workloads {
namespace {

using pbfs::Graph;
using pbfs::Vertex;

/// Serial reference: label every vertex with the smallest id reachable from
/// it (iterative DFS per unvisited component).
std::vector<Vertex> serial_components(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> label(n, pbfs::kUnreached);
  std::vector<Vertex> stack;
  for (Vertex s = 0; s < n; ++s) {
    if (label[s] != pbfs::kUnreached) continue;
    // s is the smallest unvisited id, hence the component minimum.
    stack.push_back(s);
    label[s] = s;
    while (!stack.empty()) {
      const Vertex u = stack.back();
      stack.pop_back();
      for (const Vertex* it = g.adj_begin(u); it != g.adj_end(u); ++it) {
        if (label[*it] == pbfs::kUnreached) {
          label[*it] = s;
          stack.push_back(*it);
        }
      }
    }
  }
  return label;
}

template <typename Policy>
struct Components {
  static RunResult run(const RunConfig& cfg) {
    const Vertex n = 4'000 * cfg.scale;
    const Graph g =
        pbfs::uniform_random(n, std::uint64_t{3} * n / 2, cfg.seed);

    std::vector<Vertex> cur(n), next(n);
    for (Vertex v = 0; v < n; ++v) cur[v] = v;

    std::uint64_t rounds = 0;
    std::vector<std::uint64_t> changed_history;
    std::vector<Vertex> first_changed_history;

    const auto t0 = now_ns();
    run_cell(cfg, [&] {
      while (true) {
        reducer_opadd<std::uint64_t, Policy> changed;
        reducer_min<Vertex, Policy> first_changed;
        parallel_for(0, static_cast<std::int64_t>(n), 256,
                     [&](std::int64_t i) {
                       const auto u = static_cast<Vertex>(i);
                       Vertex best = cur[u];
                       for (const Vertex* it = g.adj_begin(u);
                            it != g.adj_end(u); ++it) {
                         if (cur[*it] < best) best = cur[*it];
                       }
                       next[u] = best;
                       if (best != cur[u]) {
                         *changed += 1;
                         auto& view = first_changed.view();
                         if (u < view) view = u;
                       }
                     });
        ++rounds;
        changed_history.push_back(changed.get_value());
        first_changed_history.push_back(first_changed.get_value());
        cur.swap(next);
        if (changed.get_value() == 0) break;
      }
    });
    const auto t1 = now_ns();

    // Replay the propagation serially: every round's change count and
    // first-changed vertex are deterministic, so the reducers themselves
    // are checked, not just the fixpoint.
    std::vector<Vertex> scur(n), snext(n);
    for (Vertex v = 0; v < n; ++v) scur[v] = v;
    bool reducers_ok = true;
    for (std::uint64_t r = 0; r < rounds; ++r) {
      std::uint64_t changed = 0;
      Vertex first = std::numeric_limits<Vertex>::max();
      for (Vertex u = 0; u < n; ++u) {
        Vertex best = scur[u];
        for (const Vertex* it = g.adj_begin(u); it != g.adj_end(u); ++it) {
          if (scur[*it] < best) best = scur[*it];
        }
        snext[u] = best;
        if (best != scur[u]) {
          ++changed;
          if (u < first) first = u;
        }
      }
      scur.swap(snext);
      reducers_ok = reducers_ok && changed_history[r] == changed &&
                    first_changed_history[r] == first;
    }

    const std::vector<Vertex> expect = serial_components(g);

    RunResult out;
    out.seconds = static_cast<double>(t1 - t0) / 1e9;
    out.items = g.num_edges();
    out.verified = reducers_ok && cur == expect;
    out.detail =
        out.verified
            ? "labels converged in " + std::to_string(rounds) +
                  " rounds; per-round reducers match serial replay"
            : (reducers_ok ? "converged labels differ from serial components"
                           : "per-round change counts differ from replay");
    return out;
  }
};

}  // namespace

void register_components(Registry& r) {
  r.add(make_workload<Components>(
      "components", "min-label propagation with add+min reducers per round"));
}

}  // namespace cilkm::workloads
