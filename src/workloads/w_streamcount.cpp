// Streaming/incremental wordcount (second-wave scenario): models a request
// stream rather than one batch. Requests arrive in waves; each wave is one
// scheduler run over a persistent map-union reducer, with the words of each
// request drawn from a per-wave DotMix stream. After every wave the
// cumulative counts are checkpointed, so the scenario verifies the
// incremental trajectory — not just the final state — against a serial
// replay of the same stream.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "runtime/pedigree.hpp"
#include "util/dprng.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"
#include "workloads/workload.hpp"

namespace cilkm::workloads {
namespace {

struct AddCounts {
  void operator()(std::uint64_t& into, const std::uint64_t& from) const {
    into += from;
  }
};

using StreamMonoid = map_union<std::string, std::uint64_t, AddCounts>;
using CountMap = std::unordered_map<std::string, std::uint64_t>;

const char* kLexicon[] = {"get",    "put",   "post",  "head",  "query",
                          "batch",  "steal", "merge", "view",  "reduce",
                          "worker", "frame", "park",  "wake",  "join"};

constexpr int kWaves = 6;

std::uint64_t wave_seed(std::uint64_t seed, int wave) {
  std::uint64_t state = seed ^ (0x5741564500000000ULL + static_cast<std::uint64_t>(wave));
  return splitmix64(state);
}

/// Process one wave of `requests` requests: each draws 1–3 words from the
/// wave's DPRNG stream and counts them via `touch`.
template <typename Touch>
void wave_loop(std::int64_t requests, Dprng& rng, Touch&& touch) {
  parallel_for(0, requests, 32, [&](std::int64_t) {
    const std::uint64_t words = 1 + rng.next_below(3);
    for (std::uint64_t w = 0; w < words; ++w) {
      touch(kLexicon[rng.next_below(std::size(kLexicon))]);
    }
  });
}

/// Order-independent checkpoint of a cumulative count map.
std::uint64_t checksum(const CountMap& counts) {
  std::uint64_t sum = 0;
  for (const auto& [word, count] : counts) {
    std::uint64_t state = count;
    for (const char c : word) state ^= static_cast<std::uint64_t>(c) << 17;
    sum += splitmix64(state);
  }
  return sum;
}

template <typename Policy>
struct StreamCount {
  static RunResult run(const RunConfig& cfg) {
    const std::int64_t requests = 2000 * static_cast<std::int64_t>(cfg.scale);

    // Serial replay of the whole stream, checkpointing after each wave.
    CountMap expect;
    std::vector<std::uint64_t> expect_checkpoints;
    for (int wave = 0; wave < kWaves; ++wave) {
      rt::PedigreeScope scope;
      Dprng rng(wave_seed(cfg.seed, wave));
      wave_loop(requests, rng, [&](const char* word) { ++expect[word]; });
      expect_checkpoints.push_back(checksum(expect));
    }

    reducer<StreamMonoid, Policy> counts;
    std::vector<std::uint64_t> checkpoints;
    double seconds = 0;
    for (int wave = 0; wave < kWaves; ++wave) {
      Dprng rng(wave_seed(cfg.seed, wave));
      const auto t0 = now_ns();
      run_cell(cfg, [&] {
        wave_loop(requests, rng,
                  [&](const char* word) { ++counts.view()[word]; });
      });
      const auto t1 = now_ns();
      seconds += static_cast<double>(t1 - t0) / 1e9;
      // Between waves the stream is quiescent: the reducer's leftmost view
      // IS the cumulative state, checkpointable without ending its life.
      checkpoints.push_back(checksum(counts.view()));
    }

    RunResult out;
    out.seconds = seconds;
    out.items = static_cast<std::uint64_t>(requests) * kWaves;
    out.verified =
        checkpoints == expect_checkpoints && counts.get_value() == expect;
    out.detail =
        out.verified
            ? std::to_string(kWaves) + " waves, every checkpoint matches"
            : "incremental counts diverge from the serial stream replay";
    return out;
  }
};

}  // namespace

void register_streamcount(Registry& r) {
  r.add(make_workload<StreamCount>(
      "streamcount",
      "incremental wordcount over a request stream of DPRNG-drawn waves"));
}

}  // namespace cilkm::workloads
