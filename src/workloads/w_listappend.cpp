// List-append reducer stress (second-wave scenario, cf. the OpenCilk
// reducer_bench list benchmarks): every loop index appends (i, draw) pairs
// to a list_append reducer. The monoid is non-commutative and the draws are
// DotMix-deterministic, so the final list must equal the serial sequence
// ELEMENT FOR ELEMENT — the sharpest end-to-end statement of "serial
// semantics + deterministic randomness" a scenario can make.
#include <cstdint>
#include <list>
#include <string>
#include <utility>
#include <vector>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "runtime/pedigree.hpp"
#include "util/dprng.hpp"
#include "util/timing.hpp"
#include "workloads/workload.hpp"

namespace cilkm::workloads {
namespace {

using Entry = std::pair<std::int64_t, std::uint64_t>;

/// The shared shape: fixed grain so the spawn tree (and every pedigree) is
/// worker-count-independent. Indices divisible by 5 append a second entry,
/// exercising uneven per-strand rank advances.
template <typename Append>
void append_loop(std::int64_t n, Dprng& rng, Append&& append) {
  parallel_for(0, n, 16, [&](std::int64_t i) {
    append({i, rng.next()});
    if (i % 5 == 0) append({~i, rng.next()});
  });
}

template <typename Policy>
struct ListAppend {
  static RunResult run(const RunConfig& cfg) {
    const std::int64_t n = 30'000 * static_cast<std::int64_t>(cfg.scale);

    std::vector<Entry> expect;
    {
      rt::PedigreeScope scope;
      Dprng rng(cfg.seed);
      append_loop(n, rng, [&](Entry e) { expect.push_back(e); });
    }

    list_append_reducer<Entry, Policy> list;
    Dprng rng(cfg.seed);
    const auto t0 = now_ns();
    run_cell(cfg, [&] {
      append_loop(n, rng, [&](Entry e) { list.view().push_back(e); });
    });
    const auto t1 = now_ns();

    const std::list<Entry>& got = list.get_value();
    bool same = got.size() == expect.size();
    if (same) {
      std::size_t i = 0;
      for (const Entry& e : got) {
        if (e != expect[i++]) {
          same = false;
          break;
        }
      }
    }

    RunResult out;
    out.seconds = static_cast<double>(t1 - t0) / 1e9;
    out.items = static_cast<std::uint64_t>(expect.size());
    out.verified = same;
    out.detail = same ? std::to_string(expect.size()) +
                            " appends in exact serial order with serial draws"
                      : "list diverges from the serial append sequence";
    return out;
  }
};

}  // namespace

void register_listappend(Registry& r) {
  r.add(make_workload<ListAppend>(
      "listappend",
      "non-commutative list-append stress with DPRNG-drawn payloads"));
}

}  // namespace cilkm::workloads
