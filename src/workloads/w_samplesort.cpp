// Sample sort with reducer buckets: phase 1 classifies elements into 32
// vector-concat reducers in parallel (order within a bucket is the serial
// input order, by the reducer guarantee); phase 2 sorts the buckets in
// parallel with no reducers at all. The concatenation must equal std::sort
// of the input.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"
#include "workloads/workload.hpp"

namespace cilkm::workloads {
namespace {

constexpr unsigned kBuckets = 32;

template <typename Policy>
struct SampleSort {
  static RunResult run(const RunConfig& cfg) {
    const std::size_t n = 100'000 * static_cast<std::size_t>(cfg.scale);

    Xoshiro256 rng(cfg.seed);
    std::vector<std::uint64_t> input(n);
    for (auto& v : input) v = rng();

    // Splitters from a sorted oversample (deterministic given the seed).
    std::vector<std::uint64_t> sample;
    for (unsigned i = 0; i < 8 * kBuckets; ++i) {
      sample.push_back(input[rng.below(n)]);
    }
    std::sort(sample.begin(), sample.end());
    std::vector<std::uint64_t> splitters;
    for (unsigned b = 1; b < kBuckets; ++b) {
      splitters.push_back(sample[b * sample.size() / kBuckets]);
    }

    std::vector<std::unique_ptr<vector_reducer<std::uint64_t, Policy>>>
        buckets;
    for (unsigned b = 0; b < kBuckets; ++b) {
      buckets.push_back(
          std::make_unique<vector_reducer<std::uint64_t, Policy>>());
    }

    const auto t0 = now_ns();
    run_cell(cfg, [&] {
      parallel_for(0, static_cast<std::int64_t>(n), 1024,
                   [&](std::int64_t i) {
                     const std::uint64_t v =
                         input[static_cast<std::size_t>(i)];
                     const auto it = std::upper_bound(splitters.begin(),
                                                      splitters.end(), v);
                     const auto b = static_cast<std::size_t>(
                         it - splitters.begin());
                     (*buckets[b])->push_back(v);
                   });
    });

    // Buckets are now quiescent plain vectors; sort them in parallel.
    std::vector<std::vector<std::uint64_t>> sorted(kBuckets);
    for (unsigned b = 0; b < kBuckets; ++b) {
      sorted[b] = buckets[b]->move_value();
    }
    run_cell(cfg, [&] {
      parallel_for(0, kBuckets, 1, [&](std::int64_t b) {
        std::sort(sorted[static_cast<std::size_t>(b)].begin(),
                  sorted[static_cast<std::size_t>(b)].end());
      });
    });
    const auto t1 = now_ns();

    std::vector<std::uint64_t> result;
    result.reserve(n);
    for (const auto& bucket : sorted) {
      result.insert(result.end(), bucket.begin(), bucket.end());
    }

    std::vector<std::uint64_t> expect = input;
    std::sort(expect.begin(), expect.end());

    RunResult out;
    out.seconds = static_cast<double>(t1 - t0) / 1e9;
    out.items = n;
    out.verified = result == expect;
    out.detail = out.verified
                     ? std::to_string(n) + " elements sorted across " +
                           std::to_string(kBuckets) + " reducer buckets"
                     : "sample-sorted output differs from std::sort";
    return out;
  }
};

}  // namespace

void register_samplesort(Registry& r) {
  r.add(make_workload<SampleSort>(
      "samplesort", "two-phase sample sort with vector-reducer buckets"));
}

}  // namespace cilkm::workloads
