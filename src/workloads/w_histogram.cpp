// Parallel histogram over a reducer array: one add-reducer per bucket (the
// classic "reducer array" pattern), plus a max-reducer tracking the largest
// single value seen. Stresses many simultaneously-live reducers of the same
// policy — wide SPA pages, big hypermaps, dense flat arrays.
#include <cstdint>
#include <memory>
#include <vector>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "util/timing.hpp"
#include "workloads/workload.hpp"

namespace cilkm::workloads {
namespace {

constexpr unsigned kBuckets = 64;

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  return x;
}

template <typename Policy>
struct Histogram {
  static RunResult run(const RunConfig& cfg) {
    const std::int64_t n = 200'000 * static_cast<std::int64_t>(cfg.scale);

    std::vector<std::unique_ptr<reducer_opadd<std::uint64_t, Policy>>> bins;
    bins.reserve(kBuckets);
    for (unsigned b = 0; b < kBuckets; ++b) {
      bins.push_back(
          std::make_unique<reducer_opadd<std::uint64_t, Policy>>());
    }
    reducer_max<std::uint64_t, Policy> largest;

    const auto t0 = now_ns();
    run_cell(cfg, [&] {
      parallel_for(0, n, 1024, [&](std::int64_t i) {
        const std::uint64_t v =
            mix(cfg.seed + static_cast<std::uint64_t>(i));
        *(*bins[v % kBuckets]) += 1;
        auto& view = largest.view();
        if (v > view) view = v;
      });
    });
    const auto t1 = now_ns();

    std::vector<std::uint64_t> expect(kBuckets, 0);
    std::uint64_t expect_largest = 0;
    for (std::int64_t i = 0; i < n; ++i) {
      const std::uint64_t v = mix(cfg.seed + static_cast<std::uint64_t>(i));
      ++expect[v % kBuckets];
      if (v > expect_largest) expect_largest = v;
    }

    bool ok = largest.get_value() == expect_largest;
    std::uint64_t total = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
      ok = ok && bins[b]->get_value() == expect[b];
      total += bins[b]->get_value();
    }
    ok = ok && total == static_cast<std::uint64_t>(n);

    RunResult out;
    out.seconds = static_cast<double>(t1 - t0) / 1e9;
    out.items = static_cast<std::uint64_t>(n);
    out.verified = ok;
    out.detail = ok ? std::to_string(kBuckets) +
                          " bucket counts and the max all match"
                    : "bucket counts differ from serial histogram";
    return out;
  }
};

}  // namespace

void register_histogram(Registry& r) {
  r.add(make_workload<Histogram>(
      "histogram", "reducer-array histogram, 64 live add-reducers + a max"));
}

}  // namespace cilkm::workloads
