// N-queens (the examples/nqueens.cpp search, registered): counts solutions
// with an add-reducer and collects every packed board into a vector
// reducer, which must come back in exact serial (depth-first) order.
#include <cstdint>
#include <vector>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "util/timing.hpp"
#include "workloads/workload.hpp"

namespace cilkm::workloads {
namespace {

constexpr int kMaxN = 16;

struct Board {
  int rows[kMaxN];
  int n = 0;

  bool safe(int row, int col) const {
    for (int r = 0; r < row; ++r) {
      const int c = rows[r];
      if (c == col || c - r == col - row || c + r == col + row) return false;
    }
    return true;
  }
};

std::uint64_t pack(const Board& board, int n) {
  std::uint64_t packed = 0;
  for (int r = 0; r < n; ++r) {
    packed |= static_cast<std::uint64_t>(board.rows[r]) << (4 * r);
  }
  return packed;
}

template <typename Policy>
void solve(Board board, int row, int n,
           reducer_opadd<long, Policy>& count,
           vector_reducer<std::uint64_t, Policy>& solutions) {
  if (row == n) {
    *count += 1;
    solutions->push_back(pack(board, n));
    return;
  }
  SpawnGroup group;
  for (int col = 0; col < n; ++col) {
    if (!board.safe(row, col)) continue;
    Board next = board;
    next.rows[row] = col;
    if (row < 3) {
      group.spawn([next, row, n, &count, &solutions] {
        solve(next, row + 1, n, count, solutions);
      });
    } else {
      solve(next, row + 1, n, count, solutions);
    }
  }
  group.sync();
}

void serial_solve(Board board, int row, int n, long& count,
                  std::vector<std::uint64_t>& solutions) {
  if (row == n) {
    ++count;
    solutions.push_back(pack(board, n));
    return;
  }
  for (int col = 0; col < n; ++col) {
    if (!board.safe(row, col)) continue;
    Board next = board;
    next.rows[row] = col;
    serial_solve(next, row + 1, n, count, solutions);
  }
}

template <typename Policy>
struct NQueens {
  static RunResult run(const RunConfig& cfg) {
    const int n = cfg.scale >= 4 ? 11 : 8 + static_cast<int>(cfg.scale) - 1;

    reducer_opadd<long, Policy> count;
    vector_reducer<std::uint64_t, Policy> solutions;
    const auto t0 = now_ns();
    run_cell(cfg, [&] {
      solve<Policy>(Board{{}, n}, 0, n, count, solutions);
    });
    const auto t1 = now_ns();

    long expect_count = 0;
    std::vector<std::uint64_t> expect_solutions;
    serial_solve(Board{{}, n}, 0, n, expect_count, expect_solutions);

    RunResult out;
    out.seconds = static_cast<double>(t1 - t0) / 1e9;
    out.items = static_cast<std::uint64_t>(expect_count);
    out.verified = count.get_value() == expect_count &&
                   solutions.get_value() == expect_solutions;
    out.detail = out.verified
                     ? std::to_string(expect_count) + " solutions for n=" +
                           std::to_string(n) + " in serial order"
                     : "count=" + std::to_string(count.get_value()) +
                           " expected=" + std::to_string(expect_count) +
                           (solutions.get_value() == expect_solutions
                                ? ""
                                : " (solution order differs)");
    return out;
  }
};

}  // namespace

void register_nqueens(Registry& r) {
  r.add(make_workload<NQueens>(
      "nqueens", "irregular backtracking search; solutions in serial order"));
}

}  // namespace cilkm::workloads
