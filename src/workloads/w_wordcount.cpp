// Wordcount (the examples/wordcount.cpp monoid, registered): a user-defined
// map-union-with-summed-counts monoid plugged into the reducer template,
// verified against a serial count of the same synthetic corpus.
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"
#include "workloads/workload.hpp"

namespace cilkm::workloads {
namespace {

struct AddCounts {
  void operator()(std::uint64_t& into, const std::uint64_t& from) const {
    into += from;
  }
};

using WordCountMonoid = map_union<std::string, std::uint64_t, AddCounts>;

const char* kLexicon[] = {"cilk",   "reducer", "view",     "steal",
                          "worker", "monoid",  "hypermap", "tlmm",
                          "page",   "spa"};

std::vector<std::string> synth_corpus(int sentences, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::string> corpus;
  corpus.reserve(static_cast<std::size_t>(sentences));
  for (int i = 0; i < sentences; ++i) {
    std::string s;
    const int words = 3 + static_cast<int>(rng.below(10));
    for (int w = 0; w < words; ++w) {
      s += kLexicon[rng.below(std::size(kLexicon))];
      s += ' ';
    }
    corpus.push_back(std::move(s));
  }
  return corpus;
}

void count_words(const std::string& sentence,
                 std::unordered_map<std::string, std::uint64_t>& counts) {
  std::size_t pos = 0;
  while (pos < sentence.size()) {
    const std::size_t space = sentence.find(' ', pos);
    if (space == std::string::npos) break;
    if (space > pos) ++counts[sentence.substr(pos, space - pos)];
    pos = space + 1;
  }
}

template <typename Policy>
struct WordCount {
  static RunResult run(const RunConfig& cfg) {
    const int sentences = 20'000 * static_cast<int>(cfg.scale);
    const auto corpus = synth_corpus(sentences, cfg.seed);

    reducer<WordCountMonoid, Policy> counts;
    const auto t0 = now_ns();
    run_cell(cfg, [&] {
      parallel_for(0, static_cast<std::int64_t>(corpus.size()), 64,
                   [&](std::int64_t i) {
                     count_words(corpus[static_cast<std::size_t>(i)],
                                 counts.view());
                   });
    });
    const auto t1 = now_ns();

    std::unordered_map<std::string, std::uint64_t> expect;
    for (const auto& s : corpus) count_words(s, expect);

    RunResult out;
    out.seconds = static_cast<double>(t1 - t0) / 1e9;
    out.items = static_cast<std::uint64_t>(sentences);
    out.verified = counts.get_value() == expect;
    out.detail = out.verified
                     ? std::to_string(expect.size()) +
                           " distinct words match the serial count"
                     : "word counts differ from serial reference";
    return out;
  }
};

}  // namespace

void register_wordcount(Registry& r) {
  r.add(make_workload<WordCount>(
      "wordcount", "user-defined map-union monoid over a synthetic corpus"));
}

}  // namespace cilkm::workloads
