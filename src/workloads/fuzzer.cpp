// Seed-replayable scenario fuzzer (see fuzzer.hpp for the replay contract).
// Each composite is drawn from one 64-bit seed: a reducer monoid, a spawn
// shape, a view-store policy, a worker count, and a steal-batch setting.
// The composite's draws come from the DotMix DPRNG, so the serial elision
// and the scheduled run consume IDENTICAL value streams — any divergence is
// a runtime bug (lost view update, misordered reduce, pedigree drift), not
// noise, and the failing seed reproduces it on any machine and schedule.
#include "workloads/fuzzer.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <new>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "chaos/chaos.hpp"
#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "runtime/pedigree.hpp"
#include "runtime/scheduler.hpp"
#include "util/dprng.hpp"
#include "util/rng.hpp"

namespace cilkm::workloads {
namespace {

// ---------------------------------------------------------------- the space

enum class Shape : int { kFlatLoop, kBinaryTree, kIrregularTree, kNestedLoops };
constexpr int kNumShapes = 4;

const char* shape_name(Shape s) {
  switch (s) {
    case Shape::kFlatLoop: return "flat-loop";
    case Shape::kBinaryTree: return "binary-tree";
    case Shape::kIrregularTree: return "irregular-tree";
    case Shape::kNestedLoops: return "nested-loops";
  }
  return "?";
}

enum class MonoidKind : int {
  kAdd,
  kXor,
  kMin,
  kMax,
  kString,
  kVector,
  kMapUnion,
};
constexpr int kNumMonoids = 7;

const char* monoid_name(MonoidKind m) {
  switch (m) {
    case MonoidKind::kAdd: return "op_add";
    case MonoidKind::kXor: return "op_xor";
    case MonoidKind::kMin: return "op_min";
    case MonoidKind::kMax: return "op_max";
    case MonoidKind::kString: return "string_concat";
    case MonoidKind::kVector: return "vector_concat";
    case MonoidKind::kMapUnion: return "map_union";
  }
  return "?";
}

struct AddValues {
  void operator()(std::uint64_t& into, const std::uint64_t& from) const {
    into += from;
  }
};

using FuzzMap = map_union<std::uint64_t, std::uint64_t, AddValues>;

/// One fully-specified composite, a pure function of its seed (plus the
/// sweep's policy/worker allow-lists and scale knob).
struct Scenario {
  std::uint64_t seed = 0;
  MonoidKind monoid{};
  Shape shape{};
  PolicyKind policy{};
  unsigned workers = 1;
  unsigned steal_batch = 0;  // Scheduler knob: 0 = half, 1 = single-frame
  std::int64_t n = 0;        // loop-shape trip count
  int depth = 0;             // tree-shape depth
  int draws = 1;             // DPRNG draws folded in per leaf strand
};

Scenario draw_scenario(std::uint64_t seed, const FuzzOptions& opts) {
  std::uint64_t state = seed;
  auto pick = [&state](std::uint64_t bound) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(splitmix64(state)) * bound) >> 64);
  };

  Scenario sc;
  sc.seed = seed;
  sc.monoid = static_cast<MonoidKind>(pick(kNumMonoids));
  sc.shape = static_cast<Shape>(pick(kNumShapes));

  std::vector<PolicyKind> policies = opts.policies;
  if (policies.empty()) {
    policies.assign(std::begin(kAllPolicies), std::end(kAllPolicies));
  }
  sc.policy = policies[pick(policies.size())];

  std::vector<unsigned> workers = opts.workers;
  if (workers.empty()) workers = {1, 2, 4};
  sc.workers = workers[pick(workers.size())];

  sc.steal_batch = pick(2) == 0 ? 0 : 1;
  sc.n = static_cast<std::int64_t>(200 + pick(1800)) *
         static_cast<std::int64_t>(std::max(1u, opts.scale));
  sc.depth = 4 + static_cast<int>(pick(5));  // 4..8
  sc.draws = 1 + static_cast<int>(pick(3));  // 1..3
  return sc;
}

// ------------------------------------------------------------------- shapes

/// Execute the composite's spawn shape, invoking `leaf()` at every leaf
/// strand. Grains and split points are fixed constants (never derived from
/// the worker count), so the spawn tree — hence every pedigree — is
/// identical across schedules; the irregular tree additionally draws its own
/// fan-out from `rng`, making the SHAPE itself schedule-independent too.
template <typename Leaf>
void run_shape(const Scenario& sc, Dprng& rng, Leaf&& leaf) {
  switch (sc.shape) {
    case Shape::kFlatLoop:
      parallel_for(0, sc.n, 16, [&](std::int64_t) { leaf(); });
      return;
    case Shape::kBinaryTree: {
      auto rec = [&](auto&& self, int depth) -> void {
        if (depth == 0) {
          leaf();
          return;
        }
        parallel_invoke([&] { self(self, depth - 1); },
                        [&] { self(self, depth - 1); });
      };
      rec(rec, sc.depth + 3);  // 128..2048 leaves
      return;
    }
    case Shape::kIrregularTree: {
      auto rec = [&](auto&& self, int depth) -> void {
        leaf();
        if (depth == 0) return;
        const std::uint64_t kids = 1 + rng.next_below(3);
        SpawnGroup g;
        for (std::uint64_t k = 0; k < kids; ++k) {
          g.spawn([&self, depth] { self(self, depth - 1); });
        }
        g.sync();
      };
      rec(rec, sc.depth);
      return;
    }
    case Shape::kNestedLoops:
      parallel_for(0, sc.n / 48 + 1, 2, [&](std::int64_t) {
        parallel_for(0, 48, 8, [&](std::int64_t) { leaf(); });
      });
      return;
  }
}

// ------------------------------------------------------------------ monoids

/// Fold one DPRNG draw into a view (or the serial accumulator) under monoid
/// M. The per-strand update composes with M's reduce exactly as the same
/// update sequence would in serial order, so the serial accumulator IS the
/// expected value.
template <typename M>
void apply_draw(typename M::value_type& view, std::uint64_t draw) {
  if constexpr (std::is_same_v<M, op_add<std::uint64_t>>) {
    view += draw;
  } else if constexpr (std::is_same_v<M, op_xor<std::uint64_t>>) {
    view ^= draw;
  } else if constexpr (std::is_same_v<M, op_min<std::uint64_t>>) {
    view = std::min(view, draw);
  } else if constexpr (std::is_same_v<M, op_max<std::uint64_t>>) {
    view = std::max(view, draw);
  } else if constexpr (std::is_same_v<M, string_concat>) {
    view.push_back(static_cast<char>('a' + draw % 26));
  } else if constexpr (std::is_same_v<M, vector_concat<std::uint64_t>>) {
    view.push_back(draw);
  } else {
    static_assert(std::is_same_v<M, FuzzMap>, "unhandled monoid");
    view[draw % 61] += draw >> 32;
  }
}

std::uint64_t digest(std::uint64_t v) { return v; }
std::uint64_t digest(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const char c : s) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  return h;
}
std::uint64_t digest(const std::vector<std::uint64_t>& v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint64_t x : v) h = (h ^ x) * 1099511628211ULL;
  return h;
}
std::uint64_t digest(const std::unordered_map<std::uint64_t, std::uint64_t>& m) {
  std::uint64_t sum = 0;  // order-independent
  for (const auto& [k, v] : m) {
    std::uint64_t state = k * 0x9e3779b97f4a7c15ULL + v;
    sum += splitmix64(state);
  }
  return sum;
}

std::string hex(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

// ------------------------------------------------------------ the composite

template <typename M, typename Policy>
bool run_composite(const Scenario& sc, rt::Scheduler* pool,
                   std::string* detail) {
  using T = typename M::value_type;

  // Serial elision: same shape, same DPRNG, plain accumulator, no scheduler.
  T expect = M{}.identity();
  {
    rt::PedigreeScope scope;
    Dprng rng(sc.seed);
    run_shape(sc, rng, [&] {
      for (int d = 0; d < sc.draws; ++d) apply_draw<M>(expect, rng.next());
    });
  }

  reducer<M, Policy> red;
  Dprng rng(sc.seed);
  bool chaos_oom = false;
  try {
    pool->run([&] {
      run_shape(sc, rng, [&] {
        for (int d = 0; d < sc.draws; ++d)
          apply_draw<M>(red.view(), rng.next());
      });
    });
  } catch (const std::bad_alloc&) {
    // An armed kAllocRefill site injected an OOM; the run aborted cleanly
    // through the SpawnFrame::eptr join protocol and the pool is reusable
    // (the next composite proves it). The partial reduction can't be
    // verified, so the composite passes on the degradation property alone.
    if (!chaos::enabled()) throw;
    chaos_oom = true;
  }
  if (chaos_oom) {
    *detail = "chaos-oom (injected allocator failure; verify skipped)";
    return true;
  }

  const T& got = red.get_value();
  if (got == expect) {
    detail->clear();
    return true;
  }
  *detail = "digest " + hex(digest(got)) + " != serial " + hex(digest(expect));
  return false;
}

template <typename Policy>
bool dispatch_monoid(const Scenario& sc, rt::Scheduler* pool,
                     std::string* detail) {
  switch (sc.monoid) {
    case MonoidKind::kAdd:
      return run_composite<op_add<std::uint64_t>, Policy>(sc, pool, detail);
    case MonoidKind::kXor:
      return run_composite<op_xor<std::uint64_t>, Policy>(sc, pool, detail);
    case MonoidKind::kMin:
      return run_composite<op_min<std::uint64_t>, Policy>(sc, pool, detail);
    case MonoidKind::kMax:
      return run_composite<op_max<std::uint64_t>, Policy>(sc, pool, detail);
    case MonoidKind::kString:
      return run_composite<string_concat, Policy>(sc, pool, detail);
    case MonoidKind::kVector:
      return run_composite<vector_concat<std::uint64_t>, Policy>(sc, pool,
                                                                 detail);
    case MonoidKind::kMapUnion:
      return run_composite<FuzzMap, Policy>(sc, pool, detail);
  }
  *detail = "unreachable monoid";
  return false;
}

bool run_scenario(const Scenario& sc, rt::Scheduler* pool,
                  std::string* detail) {
  switch (sc.policy) {
    case PolicyKind::kMm: return dispatch_monoid<mm_policy>(sc, pool, detail);
    case PolicyKind::kHypermap:
      return dispatch_monoid<hypermap_policy>(sc, pool, detail);
    case PolicyKind::kFlat:
      return dispatch_monoid<flat_policy>(sc, pool, detail);
  }
  *detail = "unreachable policy";
  return false;
}

}  // namespace

int run_fuzz(const FuzzOptions& opts) {
  // Pools are keyed by (workers, steal_batch) and reused across composites,
  // mirroring run_matrix's warm-pool discipline.
  std::map<std::pair<unsigned, unsigned>, std::unique_ptr<rt::Scheduler>> pools;

  std::printf("fuzz sweep: base seed %s, %d composite(s), scale %u\n",
              hex(opts.seed).c_str(), opts.iters, std::max(1u, opts.scale));
  if (opts.chaos) {
    chaos::Config ccfg;
    ccfg.p = opts.chaos_p;
    ccfg.seed = opts.chaos_seed;
    if (ccfg.seed == 0) {
      // Derive deterministically from the sweep's base seed, so plain
      // `--fuzz --chaos P` replays bit-for-bit without a second flag.
      std::uint64_t s = opts.seed;
      ccfg.seed = splitmix64(s);
    }
    if (opts.chaos_sites != 0) ccfg.sites = opts.chaos_sites;
    chaos::arm(ccfg);
    std::printf("  chaos: armed p=%g seed=%s sites=0x%x\n", ccfg.p,
                hex(ccfg.seed).c_str(), ccfg.sites);
  }
  std::FILE* artifact = nullptr;
  int failures = 0;
  for (int i = 0; i < opts.iters; ++i) {
    const Scenario sc =
        draw_scenario(opts.seed + static_cast<std::uint64_t>(i), opts);

    auto& pool = pools[{sc.workers, sc.steal_batch}];
    if (pool == nullptr) {
      rt::SchedulerOptions so;
      so.steal_batch = sc.steal_batch;
      pool = std::make_unique<rt::Scheduler>(sc.workers, so);
    }

    std::string detail;
    const bool ok = run_scenario(sc, pool.get(), &detail);
    std::printf(
        "  %-20s %-13s %-14s %-9s P=%u batch=%-4s %s%s%s\n",
        hex(sc.seed).c_str(), monoid_name(sc.monoid), shape_name(sc.shape),
        policy_name(sc.policy), sc.workers, sc.steal_batch == 0 ? "half" : "1",
        ok ? "ok" : "FAIL", detail.empty() ? "" : "  ", detail.c_str());

    if (!ok) {
      ++failures;
      if (artifact == nullptr) {
        artifact = std::fopen(kFuzzFailureArtifact, "w");
      }
      if (artifact != nullptr) {
        std::fprintf(artifact,
                     "cilkm_run --fuzz --fuzz-seed %s --fuzz-iters 1"
                     "  # %s x %s, policy %s, P=%u, steal-batch %s: %s\n",
                     hex(sc.seed).c_str(), monoid_name(sc.monoid),
                     shape_name(sc.shape), policy_name(sc.policy), sc.workers,
                     sc.steal_batch == 0 ? "half" : "1", detail.c_str());
      }
    }
  }
  if (artifact != nullptr) std::fclose(artifact);

  if (opts.chaos) {
    for (unsigned s = 0; s < chaos::kNumSites; ++s) {
      const auto site = static_cast<chaos::Site>(s);
      const chaos::SiteStats st = chaos::site_stats(site);
      if (st.consults == 0) continue;
      std::printf("  chaos: %-8s consults=%llu injected=%llu digest=%s\n",
                  chaos::to_string(site),
                  static_cast<unsigned long long>(st.consults),
                  static_cast<unsigned long long>(st.injected),
                  hex(st.digest).c_str());
    }
    chaos::disarm();
  }

  if (failures != 0) {
    std::fprintf(stderr,
                 "fuzz: %d of %d composite(s) FAILED; replay commands "
                 "written to %s\n",
                 failures, opts.iters, kFuzzFailureArtifact);
  } else {
    std::printf("fuzz: all %d composite(s) match their serial elisions\n",
                opts.iters);
  }
  return failures;
}

}  // namespace cilkm::workloads
