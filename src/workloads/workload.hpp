// The workload subsystem: registered, self-checking scenarios exercised
// across every reducer view-store policy. A Workload is (name, input-size
// knob, one run function per policy); each run function executes the
// parallel computation via run_cell — on the driver's persistent per-P
// scheduler when one is supplied, else a fresh pool — and verifies the
// outcome against a serial reference before returning, so every registered
// scenario doubles
// as a regression test. The cilkm_run driver (and tests/test_workloads.cpp)
// sweep the full workload × policy × worker-count matrix.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/reducer.hpp"
#include "util/rng.hpp"

namespace cilkm::rt {
class Scheduler;
}

namespace cilkm::workloads {

/// The three view-store mechanisms a workload runs under (the Policy types
/// of core/reducer.hpp, reified for runtime selection by the driver).
enum class PolicyKind : int { kMm = 0, kHypermap = 1, kFlat = 2 };
inline constexpr int kNumPolicies = 3;
inline constexpr PolicyKind kAllPolicies[] = {
    PolicyKind::kMm, PolicyKind::kHypermap, PolicyKind::kFlat};

const char* policy_name(PolicyKind kind);

/// Parse "mm" | "hypermap" | "flat"; returns false on anything else.
bool parse_policy(const std::string& text, PolicyKind* out);

/// Input knobs for one workload cell. `scale` multiplies the workload's
/// base input size (scale 1 is sized for sub-second smoke runs); `seed`
/// feeds every pseudo-random input generator, so a cell is reproducible
/// from (workload, policy, workers, scale, seed) alone.
struct RunConfig {
  unsigned workers = 4;
  unsigned scale = 1;
  std::uint64_t seed = kDefaultSeed;
  /// Optional persistent worker pool to run on (must have `workers` workers).
  /// The driver passes one pool per worker count so a cell's timing measures
  /// the mechanism, not thread creation; null runs on a fresh pool.
  rt::Scheduler* scheduler = nullptr;
};

/// Execute `root` for one cell: on cfg.scheduler when provided (pool reuse
/// across reps/policies), otherwise on a fresh cfg.workers-worker pool.
/// Every workload body funnels its parallel section through this.
void run_cell(const RunConfig& cfg, std::function<void()> root);

/// Outcome of one cell. `verified` is the workload's self-check against its
/// serial reference; `seconds` times only the parallel section (inside
/// cilkm::run, excluding input generation and the serial oracle).
struct RunResult {
  bool verified = false;
  double seconds = 0;
  std::uint64_t items = 0;  // workload-defined unit of work (elements, edges…)
  std::string detail;       // human-readable outcome or failure reason
};

using RunFn = RunResult (*)(const RunConfig&);

struct Workload {
  std::string name;
  std::string summary;
  RunFn run[kNumPolicies] = {};

  RunResult run_policy(PolicyKind kind, const RunConfig& cfg) const {
    return run[static_cast<int>(kind)](cfg);
  }
};

/// Instantiate Body<Policy>::run for all three policies. Body is a class
/// template over the reducer policy with a static
/// `RunResult run(const RunConfig&)`.
template <template <typename> class Body>
Workload make_workload(std::string name, std::string summary) {
  Workload w;
  w.name = std::move(name);
  w.summary = std::move(summary);
  w.run[static_cast<int>(PolicyKind::kMm)] = &Body<mm_policy>::run;
  w.run[static_cast<int>(PolicyKind::kHypermap)] = &Body<hypermap_policy>::run;
  w.run[static_cast<int>(PolicyKind::kFlat)] = &Body<flat_policy>::run;
  return w;
}

/// The process-wide workload registry. Registration happens eagerly and in a
/// fixed order on first use (no static-initialization-order or linker
/// dead-stripping games): Registry::instance() calls every workload file's
/// register_*() hook exactly once.
class Registry {
 public:
  static Registry& instance();

  void add(Workload w);

  const Workload* find(const std::string& name) const;
  const std::vector<Workload>& all() const { return workloads_; }

 private:
  std::vector<Workload> workloads_;
};

}  // namespace cilkm::workloads
