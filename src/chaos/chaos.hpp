// Deterministic fault injection for the runtime's resource and protocol
// edges. Each fail-point site consults a pedigree-keyed DotMix hash
// (util/dprng.hpp), so whether a given strand faults is a pure function of
// (chaos seed, site, pedigree): the same --chaos-seed injects the same
// faults at the same strands regardless of worker count, view-store policy,
// steal-batch setting, or steal schedule — exactly the replay property the
// SPAA'12 DPRNG gives workload draws, applied to failure testing.
//
// Sites come in two flavors:
//   - fault sites (kAllocRefill, kFiberAcquire, kDequePush): the consult
//     returns true and the caller takes its degradation path — allocator
//     refill throws std::bad_alloc into the SpawnFrame::eptr join protocol,
//     fiber acquire falls back to running the frame on the scheduler's own
//     stack, deque push executes the child serially in place.
//   - delay sites (kStealDelay, kInstallDelay, kMergeDelay, kDepositDelay):
//     the consult spins for Config::delay_ns at a protocol point, widening
//     the THE/join race windows the way a preempted core would.
//
// Consults only happen on worker threads (external threads and the fuzzer's
// serial references are never injected), use the PURE hash (no leaf-rank
// bump), and so never perturb workload DPRNG streams: a run under chaos
// still verifies against its serial elision.
//
// Disarmed cost is one relaxed atomic load + branch per site (the same bar
// as the tracer's enabled() gate, pinned by bench/abl_chaos). Defining
// CILKM_NO_CHAOS compiles every site out entirely.
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/pedigree.hpp"

namespace cilkm::chaos {

enum class Site : unsigned {
  kAllocRefill = 0,  // fault: internal-allocator magazine refill → bad_alloc
  kFiberAcquire,     // fault: fiber-stack acquire → degraded (stackless) run
  kDequePush,        // fault: deque push → child runs serially in place
  kStealDelay,       // delay: after a successful steal, before the launch
  kInstallDelay,     // delay: before a join installs its deposited views
  kMergeDelay,       // delay: before a view-set merge at a join
  kDepositDelay,     // delay: before a view-set deposit at a park
};

inline constexpr unsigned kNumSites = 7;

constexpr std::uint32_t site_bit(Site s) noexcept {
  return 1u << static_cast<unsigned>(s);
}

inline constexpr std::uint32_t kFaultSites = site_bit(Site::kAllocRefill) |
                                             site_bit(Site::kFiberAcquire) |
                                             site_bit(Site::kDequePush);
inline constexpr std::uint32_t kDelaySites = site_bit(Site::kStealDelay) |
                                             site_bit(Site::kInstallDelay) |
                                             site_bit(Site::kMergeDelay) |
                                             site_bit(Site::kDepositDelay);
inline constexpr std::uint32_t kAllSites = kFaultSites | kDelaySites;

const char* to_string(Site s) noexcept;

/// Parse a comma-separated site list ("alloc,fiber,push,steal,install,
/// merge,deposit", plus the groups "faults", "delays", "all") into a mask.
/// Returns false on an unknown name; *mask is untouched then.
bool parse_sites(const char* text, std::uint32_t* mask) noexcept;

struct Config {
  /// Per-consult injection probability in [0, 1]; >= 1 always fires.
  double p = 0.0;
  /// DPRNG seed for the site decisions; independent of workload seeds.
  std::uint64_t seed = 0;
  /// Which sites are live (site_bit mask).
  std::uint32_t sites = kAllSites;
  /// Spin length for delay sites.
  std::uint32_t delay_ns = 2000;
};

/// Arm injection with `cfg`. Call only while no Scheduler::run is in
/// flight; arming resets all site statistics.
void arm(const Config& cfg);
void disarm();
Config config();

/// Per-site statistics, written with relaxed atomics by the consulting
/// workers. `digest` is an order-independent fingerprint (a commutative sum
/// over the decision hashes of the consults that fired), so two runs
/// injected the SAME fault set iff their (injected, digest) pairs match —
/// regardless of the order the schedule visited the strands in.
struct SiteStats {
  std::uint64_t consults = 0;
  std::uint64_t injected = 0;
  std::uint64_t digest = 0;
};

SiteStats site_stats(Site s) noexcept;
void reset_stats() noexcept;

namespace detail {
extern std::atomic<bool> g_armed;
extern thread_local unsigned t_suppress;

bool consult_fail(Site s, const rt::PedigreeState& ped) noexcept;
bool consult_fail_here(Site s) noexcept;
void consult_delay(Site s, const rt::PedigreeState& ped) noexcept;
void consult_delay_here(Site s) noexcept;
}  // namespace detail

/// The hot-path gate: false (one relaxed load) whenever chaos is disarmed.
inline bool enabled() noexcept {
#ifdef CILKM_NO_CHAOS
  return false;
#else
  return detail::g_armed.load(std::memory_order_relaxed);
#endif
}

/// Fault consult keyed on the calling strand's current pedigree.
inline bool should_fail(Site s) noexcept {
  return enabled() && detail::consult_fail_here(s);
}

/// Fault consult keyed on an explicit pedigree — for scheduler-context
/// sites where current_pedigree() is not the faulting strand's (e.g. the
/// fiber acquire for a stolen frame is keyed on that frame's snapshot).
inline bool should_fail(Site s, const rt::PedigreeState& ped) noexcept {
  return enabled() && detail::consult_fail(s, ped);
}

/// Delay consult (spin Config::delay_ns when it fires).
inline void maybe_delay(Site s) noexcept {
  if (enabled()) detail::consult_delay_here(s);
}

inline void maybe_delay(Site s, const rt::PedigreeState& ped) noexcept {
  if (enabled()) detail::consult_delay(s, ped);
}

/// RAII fault suppression for protocol sections whose allocations an
/// injected throw could NOT unwind safely — merges/deposits/installs at
/// joins and the fiber-header allocation in Worker::launch run inside the
/// scheduler's machinery, outside any SpawnFrame::eptr catch, so a
/// bad_alloc there would escape into fiber_main/scheduler_loop and
/// terminate. Fault sites check the (thread-local, nestable) counter before
/// hashing; delay sites are unaffected.
class SuppressFaults {
 public:
  SuppressFaults() noexcept { ++detail::t_suppress; }
  ~SuppressFaults() { --detail::t_suppress; }

  SuppressFaults(const SuppressFaults&) = delete;
  SuppressFaults& operator=(const SuppressFaults&) = delete;
};

}  // namespace cilkm::chaos
