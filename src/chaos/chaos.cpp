#include "chaos/chaos.hpp"

#include <cstring>

#include "runtime/worker.hpp"
#include "util/dprng.hpp"
#include "util/rng.hpp"
#include "util/timing.hpp"

namespace cilkm::chaos {
namespace {

/// Armed-state snapshot. Written only by arm()/disarm() (which the contract
/// restricts to quiescent moments — no run in flight), read by every
/// consult; the g_armed release store publishes it.
struct State {
  Config cfg;
  Dprng rng{0};
  /// Fire iff (decision_hash >> 11) < threshold53; 53 bits so the
  /// double→integer scaling is exact for every p in [0, 1).
  std::uint64_t threshold53 = 0;
  bool always = false;
};

State g_state;

/// Per-site salts folded into the pedigree hash so the seven sites draw
/// independent decision streams from one Γ table. Arbitrary odd constants.
constexpr std::uint64_t kSiteSalt[kNumSites] = {
    0x9e3779b97f4a7c15ULL, 0xc2b2ae3d27d4eb4fULL, 0x165667b19e3779f9ULL,
    0x27d4eb2f165667c5ULL, 0x85ebca77c2b2ae63ULL, 0xd6e8feb86659fd93ULL,
    0xa0761d6478bd642fULL,
};

std::atomic<std::uint64_t> g_consults[kNumSites];
std::atomic<std::uint64_t> g_injected[kNumSites];
std::atomic<std::uint64_t> g_digest[kNumSites];

constexpr const char* kSiteNames[kNumSites] = {
    "alloc", "fiber", "push", "steal", "install", "merge", "deposit",
};

/// The decision: salt the strand's pure DotMix hash per site, scatter once
/// more, compare against the probability threshold. Returns the scattered
/// hash through *decision so fired consults can fold it into the digest.
bool decide(Site s, const rt::PedigreeState& ped,
            std::uint64_t* decision) noexcept {
  std::uint64_t salted =
      g_state.rng.hash(ped) ^ kSiteSalt[static_cast<unsigned>(s)];
  const std::uint64_t mixed = splitmix64(salted);
  *decision = mixed;
  if (g_state.always) return true;
  return (mixed >> 11) < g_state.threshold53;
}

/// Common consult body once the armed gate has passed. Fault sites are
/// gated to worker threads (a serial reference or external caller is never
/// injected) and to unsuppressed contexts, BEFORE hashing: on scheduler-
/// context threads the thread-local pedigree may reference chain nodes on
/// stacks that are already gone, so suppressed consults must not walk it.
bool consult(Site s, const rt::PedigreeState& ped, bool fault) noexcept {
  const auto i = static_cast<unsigned>(s);
  if ((g_state.cfg.sites & site_bit(s)) == 0) return false;
  if (fault && detail::t_suppress != 0) return false;
  if (rt::Worker::current() == nullptr) return false;
  g_consults[i].fetch_add(1, std::memory_order_relaxed);
  std::uint64_t decision = 0;
  if (!decide(s, ped, &decision)) return false;
  g_injected[i].fetch_add(1, std::memory_order_relaxed);
  g_digest[i].fetch_add(splitmix64(decision), std::memory_order_relaxed);
  return true;
}

void spin_ns(std::uint64_t ns) noexcept {
  const std::uint64_t t0 = now_ns();
  while (now_ns() - t0 < ns) {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#endif
  }
}

}  // namespace

namespace detail {

std::atomic<bool> g_armed{false};
thread_local unsigned t_suppress = 0;

bool consult_fail(Site s, const rt::PedigreeState& ped) noexcept {
  return consult(s, ped, /*fault=*/true);
}

bool consult_fail_here(Site s) noexcept {
  // Order matters: the suppress/worker gates in consult() run before the
  // hash, so this current_pedigree() reference is only ever WALKED on a
  // worker thread executing a live strand.
  return consult(s, rt::current_pedigree(), /*fault=*/true);
}

void consult_delay(Site s, const rt::PedigreeState& ped) noexcept {
  if (consult(s, ped, /*fault=*/false)) spin_ns(g_state.cfg.delay_ns);
}

void consult_delay_here(Site s) noexcept {
  consult_delay(s, rt::current_pedigree());
}

}  // namespace detail

const char* to_string(Site s) noexcept {
  return kSiteNames[static_cast<unsigned>(s)];
}

bool parse_sites(const char* text, std::uint32_t* mask) noexcept {
  std::uint32_t out = 0;
  const char* p = text;
  while (*p != '\0') {
    const char* end = p;
    while (*end != '\0' && *end != ',') ++end;
    const std::size_t len = static_cast<std::size_t>(end - p);
    const auto is = [&](const char* name) {
      return std::strlen(name) == len && std::strncmp(p, name, len) == 0;
    };
    if (is("all")) {
      out |= kAllSites;
    } else if (is("faults")) {
      out |= kFaultSites;
    } else if (is("delays")) {
      out |= kDelaySites;
    } else {
      bool matched = false;
      for (unsigned i = 0; i < kNumSites; ++i) {
        if (is(kSiteNames[i])) {
          out |= site_bit(static_cast<Site>(i));
          matched = true;
          break;
        }
      }
      if (!matched) return false;
    }
    p = (*end == ',') ? end + 1 : end;
  }
  if (out == 0) return false;
  *mask = out;
  return true;
}

void arm(const Config& cfg) {
  detail::g_armed.store(false, std::memory_order_relaxed);
  g_state.cfg = cfg;
  if (g_state.cfg.p < 0.0) g_state.cfg.p = 0.0;
  g_state.rng.reseed(cfg.seed);
  g_state.always = g_state.cfg.p >= 1.0;
  g_state.threshold53 = g_state.always
                            ? 0
                            : static_cast<std::uint64_t>(g_state.cfg.p *
                                                         9007199254740992.0);
  reset_stats();
  detail::g_armed.store(true, std::memory_order_release);
}

void disarm() { detail::g_armed.store(false, std::memory_order_release); }

Config config() { return g_state.cfg; }

SiteStats site_stats(Site s) noexcept {
  const auto i = static_cast<unsigned>(s);
  return {g_consults[i].load(std::memory_order_relaxed),
          g_injected[i].load(std::memory_order_relaxed),
          g_digest[i].load(std::memory_order_relaxed)};
}

void reset_stats() noexcept {
  for (unsigned i = 0; i < kNumSites; ++i) {
    g_consults[i].store(0, std::memory_order_relaxed);
    g_injected[i].store(0, std::memory_order_relaxed);
    g_digest[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace cilkm::chaos
