// The work-stealing scheduler: owns the workers, runs root tasks, selects
// steal victims, and aggregates statistics. The pool is persistent: OS
// threads are created once (lazily on the first run(), or eagerly via
// warm_up()) and survive across run() calls, parking between and during
// runs instead of spinning, so repeated runs pay a wake-up — not thread
// creation and TLMM-region TLS rebuild — per invocation. Workers also
// persist logically, keeping reducer slot offsets and pools warm.
//
// Placement and steal locality come from the topo/ subsystem: every worker
// is assigned a CPU (pinned there when SchedulerOptions::pin is set), steal
// victims are probed in proximity order (same core → same package → remote)
// with a randomized escape hatch, and pushes wake the nearest sleepers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/parking.hpp"
#include "runtime/worker.hpp"
#include "topo/placement.hpp"

namespace cilkm::rt {

/// Topology-facing knobs of a worker pool. The defaults (spread placement,
/// locality-ordered stealing, wake batches of 2, no pinning) are what
/// cilkm_run and the benches measure as the baseline configuration.
struct SchedulerOptions {
  /// Pin each worker thread to its assigned CPU (best-effort: a failed
  /// sched_setaffinity leaves the thread unpinned).
  bool pin = false;

  /// How worker ids map onto the machine's CPUs (see topo/placement.hpp).
  topo::Placement placement = topo::Placement::kSpread;

  /// Max sleepers one Deque::push may wake when the deque is backing up.
  /// 1 restores the strict one-wake-per-push discipline; values are
  /// clamped to [1, ParkingLot::kMaxBatch] at Scheduler construction.
  unsigned wake_batch = 2;

  /// Probe steal victims in proximity order instead of uniformly at random.
  bool locality_steal = true;

  /// Max frames one theft may claim from a victim's deque. 0 means "half":
  /// a theft takes ceil(available/2), capped at Deque::kMaxStealBatch.
  /// 1 restores classic single-frame Chase–Lev stealing; other values are
  /// clamped to [1, Deque::kMaxStealBatch] at Scheduler construction.
  unsigned steal_batch = 0;

  /// Run watchdog: if > 0, run() checks every watchdog_ms milliseconds that
  /// some worker made scheduling progress (launch, degraded run, or join
  /// resumption); a window with no progress and no quiescence dumps a
  /// metrics snapshot plus the tracer rings to stderr and aborts. 0 (the
  /// default) disables the watchdog. Note: a single strand that legitimately
  /// computes for longer than the window without spawning looks like a
  /// stall — size the window to the workload's longest serial stretch.
  unsigned watchdog_ms = 0;
};

class Scheduler {
 public:
  explicit Scheduler(unsigned num_workers, SchedulerOptions options = {});

  /// Parks the pool, joins the worker threads. Must not be called while a
  /// run is in flight (run() does not return until quiescence, so ordinary
  /// single-owner usage is safe by construction).
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Execute `root` to completion on the worker pool. Exceptions escaping
  /// the root task are rethrown here; a throwing run leaves the pool fully
  /// quiesced and reusable. Reentrant calls are not allowed, and at most
  /// one external thread may be inside run() at a time.
  void run(std::function<void()> root);

  /// Create the worker threads now (idempotent). run() does this lazily;
  /// benches call it so the first timed sample doesn't pay thread creation.
  void warm_up();

  unsigned num_workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  Worker& worker(unsigned i) noexcept { return *workers_[i]; }

  const SchedulerOptions& options() const noexcept { return options_; }

  /// The logical CPU worker `w` is assigned (and pinned to, under
  /// options().pin).
  unsigned worker_cpu(unsigned w) const noexcept { return worker_cpu_[w]; }

  /// Worker `thief`'s victims in proximity order (nearest first): a
  /// permutation of every other worker id. Stable after construction; the
  /// per-round sequence additionally shuffles within proximity tiers.
  const std::vector<unsigned>& victim_order(unsigned thief) const noexcept {
    return victim_order_[thief];
  }

  /// Proximity tier of `victim` as seen from `thief` (0 = same core,
  /// 1 = same package, 2 = remote), the rank used by steals and wake-ups.
  std::uint8_t victim_tier(unsigned thief, unsigned victim) const noexcept {
    return victim_tier_[thief][victim];
  }

  /// Most victims probed per steal round: bounds the latency of the idle
  /// loop's done-flag re-check on wide pools, and bounds the shuffle work
  /// per round (only this prefix of the victim sequence is randomized).
  static constexpr unsigned kMaxStealProbes = 16;

  /// Build one steal round for `thief` into `out`: every other worker
  /// exactly once (no victim is probed twice in a round), nearest tiers
  /// first under locality stealing (shuffled within each tier, with a
  /// randomized escape hatch for whole-machine balance), a uniform shuffle
  /// otherwise. Only the first kMaxStealProbes entries — all a round ever
  /// probes — are randomized; the tail keeps tier order. Uses the thief
  /// worker's private rng, so callers other than the thief itself may only
  /// call this on a quiesced pool.
  void build_victim_round(unsigned thief, std::vector<unsigned>* out);

  /// Sum of all workers' counters. Counters accumulate across run() calls
  /// on the same pool; call reset_stats() between runs for per-run numbers.
  WorkerStats aggregate_stats() const;
  void reset_stats();

  /// Genuine cross-worker thefts (excludes own-deque promotions, which are
  /// counted under kSelfPops) since construction or the last reset_stats().
  std::uint64_t total_steals() const;

 private:
  friend class Worker;
  friend void fiber_main(void* arg);

  void start_threads_locked();
  void worker_thread(Worker* w);

  /// True iff any worker's deque holds a stealable frame. Used by the park
  /// protocol's post-registration re-check.
  bool work_available() const noexcept;

  /// Sum of all workers' progress ticks (relaxed; watchdog heartbeat).
  std::uint64_t progress_sum() const noexcept;

  /// Stalled-epoch post-mortem: dump an obs::capture metrics snapshot and
  /// the per-worker tracer rings to stderr before the watchdog aborts.
  void dump_stall_diagnostics();

  SchedulerOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Topology-derived placement (worker id → logical CPU) and proximity
  // structure, fixed at construction.
  std::vector<unsigned> worker_cpu_;
  std::vector<std::vector<unsigned>> victim_order_;      // per thief
  std::vector<std::vector<std::uint8_t>> victim_tier_;   // [thief][victim]

  std::atomic<bool> done_{false};
  std::function<void()> root_fn_;
  std::exception_ptr root_eptr_;

  // Mid-run idle parking (see parking.hpp). Producers: Deque::push, the
  // root-completion path in fiber_main.
  ParkingLot parking_;

  // Pool lifecycle. All fields below are guarded by lifecycle_mu_; workers
  // sleep on start_cv_ between runs, run() sleeps on quiesce_cv_ until every
  // worker has left the run.
  std::mutex lifecycle_mu_;
  std::condition_variable start_cv_;
  std::condition_variable quiesce_cv_;
  std::uint64_t run_epoch_ = 0;
  unsigned active_workers_ = 0;
  bool running_ = false;
  bool shutdown_ = false;
};

/// Convenience: run `root` on a fresh P-worker scheduler. One-shot — code
/// that runs repeatedly should hold a Scheduler and reuse the pool.
void run(unsigned num_workers, std::function<void()> root);

}  // namespace cilkm::rt
