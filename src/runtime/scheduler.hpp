// The work-stealing scheduler: owns the workers, runs root tasks, selects
// steal victims, and aggregates statistics. Workers persist across run()
// calls so reducer slot offsets and pools stay warm; OS threads are created
// per run.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "runtime/worker.hpp"

namespace cilkm::rt {

class Scheduler {
 public:
  explicit Scheduler(unsigned num_workers);
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Execute `root` to completion on the worker pool. Exceptions escaping
  /// the root task are rethrown here. Reentrant calls are not allowed.
  void run(std::function<void()> root);

  unsigned num_workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  Worker& worker(unsigned i) noexcept { return *workers_[i]; }

  /// Sum of all workers' counters (reset_stats() clears them).
  WorkerStats aggregate_stats() const;
  void reset_stats();

  /// Total successful steals in the last run; convenience for tests/benches.
  std::uint64_t total_steals() const;

 private:
  friend class Worker;
  friend void fiber_main(void* arg);

  Worker* random_victim(Worker* thief);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> done_{false};
  std::function<void()> root_fn_;
  std::exception_ptr root_eptr_;
};

/// Convenience: run `root` on a fresh P-worker scheduler.
void run(unsigned num_workers, std::function<void()> root);

}  // namespace cilkm::rt
