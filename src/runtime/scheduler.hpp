// The work-stealing scheduler: owns the workers, runs root tasks, selects
// steal victims, and aggregates statistics. The pool is persistent: OS
// threads are created once (lazily on the first run(), or eagerly via
// warm_up()) and survive across run() calls, parking between and during
// runs instead of spinning, so repeated runs pay a wake-up — not thread
// creation and TLMM-region TLS rebuild — per invocation. Workers also
// persist logically, keeping reducer slot offsets and pools warm.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/parking.hpp"
#include "runtime/worker.hpp"

namespace cilkm::rt {

class Scheduler {
 public:
  explicit Scheduler(unsigned num_workers);

  /// Parks the pool, joins the worker threads. Must not be called while a
  /// run is in flight (run() does not return until quiescence, so ordinary
  /// single-owner usage is safe by construction).
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Execute `root` to completion on the worker pool. Exceptions escaping
  /// the root task are rethrown here; a throwing run leaves the pool fully
  /// quiesced and reusable. Reentrant calls are not allowed, and at most
  /// one external thread may be inside run() at a time.
  void run(std::function<void()> root);

  /// Create the worker threads now (idempotent). run() does this lazily;
  /// benches call it so the first timed sample doesn't pay thread creation.
  void warm_up();

  unsigned num_workers() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }
  Worker& worker(unsigned i) noexcept { return *workers_[i]; }

  /// Sum of all workers' counters. Counters accumulate across run() calls
  /// on the same pool; call reset_stats() between runs for per-run numbers.
  WorkerStats aggregate_stats() const;
  void reset_stats();

  /// Genuine cross-worker thefts (excludes own-deque promotions, which are
  /// counted under kSelfPops) since construction or the last reset_stats().
  std::uint64_t total_steals() const;

 private:
  friend class Worker;
  friend void fiber_main(void* arg);

  void start_threads_locked();
  void worker_thread(Worker* w);
  Worker* random_victim(Worker* thief);

  /// True iff any worker's deque holds a stealable frame. Used by the park
  /// protocol's post-registration re-check.
  bool work_available() const noexcept;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::atomic<bool> done_{false};
  std::function<void()> root_fn_;
  std::exception_ptr root_eptr_;

  // Mid-run idle parking (see parking.hpp). Producers: Deque::push, the
  // root-completion path in fiber_main.
  EventCount idle_gate_;

  // Pool lifecycle. All fields below are guarded by lifecycle_mu_; workers
  // sleep on start_cv_ between runs, run() sleeps on quiesce_cv_ until every
  // worker has left the run.
  std::mutex lifecycle_mu_;
  std::condition_variable start_cv_;
  std::condition_variable quiesce_cv_;
  std::uint64_t run_epoch_ = 0;
  unsigned active_workers_ = 0;
  bool running_ = false;
  bool shutdown_ = false;
};

/// Convenience: run `root` on a fresh P-worker scheduler. One-shot — code
/// that runs repeatedly should hold a Scheduler and reuse the pool.
void run(unsigned num_workers, std::function<void()> root);

}  // namespace cilkm::rt
