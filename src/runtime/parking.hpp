// Idle-worker parking: a per-worker parking lot (targeted wake-ups) plus a
// cpu_relax() spin hint. Workers that find no work after an exponential
// spin→yield backoff park on their own slot; producers (Deque::push, root
// completion) wake up to k parked workers at once, choosing by proximity to
// the producer and, within a proximity tier, most-recently-parked first
// (LIFO — the last worker to go idle has the warmest cache and the shortest
// wake latency).
//
// The lost-wakeup race is closed Dekker-style: a consumer takes a TICKET
// from its slot's epoch, REGISTERS in the shared parked stack, RE-CHECKS its
// sleep condition, then blocks; a producer PUBLISHES its work, then checks
// for registered sleepers. The consumer's registration and the producer's
// check are separated by seq_cst fences, so at least one party observes the
// other: either the producer pops the consumer from the stack and bumps its
// epoch (the ticket predates the bump, so the consumer's block falls
// through), or the consumer's re-check sees the published work. The
// producer-side fast-out reads the parked count relaxed — with nobody
// parked the push hot path pays one load, and the rare missed wake of a
// concurrent registrant is repaired by the next publication or the
// consumer's timed backstop.
//
// One wrinkle the single-eventcount design did not have: a producer targets
// a SPECIFIC worker, which may be between registration and re-check and
// find work on its own (cancel_park). That worker consumes a wake credit
// that was meant to rouse a sleeper, so cancel_park forwards the credit to
// the next most-recently-parked worker — without this, a push could leave
// its frame stranded with every other worker asleep until a backstop.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "util/assert.hpp"
#include "util/cache.hpp"

namespace cilkm::rt {

/// Pause hint for spin loops: keeps the core's speculation machinery (and a
/// hyperthread sibling) out of the way without yielding the time slice.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class ParkingLot {
 public:
  explicit ParkingLot(unsigned num_slots)
      : num_slots_(num_slots), slots_(new Slot[num_slots]) {
    stack_.reserve(num_slots);
  }

  ParkingLot(const ParkingLot&) = delete;
  ParkingLot& operator=(const ParkingLot&) = delete;

  /// Consumer side, phase 1: capture the wake ticket, then register in the
  /// parked stack. The caller MUST re-check its sleep condition after this
  /// call and then either cancel_park() (work appeared) or park() (commit).
  std::uint32_t prepare_park(unsigned who) noexcept {
    CILKM_DCHECK(who < num_slots_, "parking slot out of range");
    // The ticket must predate the registration: a producer that pops us
    // bumps the epoch AFTER seeing us registered, so the bump always moves
    // the epoch past this ticket and park() cannot sleep through it.
    const std::uint32_t ticket =
        slots_[who].epoch.load(std::memory_order_acquire);
    {
      std::lock_guard<std::mutex> lock(stack_mu_);
      stack_.push_back(who);
      parked_count_.store(static_cast<std::uint32_t>(stack_.size()),
                          std::memory_order_relaxed);
    }
    // Pairs with the producer-side fence in wake()/wake_all(): one of the
    // two parties is guaranteed to observe the other.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    return ticket;
  }

  /// Consumer side: abandon the park because the re-check found work.
  /// Returns the number of forwarded wake-ups (0 or 1): if a producer
  /// already popped us, its wake credit is passed to the next
  /// most-recently-parked worker so the new work cannot be stranded.
  std::uint32_t cancel_park(unsigned who) noexcept {
    unsigned forward_to = kNone;
    {
      std::lock_guard<std::mutex> lock(stack_mu_);
      if (remove_locked(who)) return 0;
      if (!stack_.empty()) {
        forward_to = stack_.back();
        stack_.pop_back();
        parked_count_.store(static_cast<std::uint32_t>(stack_.size()),
                            std::memory_order_relaxed);
      }
    }
    if (forward_to == kNone) return 0;
    wake_slot(forward_to);
    return 1;
  }

  /// Consumer side, phase 2: block until a producer bumps this slot's epoch
  /// past `ticket` or the backstop elapses. Deregisters on return; the
  /// caller re-runs its full work-finding loop either way.
  void park(unsigned who, std::uint32_t ticket,
            std::chrono::milliseconds backstop) {
    Slot& slot = slots_[who];
    {
      std::unique_lock<std::mutex> lock(slot.mu);
      slot.cv.wait_for(lock, backstop, [&] {
        return slot.epoch.load(std::memory_order_relaxed) != ticket;
      });
    }
    // Still registered after a backstop expiry or spurious wake: deregister.
    // (After a targeted wake the producer already removed us.)
    std::lock_guard<std::mutex> lock(stack_mu_);
    remove_locked(who);
  }

  /// Producer side. Call AFTER the new work (or completion flag) is
  /// visible. Wakes up to `max_wake` parked workers; `tier_of`, when
  /// non-null, ranks candidate worker w by tier_of[w] (lower = nearer the
  /// producer), ties broken most-recently-parked first; null means pure
  /// LIFO. Returns the number of workers woken.
  std::uint32_t wake(unsigned max_wake, const std::uint8_t* tier_of) noexcept {
    if (max_wake == 0) return 0;
    // Hot-path fast-out: Deque::push calls this on every spawn, and with no
    // one parked a relaxed read avoids a full fence per push. The relaxed
    // read can miss a concurrently registering worker; that lone missed
    // wake is repaired by the next publication or the timed backstop.
    if (parked_count_.load(std::memory_order_relaxed) == 0) return 0;
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (parked_count_.load(std::memory_order_relaxed) == 0) return 0;

    unsigned chosen[kMaxBatch];
    std::uint32_t count = 0;
    {
      std::lock_guard<std::mutex> lock(stack_mu_);
      const unsigned want =
          max_wake < kMaxBatch ? max_wake : unsigned{kMaxBatch};
      while (count < want && !stack_.empty()) {
        // Nearest tier wins; within a tier the highest stack index (most
        // recently parked) wins. The stack is small (≤ P), so a linear scan
        // per pick is cheaper than maintaining a sorted structure.
        std::size_t best = stack_.size() - 1;
        if (tier_of != nullptr) {
          for (std::size_t i = stack_.size(); i-- > 0;) {
            if (tier_of[stack_[i]] < tier_of[stack_[best]]) best = i;
          }
        }
        chosen[count++] = stack_[best];
        stack_.erase(stack_.begin() + static_cast<std::ptrdiff_t>(best));
      }
      parked_count_.store(static_cast<std::uint32_t>(stack_.size()),
                          std::memory_order_relaxed);
    }
    for (std::uint32_t i = 0; i < count; ++i) wake_slot(chosen[i]);
    return count;
  }

  /// Producer side: wake every parked worker (root completion — quiescence).
  /// Always takes the fenced path, so ending a run never relies on the
  /// backstop.
  std::uint32_t wake_all() noexcept {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::vector<unsigned> all;
    all.reserve(num_slots_);  // allocate before taking the hot-path lock
    {
      std::lock_guard<std::mutex> lock(stack_mu_);
      all.insert(all.end(), stack_.begin(), stack_.end());
      // clear() keeps stack_'s reserved capacity, so later prepare_park
      // push_backs never allocate while holding stack_mu_ (a swap here
      // would leak the constructor's reserve into `all` every run).
      stack_.clear();
      parked_count_.store(0, std::memory_order_relaxed);
    }
    for (const unsigned who : all) wake_slot(who);
    return static_cast<std::uint32_t>(all.size());
  }

  /// Registered sleepers right now (approximate outside the lock).
  std::uint32_t parked_count() const noexcept {
    return parked_count_.load(std::memory_order_relaxed);
  }

  /// Most sleepers a single wake() call will rouse.
  static constexpr unsigned kMaxBatch = 16;

 private:
  static constexpr unsigned kNone = ~0u;

  struct alignas(kCacheLineSize) Slot {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<std::uint32_t> epoch{0};  // written under mu, read anywhere
  };

  void wake_slot(unsigned who) noexcept {
    Slot& slot = slots_[who];
    {
      // The bump must happen under the slot mutex so a consumer between its
      // final predicate check and the actual block cannot miss it.
      std::lock_guard<std::mutex> lock(slot.mu);
      slot.epoch.fetch_add(1, std::memory_order_relaxed);
    }
    slot.cv.notify_one();
  }

  bool remove_locked(unsigned who) noexcept {
    for (std::size_t i = stack_.size(); i-- > 0;) {
      if (stack_[i] == who) {
        stack_.erase(stack_.begin() + static_cast<std::ptrdiff_t>(i));
        parked_count_.store(static_cast<std::uint32_t>(stack_.size()),
                            std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  unsigned num_slots_;
  std::unique_ptr<Slot[]> slots_;

  // LIFO stack of parked worker ids + a lock-free mirror of its size for
  // the producer fast-out. Both mutate only under stack_mu_.
  std::mutex stack_mu_;
  std::vector<unsigned> stack_;
  std::atomic<std::uint32_t> parked_count_{0};
};

}  // namespace cilkm::rt
