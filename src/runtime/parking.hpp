// Idle-worker parking: an eventcount (the classic two-phase sleep/wake
// handshake) plus a cpu_relax() spin hint. Workers that find no work after
// an exponential spin→yield backoff park on the scheduler's EventCount
// instead of burning a core in std::this_thread::yield(); producers
// (Deque::push, root completion, Scheduler::run) wake them.
//
// The lost-wakeup race is closed Dekker-style: a consumer REGISTERS
// (prepare_wait), then RE-CHECKS its sleep condition, then blocks; a
// producer PUBLISHES its work, then checks for registered waiters. The
// waiter count and the wake epoch live in ONE atomic word, so the
// registration RMW atomically captures the ticket — a wake that lands
// between registration and the re-check cannot be missed (the ticket
// predates it), and one that lands before registration synchronizes the
// published work into the re-check. The seq_cst fences on both sides
// guarantee at least one party observes the other — except notify_one's
// deliberately relaxed fast-out (see notify()), whose rare miss is repaired
// by the next publication. A timed backstop in wait() bounds the cost of
// that miss (and of any future ordering bug) to one backstop period.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace cilkm::rt {

/// Pause hint for spin loops: keeps the core's speculation machinery (and a
/// hyperthread sibling) out of the way without yielding the time slice.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

class EventCount {
 public:
  /// Producer side. Call AFTER the new work (or completion flag) has been
  /// made visible. Returns the number of registered waiters signalled
  /// (notify_one signals at most one, notify_all every waiter registered at
  /// the epoch bump) — callers use this to count wake-ups delivered.
  std::uint32_t notify_one() noexcept { return notify(false); }
  std::uint32_t notify_all() noexcept { return notify(true); }

  /// Consumer side, phase 1: register intent to sleep; the returned ticket
  /// is the epoch at the instant of registration (same RMW, so no wake can
  /// slip between the two). The caller MUST re-check its sleep condition
  /// after this call and then either cancel_wait() (work appeared) or
  /// wait() (commit to sleeping).
  std::uint32_t prepare_wait() noexcept {
    const std::uint64_t prev =
        state_.fetch_add(kWaiterInc, std::memory_order_seq_cst);
    // Pairs with the producer-side fence in notify(): one of the two
    // parties is guaranteed to observe the other.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    return epoch_of(prev);
  }

  void cancel_wait() noexcept {
    state_.fetch_sub(kWaiterInc, std::memory_order_release);
  }

  /// Consumer side, phase 2: block until the epoch moves past `ticket` (a
  /// producer notified) or the backstop elapses. Deregisters on return.
  void wait(std::uint32_t ticket, std::chrono::milliseconds backstop) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait_for(lock, backstop, [&] {
      return epoch_of(state_.load(std::memory_order_relaxed)) != ticket;
    });
    state_.fetch_sub(kWaiterInc, std::memory_order_release);
  }

 private:
  // state_ layout: [epoch : 32 | waiter count : 32]. Epoch wrap-around after
  // 2^32 notifies while one waiter holds a ticket is theoretical; the timed
  // backstop bounds even that to one period.
  static constexpr std::uint64_t kWaiterInc = 1;
  static constexpr std::uint64_t kWaiterMask = (std::uint64_t{1} << 32) - 1;
  static constexpr std::uint64_t kEpochInc = std::uint64_t{1} << 32;

  static std::uint32_t epoch_of(std::uint64_t state) noexcept {
    return static_cast<std::uint32_t>(state >> 32);
  }

  std::uint32_t notify(bool all) noexcept {
    // Hot-path fast-out for notify_one: Deque::push calls this on every
    // spawn, and with no one parked a relaxed read avoids a full fence per
    // push. The relaxed read can theoretically miss a concurrently
    // registering waiter (no fence pairing); that lone missed wake is
    // repaired by the next publication or the waiter's timed backstop.
    // notify_all (root completion — quiescence) always takes the fenced
    // path, so ending a run never relies on the backstop.
    if (!all &&
        (state_.load(std::memory_order_relaxed) & kWaiterMask) == 0) {
      return 0;
    }
    // Order the producer's preceding publication (deque bottom store, done
    // flag) before the waiter check; pairs with prepare_wait's fence.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if ((state_.load(std::memory_order_relaxed) & kWaiterMask) == 0) {
      return 0;
    }
    std::uint32_t waiters;
    {
      // The epoch bump must happen under the mutex so a waiter between its
      // final predicate check and the actual block cannot miss it.
      std::lock_guard<std::mutex> lock(mu_);
      const std::uint64_t prev =
          state_.fetch_add(kEpochInc, std::memory_order_seq_cst);
      waiters = static_cast<std::uint32_t>(prev & kWaiterMask);
    }
    if (waiters == 0) return 0;  // every candidate cancelled before the bump
    if (all) {
      cv_.notify_all();
      return waiters;
    }
    cv_.notify_one();
    return 1;
  }

  std::atomic<std::uint64_t> state_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace cilkm::rt
