// Pooled, guard-paged fiber stacks. Fibers are the reproduction's stand-in
// for Cilk-M's TLMM-backed cactus stack (DESIGN.md): each stolen branch and
// each parked join continuation occupies one. Free fibers recycle through
// per-NUMA-node shards (stack pages were first-touched on the node that
// carved them; node-local recycling keeps them there), with a small
// per-worker LIFO cache in front and a high-water trim behind: shards
// munmap stacks beyond a per-node cap, so long-lived pools don't pin peak
// RSS at the high-water mark of one burst. Fiber headers come from the
// tagged internal allocator (AllocTag::kFiberStacks).
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "mem/node_map.hpp"
#include "runtime/context.hpp"
#include "util/cache.hpp"
#include "util/spinlock.hpp"

namespace cilkm::rt {

struct Fiber {
  Context ctx;             // saved state while suspended / dummy save slot
  void* stack_top = nullptr;  // highest usable address (stacks grow down)
  std::byte* alloc_base = nullptr;
  std::size_t alloc_size = 0;
  Fiber* next = nullptr;   // free-list link
  void* tsan_fiber = nullptr;  // TSan shadow state, 1:1 with this stack
};

/// A worker's local cache of free fibers: LIFO, single-owner, lock-free.
/// Small — the node shard is the real reservoir; this just keeps the
/// steal/join hot path off the shard lock.
struct LocalFiberCache {
  static constexpr std::size_t kMaxCached = 4;
  Fiber* head = nullptr;
  std::size_t count = 0;
};

/// Node-sharded stack pool. Thread-safe; instance() is the process-wide
/// pool, standalone instances (tests) take an injected topology and cap.
class StackPool {
 public:
  // Stacks are lazily committed (MAP_NORESERVE) so a generous virtual size
  // costs only the pages actually touched; 8 MiB matches the usual OS
  // thread-stack default and leaves room for unoptimised (-O0) frames in
  // deep spawn chains.
  static constexpr std::size_t kDefaultStackBytes = 8u << 20;

  /// High-water trim: free fibers cached per node shard beyond this are
  /// destroyed (munmap + header free) instead of pooled.
  static constexpr std::size_t kMaxCachedPerNode = 32;

  /// Extra allocate_fresh attempts acquire() makes when stack memory is
  /// exhausted, with exponential backoff (1/2/4 ms) and a shard re-probe
  /// between attempts.
  static constexpr unsigned kAcquireRetries = 3;

  static StackPool& instance();

  explicit StackPool(const topo::Topology* topology = nullptr,
                     std::size_t max_cached_per_node = kMaxCachedPerNode);
  ~StackPool();

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  /// Get a fiber with a fresh (or recycled) stack. The first (lowest) page is
  /// PROT_NONE so runaway recursion faults instead of corrupting memory.
  /// With `local`, the worker's cache is tried before the node shard.
  /// Returns nullptr when stack memory is exhausted (mmap/mprotect/header
  /// failure) even after kAcquireRetries backed-off retries; the caller
  /// degrades instead of aborting.
  Fiber* acquire(LocalFiberCache* local = nullptr);
  void release(Fiber* fiber, LocalFiberCache* local = nullptr);

  /// Drain a worker's cache into the node shards (worker teardown).
  void flush(LocalFiberCache& local);

  /// Stacks ever created (for cactus-stack pressure accounting in tests).
  std::size_t total_created() const noexcept {
    return created_.load(std::memory_order_relaxed);
  }

  /// Free fibers parked in one node shard (test hook).
  std::size_t cached(unsigned shard) const;
  unsigned num_shards() const noexcept { return nodes_.num_shards(); }

 private:
  struct alignas(kCacheLineSize) Shard {
    SpinLock lock;
    Fiber* head = nullptr;
    std::size_t count = 0;
  };

  Fiber* allocate_fresh();
  void destroy_fiber(Fiber* fiber);
  void shard_release(Fiber* fiber);

  mem::NodeMap nodes_;
  std::vector<Shard> shards_;
  std::size_t max_cached_per_node_;
  std::atomic<std::size_t> created_{0};
};

}  // namespace cilkm::rt
