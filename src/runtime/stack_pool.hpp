// Pooled, guard-paged fiber stacks. Fibers are the reproduction's stand-in
// for Cilk-M's TLMM-backed cactus stack (DESIGN.md): each stolen branch and
// each parked join continuation occupies one. Stacks are recycled through a
// global free list; per-worker caching happens in the Worker.
#pragma once

#include <cstddef>

#include "runtime/context.hpp"
#include "util/spinlock.hpp"

namespace cilkm::rt {

struct Fiber {
  Context ctx;             // saved state while suspended / dummy save slot
  void* stack_top = nullptr;  // highest usable address (stacks grow down)
  std::byte* alloc_base = nullptr;
  std::size_t alloc_size = 0;
  Fiber* next = nullptr;   // free-list link
  void* tsan_fiber = nullptr;  // TSan shadow state, 1:1 with this stack
};

/// Process-wide stack pool. Thread-safe.
class StackPool {
 public:
  // Stacks are lazily committed (MAP_NORESERVE) so a generous virtual size
  // costs only the pages actually touched; 8 MiB matches the usual OS
  // thread-stack default and leaves room for unoptimised (-O0) frames in
  // deep spawn chains.
  static constexpr std::size_t kDefaultStackBytes = 8u << 20;

  static StackPool& instance();

  /// Get a fiber with a fresh (or recycled) stack. The first (lowest) page is
  /// PROT_NONE so runaway recursion faults instead of corrupting memory.
  Fiber* acquire();
  void release(Fiber* fiber);

  /// Stacks ever created (for cactus-stack pressure accounting in tests).
  std::size_t total_created() const noexcept { return created_; }

 private:
  Fiber* allocate_fresh();

  SpinLock lock_;
  Fiber* free_list_ = nullptr;
  std::size_t created_ = 0;
};

}  // namespace cilkm::rt
