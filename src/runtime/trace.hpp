// Lightweight scheduler event tracing: per-worker ring buffers recording
// steals, parks, resumes, deposits, and hypermerges with nanosecond
// timestamps. Off by default; when enabled it serialises the join protocol's
// externally visible behaviour for tests and post-mortem analysis (dump to
// CSV). Hot paths (reducer lookups, un-stolen forks) are never instrumented.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "util/cache.hpp"
#include "util/timing.hpp"

namespace cilkm::rt {

enum class TraceEvent : std::uint8_t {
  kSteal,          // stole a frame from another worker's deque
  kLaunch,         // started a fiber for a stolen frame or the root
  kPark,           // suspended a continuation at a join
  kResumeByThief,  // joining steal: thief resumed the parked continuation
  kResumeSelf,     // victim resumed its own parked continuation
  kDepositLeft,    // victim-side view transferal into a frame
  kDepositRight,   // thief-side view transferal into a frame
  kMerge,          // hypermerge of a deposit into ambient views
  kSelfPop,        // promoted a frame from the worker's own deque
  kRootDone,       // root task completed
};

constexpr std::string_view to_string(TraceEvent e) noexcept {
  switch (e) {
    case TraceEvent::kSteal: return "steal";
    case TraceEvent::kSelfPop: return "self_pop";
    case TraceEvent::kLaunch: return "launch";
    case TraceEvent::kPark: return "park";
    case TraceEvent::kResumeByThief: return "resume_by_thief";
    case TraceEvent::kResumeSelf: return "resume_self";
    case TraceEvent::kDepositLeft: return "deposit_left";
    case TraceEvent::kDepositRight: return "deposit_right";
    case TraceEvent::kMerge: return "merge";
    case TraceEvent::kRootDone: return "root_done";
  }
  return "?";
}

struct TraceRecord {
  std::uint64_t time_ns;
  const void* frame;  // the SpawnFrame involved (nullptr for root events)
  TraceEvent event;
  std::uint8_t worker;
};

/// Process-wide trace sink. Enable before a run, snapshot after quiescence.
class Tracer {
 public:
  static constexpr std::size_t kRingCapacity = 1 << 14;  // per worker
  static constexpr unsigned kMaxWorkers = 64;

  static Tracer& instance();

  void enable() { enabled_.store(true, std::memory_order_release); }
  void disable() { enabled_.store(false, std::memory_order_release); }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Record an event for `worker`. Wait-free: a per-worker ring that
  /// overwrites the oldest entries on overflow. Each ring is written by
  /// exactly one worker thread.
  void record(unsigned worker, TraceEvent event, const void* frame) noexcept {
    if (!enabled() || worker >= kMaxWorkers) return;
    Ring& ring = rings_[worker].value;
    const std::uint64_t i = ring.next++;
    ring.buf[i % kRingCapacity] =
        TraceRecord{now_ns(), frame, event, static_cast<std::uint8_t>(worker)};
  }

  /// All retained records, time-ordered. Call only after quiescence.
  std::vector<TraceRecord> snapshot() const;

  /// Clear all rings (call between runs, after quiescence).
  void reset();

  /// CSV dump: time_ns,worker,event,frame.
  void dump_csv(std::ostream& out) const;

 private:
  struct Ring {
    std::uint64_t next = 0;
    std::array<TraceRecord, kRingCapacity> buf{};
  };

  std::atomic<bool> enabled_{false};
  std::array<CachePadded<Ring>, kMaxWorkers> rings_{};
};

}  // namespace cilkm::rt
