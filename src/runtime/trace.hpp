// Lightweight scheduler event tracing: per-worker ring buffers recording
// steals, parks, resumes, deposits, and hypermerges with nanosecond
// timestamps. Off by default; when enabled it serialises the join protocol's
// externally visible behaviour for tests and post-mortem analysis (dump to
// CSV). Hot paths (reducer lookups, un-stolen forks) are never instrumented.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "util/cache.hpp"
#include "util/timing.hpp"

namespace cilkm::rt {

enum class TraceEvent : std::uint8_t {
  kSteal,          // stole a frame from another worker's deque
  kLaunch,         // started a fiber for a stolen frame or the root
  kPark,           // suspended a continuation at a join
  kResumeByThief,  // joining steal: thief resumed the parked continuation
  kResumeSelf,     // victim resumed its own parked continuation
  kDepositLeft,    // victim-side view transferal into a frame
  kDepositRight,   // thief-side view transferal into a frame
  kMerge,          // hypermerge of a deposit into ambient views
  kSelfPop,        // promoted a frame from the worker's own deque
  kRootDone,       // root task completed
};

constexpr std::string_view to_string(TraceEvent e) noexcept {
  switch (e) {
    case TraceEvent::kSteal: return "steal";
    case TraceEvent::kSelfPop: return "self_pop";
    case TraceEvent::kLaunch: return "launch";
    case TraceEvent::kPark: return "park";
    case TraceEvent::kResumeByThief: return "resume_by_thief";
    case TraceEvent::kResumeSelf: return "resume_self";
    case TraceEvent::kDepositLeft: return "deposit_left";
    case TraceEvent::kDepositRight: return "deposit_right";
    case TraceEvent::kMerge: return "merge";
    case TraceEvent::kRootDone: return "root_done";
  }
  return "?";
}

struct TraceRecord {
  std::uint64_t time_ns;
  const void* frame;  // the SpawnFrame involved (nullptr for root events)
  TraceEvent event;
  std::uint8_t worker;
};

/// Process-wide trace sink. Enable before a run, snapshot after quiescence.
class Tracer {
 public:
  static constexpr std::size_t kRingCapacity = 1 << 14;  // per worker
  static constexpr unsigned kMaxWorkers = 64;

  static Tracer& instance();

  void enable() { enabled_.store(true, std::memory_order_release); }
  void disable() { enabled_.store(false, std::memory_order_release); }
  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Record an event for `worker`. Wait-free: a per-worker ring that
  /// overwrites the oldest entries on overflow. Each ring is written by
  /// exactly one worker thread. Events for workers beyond kMaxWorkers
  /// cannot be retained (there is no ring to put them in) — they bump the
  /// dropped() counter instead of vanishing silently.
  void record(unsigned worker, TraceEvent event, const void* frame) noexcept {
    if (!enabled()) return;
    if (worker >= kMaxWorkers) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Ring& ring = rings_[worker].value;
    const std::uint64_t i = ring.next.load(std::memory_order_relaxed);
    ring.buf[i % kRingCapacity] =
        TraceRecord{now_ns(), frame, event, static_cast<std::uint8_t>(worker)};
    // Release: a snapshotting thread that observes i+1 also observes the
    // record. A mid-run snapshot is thereby well-defined (it sees a clean
    // prefix of each ring) though still racy on wrapped slots; the intended
    // contract remains snapshot-after-quiescence.
    ring.next.store(i + 1, std::memory_order_release);
  }

  /// Events discarded because the worker id had no ring (>= kMaxWorkers).
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// All retained records in true time order, starting at the oldest entry
  /// each ring still holds (on overflow the ring keeps the newest
  /// kRingCapacity records per worker).
  ///
  /// Quiescence contract: call only after the traced run has completed
  /// (Scheduler::run returning establishes happens-before with every worker
  /// thread). The atomic ring indices make a mid-run call well-defined
  /// memory-wise, but it may then miss in-flight records and, on a wrapped
  /// ring, read slots concurrently overwritten.
  std::vector<TraceRecord> snapshot() const;

  /// Clear all rings and the dropped counter (call between runs, after
  /// quiescence).
  void reset();

  /// CSV dump: time_ns,worker,event,frame.
  void dump_csv(std::ostream& out) const;

 private:
  struct Ring {
    std::atomic<std::uint64_t> next{0};
    std::array<TraceRecord, kRingCapacity> buf{};
  };

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> dropped_{0};
  std::array<CachePadded<Ring>, kMaxWorkers> rings_{};
};

}  // namespace cilkm::rt
