#include "runtime/trace.hpp"

#include <algorithm>

namespace cilkm::rt {

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::vector<TraceRecord> Tracer::snapshot() const {
  std::vector<TraceRecord> out;
  for (const auto& padded : rings_) {
    const Ring& ring = padded.value;
    // Acquire pairs with record()'s release store: everything below `next`
    // is fully written. On a wrapped ring the retained window is the last
    // kRingCapacity entries, walked oldest-first.
    const std::uint64_t next = ring.next.load(std::memory_order_acquire);
    const std::uint64_t count = std::min<std::uint64_t>(next, kRingCapacity);
    const std::uint64_t start = next - count;
    for (std::uint64_t i = start; i < next; ++i) {
      out.push_back(ring.buf[i % kRingCapacity]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.time_ns < b.time_ns;
            });
  return out;
}

void Tracer::reset() {
  for (auto& padded : rings_) {
    padded.value.next.store(0, std::memory_order_relaxed);
  }
  dropped_.store(0, std::memory_order_relaxed);
}

void Tracer::dump_csv(std::ostream& out) const {
  out << "time_ns,worker,event,frame\n";
  for (const TraceRecord& rec : snapshot()) {
    out << rec.time_ns << ',' << static_cast<unsigned>(rec.worker) << ','
        << to_string(rec.event) << ',' << rec.frame << '\n';
  }
}

}  // namespace cilkm::rt
