// Work-stealing deque of continuation descriptors (SpawnFrame*), following
// the Chase–Lev design with the memory orderings of Lê/Pop/Cohen/Nardelli
// (PPoPP'13). The owner pushes and takes at the bottom; thieves steal from
// the top — so the oldest (shallowest) continuation is stolen first, exactly
// the Cilk THE-protocol discipline the paper's Section 3 describes.
//
// Two extensions beyond the textbook deque:
//
//   take_if(expected) — the owner's fork-join fast path pops the bottom
//   entry only if it is its own descriptor. If the bottom holds an *older*
//   descriptor the owner's frame was stolen, and the older entry must stay
//   in place for its own owner/thieves.
//
//   steal_batch(out, max) — steal-half: one transaction claims up to
//   ceil((b-t)/2) top entries with a single seq_cst CAS on top_, amortizing
//   the fence-and-CAS cost that dominates spawn-dense workloads across k
//   frames. A multi-entry claim is NOT safe in a plain Chase–Lev deque: the
//   owner pops bottom entries fence-checked against top_ only, so between a
//   thief's bottom_ read and its CAS the owner can drain the deque down
//   INTO the thief's intended range without ever touching top_. The classic
//   Cilk-5 THE protocol closes exactly this race with its exception marker,
//   and we borrow it: a batching thief serializes with other batchers on a
//   thief-side spinlock, announces its claim bound in exc_, and
//   Dekker-fences that announcement against the owner's bottom_ decrement —
//   so either the thief observes the decrement and shrinks its claim, or
//   the owner observes exc_ > its pop index and resolves the conflict under
//   the thief lock. The owner checks exc_ (acquire) before it reads top_:
//   if it instead observes the post-commit clear, the acquire pairs with
//   the thief's release so the owner's top_ read sees the committed CAS
//   and takes the empty path — never a frame inside the claimed range.
//   Single steals (k == 1) keep the lock-free Chase–Lev
//   path unchanged: they claim only index t, which the top_ CAS itself
//   protects.
//
// Layout discipline (cf. the OpenCilk __cilkrts_worker hot/cold split): the
// owner-hot line holds bottom_ plus the wake-gate fields read on every
// push; the thief-hot line holds top_, exc_, and the thief lock; the
// buffer starts on its own line. layout_static_checks() pins this with
// static_asserts so a refactor cannot silently re-merge the lines.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "runtime/parking.hpp"
#include "util/assert.hpp"
#include "util/cache.hpp"

namespace cilkm::rt {

struct SpawnFrame;

class Deque {
 public:
  static constexpr std::size_t kCapacity = std::size_t{1} << 16;
  static constexpr std::size_t kMask = kCapacity - 1;

  /// Most frames one steal_batch() transaction may claim, however large the
  /// victim's deque is ("half" mode caps here). Bounds the thief-side copy
  /// buffer and the time the thief lock is held.
  static constexpr unsigned kMaxStealBatch = 64;

  /// Wire the owning scheduler's parking lot into this deque: push() then
  /// wakes parked workers after publishing the new bottom entry. `tier_of`
  /// (indexed by worker id, owned by the scheduler) ranks sleepers by
  /// proximity to this deque's owner; `wake_batch` caps how many sleepers
  /// one push may wake (≥ 1; batching engages only when the deque is
  /// backing up — see push()). `wake_counter` / `batch_counter` are the
  /// owner's kWakes / kBatchWakes stat slots. Unattached deques (unit
  /// tests, standalone use) pay nothing beyond a null check.
  void attach_wake_gate(ParkingLot* lot, const std::uint8_t* tier_of,
                        unsigned wake_batch, std::uint64_t* wake_counter,
                        std::uint64_t* batch_counter) noexcept {
    lot_ = lot;
    wake_tier_of_ = tier_of;
    wake_batch_ = wake_batch < 1 ? 1 : wake_batch;
    wake_counter_ = wake_counter;
    batch_counter_ = batch_counter;
  }

  /// Owner only. Returns false — deque untouched, no wake fired — when the
  /// deque is full (spawn depth beyond kCapacity); fork2join then degrades
  /// to executing the child serially in place instead of aborting, so one
  /// pathological spawn burst cannot kill the process.
  bool push(SpawnFrame* frame) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(kCapacity)) return false;
    buffer_[static_cast<std::size_t>(b) & kMask].store(
        frame, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
    if (lot_ != nullptr) {
      // Batched wake-up: one isolated push wakes at most one sleeper (the
      // 1:1 discipline), but when pushes outrun thieves — b+1-t stealable
      // entries are outstanding, a fan-out burst — wake up to wake_batch
      // nearest sleepers at once to cut the serial wake latency chain.
      // wake() internally fences so the bottom store above is ordered
      // before the sleeper check (see parking.hpp).
      const std::int64_t outstanding = b + 1 - t;
      unsigned want = wake_batch_;
      if (outstanding < static_cast<std::int64_t>(want)) {
        want = outstanding < 1 ? 1u : static_cast<unsigned>(outstanding);
      }
      const std::uint32_t woken = lot_->wake(want, wake_tier_of_);
      *wake_counter_ += woken;
      if (woken > 1) *batch_counter_ += woken - 1;
    }
    return true;
  }

  /// Owner only: publish `n` frames (frames[0] oldest, i.e. stolen first)
  /// with one bottom_ store and NO wake-gate firing. Used by a thief
  /// re-queueing the tail of a steal_batch into its own deque — the wake-up
  /// for those frames is issued by the thief as ONE ParkingLot::wake call —
  /// and by take_impl's restore path, where no new work appeared.
  void push_bulk(SpawnFrame* const* frames, std::size_t n) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    CILKM_CHECK(b - t + static_cast<std::int64_t>(n) <=
                    static_cast<std::int64_t>(kCapacity),
                "deque overflow: bulk push exceeds capacity");
    for (std::size_t i = 0; i < n; ++i) {
      buffer_[static_cast<std::size_t>(b + static_cast<std::int64_t>(i)) &
              kMask]
          .store(frames[i], std::memory_order_relaxed);
    }
    bottom_.store(b + static_cast<std::int64_t>(n),
                  std::memory_order_release);
  }

  /// Owner only: push one frame without firing the wake gate (the frame was
  /// already published once; re-announcing it would wake a sleeper for no
  /// new work).
  void push_quiet(SpawnFrame* frame) noexcept { push_bulk(&frame, 1); }

  /// Owner only: pop the bottom entry unconditionally (scheduler self-steal
  /// path — the caller promotes it like any stolen frame).
  SpawnFrame* take_any() noexcept { return take_impl(nullptr); }

  /// Owner only: pop the bottom entry only if it equals `expected` (fork-join
  /// fast path). Returns nullptr when the deque is empty, when the bottom
  /// entry is not `expected` (i.e., `expected` was stolen), or when a thief
  /// wins the race for the last entry.
  SpawnFrame* take_if(SpawnFrame* expected) noexcept {
    CILKM_DCHECK(expected != nullptr, "take_if requires a frame");
    return take_impl(expected);
  }

  /// Thieves: steal the top (oldest) entry. Returns nullptr if empty or if
  /// the CAS race is lost (caller just retries elsewhere). Lock-free; claims
  /// only index t, so the CAS alone arbitrates against the owner.
  SpawnFrame* steal() noexcept {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    SpawnFrame* frame =
        buffer_[static_cast<std::size_t>(t) & kMask].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race
    }
    return frame;
  }

  /// Thieves: steal up to min(max_frames, kMaxStealBatch, ceil((b-t)/2))
  /// top entries in one transaction — out[0] is the oldest. Returns the
  /// number of frames claimed (0 on an empty deque or a lost race). One
  /// entry is always stealable even from a one-entry deque (the k == 1
  /// case degenerates to steal()). See the file comment for why a
  /// multi-entry claim needs the exc_ announcement and the thief lock.
  unsigned steal_batch(SpawnFrame** out, unsigned max_frames) noexcept {
    if (max_frames <= 1) {
      SpawnFrame* frame = steal();
      if (frame == nullptr) return 0;
      out[0] = frame;
      return 1;
    }
    // Cheap probe before committing to the locked protocol.
    {
      const std::int64_t t = top_.load(std::memory_order_acquire);
      const std::int64_t b = bottom_.load(std::memory_order_acquire);
      if (t >= b) return 0;
      if (b - t == 1 || !try_lock_thief()) {
        // One entry (nothing to batch), or another thief is mid-batch on
        // this victim — don't convoy behind it, grab a single frame on the
        // lock-free path instead.
        SpawnFrame* frame = steal();
        if (frame == nullptr) return 0;
        out[0] = frame;
        return 1;
      }
    }
    // Locked: no other steal_batch is in flight on this deque; lock-free
    // single steals and the owner still race below.
    std::int64_t t = top_.load(std::memory_order_acquire);
    const std::int64_t b1 = bottom_.load(std::memory_order_acquire);
    std::int64_t want = b1 - t;            // may be stale-high; re-checked
    want -= want / 2;                      // ceil(avail / 2)
    if (want > static_cast<std::int64_t>(max_frames)) want = max_frames;
    if (want > static_cast<std::int64_t>(kMaxStealBatch)) {
      want = kMaxStealBatch;
    }
    if (want <= 0) {
      unlock_thief();
      return 0;
    }
    // Announce the claim bound, then Dekker-fence against the owner's
    // bottom_ decrement: the owner stores bottom_ / fences / loads exc_,
    // we store exc_ / fence / load bottom_ — at least one side observes
    // the other, so either we shrink below every concurrent pop or the
    // owner backs out into the lock-resolved conflict path.
    exc_.store(t + want, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b2 = bottom_.load(std::memory_order_acquire);
    const std::int64_t k = b2 - t < want ? b2 - t : want;
    if (k <= 0) {
      exc_.store(kNoExc, std::memory_order_release);
      unlock_thief();
      return 0;
    }
    // Read the claimed frames BEFORE the CAS (as in steal(): once top_
    // moves, pushes may recycle these slots after the ring wraps).
    for (std::int64_t i = 0; i < k; ++i) {
      out[i] = buffer_[static_cast<std::size_t>(t + i) & kMask].load(
          std::memory_order_relaxed);
    }
    // One CAS claims all k entries; a concurrent single steal or the
    // owner's last-entry race moves top_ and fails us (caller retries on
    // another victim, like steal()).
    const bool won = top_.compare_exchange_strong(
        t, t + k, std::memory_order_seq_cst, std::memory_order_relaxed);
    exc_.store(kNoExc, std::memory_order_release);
    unlock_thief();
    return won ? static_cast<unsigned>(k) : 0;
  }

  bool empty() const noexcept {
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::int64_t kNoExc =
      static_cast<std::int64_t>(INT64_MIN);

  void lock_thief() noexcept {
    while (thief_lock_.exchange(true, std::memory_order_acquire)) {
      while (thief_lock_.load(std::memory_order_relaxed)) cpu_relax();
    }
  }
  bool try_lock_thief() noexcept {
    return !thief_lock_.exchange(true, std::memory_order_acquire);
  }
  void unlock_thief() noexcept {
    thief_lock_.store(false, std::memory_order_release);
  }

  /// Owner pop. The fast attempt detects an in-flight steal_batch whose
  /// announced claim bound covers our pop index; the conflict is resolved
  /// by re-running the classic pop under the thief lock (THE-style), where
  /// no batch transaction can be in flight.
  SpawnFrame* take_impl(SpawnFrame* expected) noexcept {
    SpawnFrame* out = nullptr;
    if (take_attempt(expected, &out)) return out;
    lock_thief();
    [[maybe_unused]] const bool resolved = take_attempt(expected, &out);
    CILKM_DCHECK(resolved, "owner pop conflicted while holding thief lock");
    unlock_thief();
    return out;
  }

  /// One pop attempt. Returns false only on a steal_batch conflict (deque
  /// state restored); true otherwise, with the result in *out.
  bool take_attempt(SpawnFrame* expected, SpawnFrame** out) noexcept {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // A batching thief may have announced a claim [*, exc_) that covers
    // index b while its top_ CAS is still in flight; popping b fence-free
    // would race it. Back out and let take_impl resolve under the lock.
    //
    // The check must be an ACQUIRE load and must come BEFORE the top_ load.
    // The Dekker pair (our bottom_ store / fence / exc_ load vs the thief's
    // exc_ store / fence / bottom_ load) guarantees that when the thief's
    // claim could cover b we read either the announcement — back out — or
    // the post-CAS clear; the clear is a release store sequenced after the
    // CAS, so acquiring it forces the top_ load below to observe top_ moved
    // past the claim and take the empty path. Loading exc_ relaxed or after
    // top_ admits the fatal interleaving: a stale pre-CAS top_ paired with
    // the cleared marker, both checks pass, and the frame runs twice (here
    // and in the thief's batch). A stale announcement — transaction already
    // finished — costs one harmless lock round-trip.
    if (exc_.load(std::memory_order_acquire) > b) {
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was empty (or a batch claim just committed past b).
      bottom_.store(b + 1, std::memory_order_relaxed);
      *out = nullptr;
      return true;
    }
    SpawnFrame* frame =
        buffer_[static_cast<std::size_t>(b) & kMask].load(std::memory_order_relaxed);
    if (t == b) {
      // Single entry: race a potential thief for it via the top CAS.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      if (!won) {
        *out = nullptr;
        return true;
      }
      if (expected != nullptr && frame != expected) {
        // We consumed an older entry that must remain available: the deque
        // is now empty (we hold its sole entry), so re-pushing preserves
        // order. Quiet push: this frame was already announced to sleepers
        // when it was first pushed — no new work appeared here.
        push_quiet(frame);
        *out = nullptr;
        return true;
      }
      *out = frame;
      return true;
    }
    // More than one entry: the bottom entry is ours without a race.
    if (expected != nullptr && frame != expected) {
      bottom_.store(b + 1, std::memory_order_relaxed);  // leave it in place
      *out = nullptr;
      return true;
    }
    *out = frame;
    return true;
  }

  /// Compile-time pins for the hot/cold split (documented in README's
  /// "Steal path" table). Never called; the static_asserts fire on any
  /// layout regression.
  static void layout_static_checks() noexcept {
    // Owner-hot line: bottom_ plus every field push() reads.
    static_assert(offsetof(Deque, lot_) / kCacheLineSize ==
                      offsetof(Deque, bottom_) / kCacheLineSize,
                  "wake-gate fields must share the owner-hot line");
    static_assert(offsetof(Deque, batch_counter_) / kCacheLineSize ==
                      offsetof(Deque, bottom_) / kCacheLineSize,
                  "wake-gate fields must share the owner-hot line");
    // Thief-hot line: top_, exc_, and the thief lock — written by thieves,
    // read once per owner pop.
    static_assert(offsetof(Deque, exc_) / kCacheLineSize ==
                      offsetof(Deque, top_) / kCacheLineSize,
                  "exc_ must share the thief-hot line with top_");
    static_assert(offsetof(Deque, thief_lock_) / kCacheLineSize ==
                      offsetof(Deque, top_) / kCacheLineSize,
                  "the thief lock must share the thief-hot line");
    // The two hot lines must not be the same line, and the buffer starts
    // on its own.
    static_assert(offsetof(Deque, top_) / kCacheLineSize !=
                      offsetof(Deque, bottom_) / kCacheLineSize,
                  "owner-hot and thief-hot fields on one line");
    static_assert(offsetof(Deque, buffer_) % kCacheLineSize == 0,
                  "buffer must start on a cache-line boundary");
    static_assert(offsetof(Deque, buffer_) / kCacheLineSize !=
                      offsetof(Deque, top_) / kCacheLineSize,
                  "buffer head must not share the thief-hot line");
  }

  // --- owner-hot line: bottom_ + the wake gate push() reads every time ---
  alignas(kCacheLineSize) std::atomic<std::int64_t> bottom_{0};
  ParkingLot* lot_ = nullptr;           // owner-written at attach, then const
  const std::uint8_t* wake_tier_of_ = nullptr;
  unsigned wake_batch_ = 1;
  std::uint64_t* wake_counter_ = nullptr;
  std::uint64_t* batch_counter_ = nullptr;

  // --- thief-hot line: top_ + the steal-batch transaction state ---
  alignas(kCacheLineSize) std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> exc_{kNoExc};  // claim bound of an in-flight batch
  std::atomic<bool> thief_lock_{false};    // serializes steal_batch thieves

  alignas(kCacheLineSize) std::atomic<SpawnFrame*> buffer_[kCapacity]{};
};

}  // namespace cilkm::rt
