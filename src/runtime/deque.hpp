// Work-stealing deque of continuation descriptors (SpawnFrame*), following
// the Chase–Lev design with the memory orderings of Lê/Pop/Cohen/Nardelli
// (PPoPP'13). The owner pushes and takes at the bottom; thieves steal from
// the top — so the oldest (shallowest) continuation is stolen first, exactly
// the Cilk THE-protocol discipline the paper's Section 3 describes.
//
// One extension: take_if(expected) — the owner's fork-join fast path pops
// the bottom entry only if it is its own descriptor. If the bottom holds an
// *older* descriptor the owner's frame was stolen, and the older entry must
// stay in place for its own owner/thieves.
#pragma once

#include <atomic>
#include <cstdint>

#include "runtime/parking.hpp"
#include "util/assert.hpp"
#include "util/cache.hpp"

namespace cilkm::rt {

struct SpawnFrame;

class Deque {
 public:
  static constexpr std::size_t kCapacity = std::size_t{1} << 16;
  static constexpr std::size_t kMask = kCapacity - 1;

  /// Wire the owning scheduler's parking lot into this deque: push() then
  /// wakes parked workers after publishing the new bottom entry. `tier_of`
  /// (indexed by worker id, owned by the scheduler) ranks sleepers by
  /// proximity to this deque's owner; `wake_batch` caps how many sleepers
  /// one push may wake (≥ 1; batching engages only when the deque is
  /// backing up — see push()). `wake_counter` / `batch_counter` are the
  /// owner's kWakes / kBatchWakes stat slots. Unattached deques (unit
  /// tests, standalone use) pay nothing beyond a null check.
  void attach_wake_gate(ParkingLot* lot, const std::uint8_t* tier_of,
                        unsigned wake_batch, std::uint64_t* wake_counter,
                        std::uint64_t* batch_counter) noexcept {
    lot_ = lot;
    wake_tier_of_ = tier_of;
    wake_batch_ = wake_batch < 1 ? 1 : wake_batch;
    wake_counter_ = wake_counter;
    batch_counter_ = batch_counter;
  }

  /// Owner only.
  void push(SpawnFrame* frame) noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    CILKM_CHECK(b - t < static_cast<std::int64_t>(kCapacity),
                "deque overflow: spawn depth exceeds capacity");
    buffer_[static_cast<std::size_t>(b) & kMask].store(
        frame, std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
    if (lot_ != nullptr) {
      // Batched wake-up: one isolated push wakes at most one sleeper (the
      // 1:1 discipline), but when pushes outrun thieves — b+1-t stealable
      // entries are outstanding, a fan-out burst — wake up to wake_batch
      // nearest sleepers at once to cut the serial wake latency chain.
      // wake() internally fences so the bottom store above is ordered
      // before the sleeper check (see parking.hpp).
      const std::int64_t outstanding = b + 1 - t;
      unsigned want = wake_batch_;
      if (outstanding < static_cast<std::int64_t>(want)) {
        want = outstanding < 1 ? 1u : static_cast<unsigned>(outstanding);
      }
      const std::uint32_t woken = lot_->wake(want, wake_tier_of_);
      *wake_counter_ += woken;
      if (woken > 1) *batch_counter_ += woken - 1;
    }
  }

  /// Owner only: pop the bottom entry unconditionally (scheduler self-steal
  /// path — the caller promotes it like any stolen frame).
  SpawnFrame* take_any() noexcept { return take_impl(nullptr); }

  /// Owner only: pop the bottom entry only if it equals `expected` (fork-join
  /// fast path). Returns nullptr when the deque is empty, when the bottom
  /// entry is not `expected` (i.e., `expected` was stolen), or when a thief
  /// wins the race for the last entry.
  SpawnFrame* take_if(SpawnFrame* expected) noexcept {
    CILKM_DCHECK(expected != nullptr, "take_if requires a frame");
    return take_impl(expected);
  }

  /// Thieves: steal the top (oldest) entry. Returns nullptr if empty or if
  /// the CAS race is lost (caller just retries elsewhere).
  SpawnFrame* steal() noexcept {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    SpawnFrame* frame =
        buffer_[static_cast<std::size_t>(t) & kMask].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return nullptr;  // lost the race
    }
    return frame;
  }

  bool empty() const noexcept {
    return top_.load(std::memory_order_acquire) >=
           bottom_.load(std::memory_order_acquire);
  }

 private:
  SpawnFrame* take_impl(SpawnFrame* expected) noexcept {
    std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was empty.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    SpawnFrame* frame =
        buffer_[static_cast<std::size_t>(b) & kMask].load(std::memory_order_relaxed);
    if (t == b) {
      // Single entry: race a potential thief for it via the top CAS.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      if (!won) return nullptr;
      if (expected != nullptr && frame != expected) {
        // We consumed an older entry that must remain available: the deque is
        // now empty (we hold its sole entry), so re-pushing preserves order.
        push(frame);
        return nullptr;
      }
      return frame;
    }
    // More than one entry: the bottom entry is ours without a race.
    if (expected != nullptr && frame != expected) {
      bottom_.store(b + 1, std::memory_order_relaxed);  // leave it in place
      return nullptr;
    }
    return frame;
  }

  alignas(kCacheLineSize) std::atomic<std::int64_t> top_{0};
  alignas(kCacheLineSize) std::atomic<std::int64_t> bottom_{0};
  ParkingLot* lot_ = nullptr;           // owner-written at attach, then const
  const std::uint8_t* wake_tier_of_ = nullptr;
  unsigned wake_batch_ = 1;
  std::uint64_t* wake_counter_ = nullptr;
  std::uint64_t* batch_counter_ = nullptr;
  alignas(kCacheLineSize) std::atomic<SpawnFrame*> buffer_[kCapacity]{};
};

}  // namespace cilkm::rt
