// Spawn pedigrees (Leiserson, Schardl & Sukha, SPAA'12 "DPRNG"): every
// strand of the fork-join computation is named by the path of spawn ranks
// from the root — a sequence fixed by the SERIAL elision of the program,
// identical under every steal schedule, worker count, and steal-batch
// setting. fork2join maintains the ranks (api.hpp), promoted frames carry
// them through steals (frame.hpp / fiber_main), and util/dprng.hpp hashes
// them so any random draw inside a parallel region is a pure function of
// (seed, pedigree).
//
// Representation: the rank prefix is a linked chain of stack-allocated
// nodes, one per live fork2join activation (the node lives in the spawning
// call's stack frame, exactly as deep as the spawn tree). A chain node is
// immutable once published; only the leaf rank — the current strand's own
// counter — mutates, and it lives in thread-local state that every resume
// point (steal, self-pop, joining resume) re-establishes from the frame.
//
// Rank discipline, mirroring cilk_spawn/cilk_sync:
//   - fork2join(a, b) at rank r runs `a` as the spawned child with pedigree
//     prefix+[r] (child leaf rank restarts at 0), runs `b` as the
//     continuation at rank r+1, and leaves the join at rank r+2 (the sync
//     bump), so strands before, beside, and after the join never alias.
//   - A DPRNG draw consumes the current leaf rank and bumps it, so
//     consecutive draws on one strand are distinct and a draw's value
//     depends only on the serial position of the draw.
#pragma once

#include <cstdint>

namespace cilkm::rt {

/// One rank of the pedigree prefix, linked toward the root. Lives on the
/// spawning fork2join's stack; valid for exactly as long as that call is
/// live, which covers every strand (and thief) below it.
struct PedigreeNode {
  std::uint64_t rank;
  const PedigreeNode* parent;
};

/// The calling strand's pedigree: the immutable prefix chain plus the
/// mutable leaf rank. Thread-local; re-seated from the SpawnFrame at every
/// point where a strand (re)starts on an OS thread.
struct PedigreeState {
  const PedigreeNode* parent = nullptr;
  std::uint64_t rank = 0;
};

/// The current strand's pedigree state. Valid on any thread: workers are
/// re-seated at strand boundaries, and a scheduler-less thread (serial
/// elision) just advances its own thread-local copy through the identical
/// rank discipline.
///
/// Deliberately OUT OF LINE (pedigree.cpp, noinline): fibers migrate
/// between OS threads at joins, and an inlined accessor lets the compiler
/// CSE the thread-local's materialized address across the migration point —
/// the resumed strand would then write the OLD thread's slot. The opaque
/// call forces a fresh %fs-relative address computation on the thread that
/// is actually running the strand. The returned reference stays valid only
/// until the next potential migration (any fork2join / scheduler call):
/// re-fetch after those, never cache across them.
PedigreeState& current_pedigree() noexcept;

/// Number of ranks in the pedigree (prefix length + the leaf). Linear walk;
/// meant for tests and diagnostics, not hot paths.
inline unsigned pedigree_depth() noexcept {
  unsigned depth = 1;
  for (const PedigreeNode* n = current_pedigree().parent; n != nullptr;
       n = n->parent) {
    ++depth;
  }
  return depth;
}

/// Scoped reset to the root pedigree, restoring the caller's state on exit.
/// Serial reference computations wrap themselves in one of these so their
/// draws replay the root-rooted pedigrees a scheduler run produces.
class PedigreeScope {
 public:
  PedigreeScope() noexcept : saved_(current_pedigree()) {
    current_pedigree() = {};
  }
  ~PedigreeScope() { current_pedigree() = saved_; }

  PedigreeScope(const PedigreeScope&) = delete;
  PedigreeScope& operator=(const PedigreeScope&) = delete;

 private:
  PedigreeState saved_;
};

}  // namespace cilkm::rt
