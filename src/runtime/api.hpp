// Public fork-join API. fork2join(a, b) runs `a` immediately and exposes
// "`b`, then the join" as a stealable continuation — exactly the
// continuation-stealing discipline of cilk_spawn/cilk_sync, expressed with
// closures instead of compiler support. Any spawn/sync pattern desugars into
// nested fork2join calls (see DESIGN.md Section 3), and each worker executes
// in precise serial order between steals, which is what the reducer protocol
// relies on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

#include "chaos/chaos.hpp"
#include "obs/profiler.hpp"
#include "runtime/frame.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/worker.hpp"

namespace cilkm {

/// Run a() then b(), allowing b's side (with everything after it up to the
/// join) to be stolen. Serial semantics: exactly a(); b();.
///
/// Pedigree discipline (runtime/pedigree.hpp): at spawn rank r, `a` runs as
/// the child with pedigree prefix+[r] (its own leaf rank restarts at 0),
/// `b` runs as the continuation at rank r+1, and the strand past the join
/// runs at r+2 — the same transitions in the serial elision and under every
/// steal schedule, so pedigree-hashed draws are schedule-independent.
///
/// NOTE: the call may return on a different worker thread than it started on
/// (the continuation migrates at a joining steal); do not cache
/// thread-identity-dependent state across this call.
///
/// Work/span profiling (obs/profiler.hpp): under --profile every strand
/// boundary here closes the running strand, opens the branch's fresh
/// subcomputation accumulators, and combines work additively / span and
/// burden by max at the join — the serial elision, the un-stolen fast path,
/// and the stolen slow path all apply the identical combine rule, so the
/// reported span is the DAG's span under every schedule. Off, the only cost
/// is one relaxed load and predicted branches.
template <typename A, typename B>
void fork2join(A&& a, B&& b) {
  rt::Worker* w = rt::Worker::current();
  rt::PedigreeState& ped = rt::current_pedigree();
  const rt::PedigreeNode* const spawn_parent = ped.parent;
  const std::uint64_t spawn_rank = ped.rank;
  rt::PedigreeNode child_node{spawn_rank, spawn_parent};
  const bool prof = obs::profiler_enabled();
  std::uint64_t sv_work = 0, sv_span = 0, sv_burden = 0;
  std::uint64_t a_work = 0, a_span = 0, a_burden = 0;
  if (prof) {
    // Close the spawning strand and save its prefix totals; the child runs
    // with fresh accumulators.
    obs::ProfileState& ps = obs::current_profile();
    obs::strand_end(ps);
    sv_work = ps.work;
    sv_span = ps.span;
    sv_burden = ps.burden;
  }
  if (w != nullptr && !w->serial_spawns()) {
    rt::SpawnFrameT<std::remove_reference_t<B>> frame(&b);
    // The pedigree snapshot must be complete before the push: a thief may
    // promote the frame (and read these fields) immediately.
    frame.ped_parent = spawn_parent;
    frame.ped_rank = spawn_rank;
    if (prof) {
      // Like the pedigree: the profiler slots must be valid before the push.
      // The thief overwrites prof_work/span/burden, but prof_burden_left only
      // ever accumulates victim-side protocol costs.
      frame.prof_work = 0;
      frame.prof_span = 0;
      frame.prof_burden = 0;
      frame.prof_burden_left = 0;
    }
    // An injected push fault or a genuinely full deque both land on the
    // serial tail below: the child runs in place, exactly as in the serial
    // elision, and the process survives what used to be a capacity abort.
    if (!chaos::should_fail(chaos::Site::kDequePush) &&
        w->deque().push(&frame)) {
      ped = {&child_node, 0};
      if (prof) {
        obs::ProfileState& ps = obs::current_profile();
        ps = {};
        obs::strand_begin(ps);
      }
      std::exception_ptr a_eptr;
      try {
        a();
      } catch (...) {
        a_eptr = std::current_exception();
      }
      // `w` (and the thread-local pedigree slot) may be stale if a() itself
      // migrated at an inner join; re-fetch both.
      rt::Worker* w2 = rt::Worker::current();
      if (prof) {
        obs::ProfileState& ps = obs::current_profile();
        obs::strand_end(ps);
        a_work = ps.work;
        a_span = ps.span;
        a_burden = ps.burden;
      }
      rt::SpawnFrame* popped = w2->deque().take_if(&frame);
      if (popped == &frame) {
        // Fast path: not stolen. Mirrors serial execution; no view
        // operations.
        rt::current_pedigree() = {spawn_parent, spawn_rank + 1};
        if (a_eptr) std::rethrow_exception(a_eptr);
        if (prof) {
          obs::ProfileState& ps = obs::current_profile();
          ps = {};
          obs::strand_begin(ps);
        }
        b();
        rt::current_pedigree() = {spawn_parent, spawn_rank + 2};
        if (prof) {
          obs::ProfileState& ps = obs::current_profile();
          obs::strand_end(ps);
          ps.work = sv_work + a_work + ps.work;
          ps.span = sv_span + std::max(a_span, ps.span);
          ps.burden = sv_burden + std::max(a_burden, ps.burden);
          obs::strand_begin(ps);
        }
        return;
      }
      // Slow path: the continuation was (or is being) stolen. b runs (or
      // ran) on the thief at rank r+1 (fiber_main seats it from the frame).
      rt::Worker::join_slow(&frame);
      if (prof) {
        // Both branches have arrived: the thief published b's totals in the
        // frame (before its release arrival, so they are visible here), and
        // every victim-side protocol cost landed in prof_burden_left. This
        // thread may not be the one that ran a() — re-fetch the slot.
        obs::ProfileState& ps = obs::current_profile();
        ps.work = sv_work + a_work + frame.prof_work;
        ps.span = sv_span + std::max(a_span, frame.prof_span);
        ps.burden =
            sv_burden + std::max(a_burden + frame.prof_burden_left,
                                 frame.prof_burden);
        obs::strand_begin(ps);
      }
      rt::current_pedigree() = {spawn_parent, spawn_rank + 2};
      if (a_eptr) std::rethrow_exception(a_eptr);
      // Rethrow-and-clear: this frame's storage is recycled through the
      // tagged allocator, and a stale exception_ptr must never survive into
      // the next activation that lands on the same bytes.
      if (frame.eptr) {
        std::rethrow_exception(std::exchange(frame.eptr, nullptr));
      }
      return;
    }
    ++w->stats()[StatCounter::kSerialDegrades];
  }
  // Serial execution in place, advancing the pedigree through the identical
  // spawn/sync transitions. Three callers share this tail: the serial
  // elision (no scheduler), a degraded (fiber-less) frame whose worker
  // forces nested spawns serial, and a spawn whose push was refused (deque
  // full or injected chaos fault).
  ped = {&child_node, 0};
  if (prof) {
    obs::ProfileState& ps = obs::current_profile();
    ps = {};
    obs::strand_begin(ps);
  }
  a();
  rt::current_pedigree() = {spawn_parent, spawn_rank + 1};
  if (prof) {
    obs::ProfileState& ps = obs::current_profile();
    obs::strand_end(ps);
    a_work = ps.work;
    a_span = ps.span;
    a_burden = ps.burden;
    ps = {};
    obs::strand_begin(ps);
  }
  b();
  rt::current_pedigree() = {spawn_parent, spawn_rank + 2};
  if (prof) {
    obs::ProfileState& ps = obs::current_profile();
    obs::strand_end(ps);
    ps.work = sv_work + a_work + ps.work;
    ps.span = sv_span + std::max(a_span, ps.span);
    ps.burden = sv_burden + std::max(a_burden, ps.burden);
    obs::strand_begin(ps);
  }
}

/// Run all invocables, allowing them to execute in parallel; serial order is
/// left-to-right (so order-sensitive reducers behave as in serial code).
template <typename F1, typename F2, typename... Rest>
void parallel_invoke(F1&& f1, F2&& f2, Rest&&... rest) {
  if constexpr (sizeof...(Rest) == 0) {
    fork2join(std::forward<F1>(f1), std::forward<F2>(f2));
  } else {
    fork2join(std::forward<F1>(f1), [&] {
      parallel_invoke(std::forward<F2>(f2), std::forward<Rest>(rest)...);
    });
  }
}

/// Parallel loop over [lo, hi): recursive binary splitting down to `grain`
/// iterations, preserving ascending serial order within and across leaves.
template <typename Body>
void parallel_for(std::int64_t lo, std::int64_t hi, std::int64_t grain,
                  Body&& body) {
  if (hi - lo <= grain) {
    for (std::int64_t i = lo; i < hi; ++i) body(i);
    return;
  }
  const std::int64_t mid = lo + (hi - lo) / 2;
  fork2join([&] { parallel_for(lo, mid, grain, body); },
            [&] { parallel_for(mid, hi, grain, body); });
}

/// Parallel loop with automatic grain selection: aims for ~8 leaf chunks per
/// worker, the usual divide-and-conquer rule of thumb.
template <typename Body>
void parallel_for(std::int64_t lo, std::int64_t hi, Body&& body) {
  std::int64_t workers = 1;
  if (rt::Worker* w = rt::Worker::current()) {
    workers = static_cast<std::int64_t>(w->scheduler()->num_workers());
  }
  const std::int64_t grain = std::max<std::int64_t>(1, (hi - lo) / (8 * workers));
  parallel_for(lo, hi, grain, std::forward<Body>(body));
}

/// A dynamic set of tasks executed in parallel at sync(), with serial order
/// preserved left-to-right (so order-sensitive reducers behave exactly as if
/// the tasks ran in spawn order). Unlike cilk_spawn, children do not begin
/// until sync() — use fork2join directly when the spawning strand should
/// overlap with its children.
class SpawnGroup {
 public:
  template <typename F>
  void spawn(F&& task) {
    tasks_.emplace_back(std::forward<F>(task));
  }

  bool empty() const noexcept { return tasks_.empty(); }
  std::size_t size() const noexcept { return tasks_.size(); }

  /// Run all spawned tasks (parallel, order-preserving) and clear the group.
  void sync() {
    if (!tasks_.empty()) invoke_range(0, tasks_.size());
    tasks_.clear();
  }

  ~SpawnGroup() { sync(); }

 private:
  void invoke_range(std::size_t lo, std::size_t hi) {
    if (hi - lo == 1) {
      tasks_[lo]();
      return;
    }
    const std::size_t mid = lo + (hi - lo) / 2;
    fork2join([&] { invoke_range(lo, mid); }, [&] { invoke_range(mid, hi); });
  }

  std::vector<std::function<void()>> tasks_;
};

/// Convenience re-exports.
using rt::Scheduler;
using rt::SchedulerOptions;
inline void run(unsigned num_workers, std::function<void()> root) {
  rt::run(num_workers, std::move(root));
}

}  // namespace cilkm
