#include "runtime/worker.hpp"

#include <thread>

#include "runtime/scheduler.hpp"
#include "runtime/trace.hpp"
#include "util/assert.hpp"
#include "util/timing.hpp"

namespace cilkm::rt {

thread_local Worker* tls_worker = nullptr;

Worker::Worker(Scheduler* sched, unsigned id) : id_(id), sched_(sched) {}

Worker::~Worker() {
  spa::SlotAllocator::instance().flush(slot_cache_);
  spa::PagePool::instance().flush(page_pool_);
}

// ---------------------------------------------------------------------------
// Private SPA-map bookkeeping
// ---------------------------------------------------------------------------

void Worker::ambient_install_spa(std::uint64_t offset, void* view,
                                 const ViewOps* ops) {
  ScopedTimerNs timer(stats_[StatCounter::kViewInsertNs]);
  const std::uint32_t page_idx = spa::offset_page(offset);
  spa::SpaPage* page = page_at(page_idx);
  spa::ViewSlot* slot = slot_at(offset);
  CILKM_DCHECK(slot->empty(), "installing over a live view");
  slot->view = view;
  slot->ops = ops;
  const bool first_in_page = page->num_valid == 0;
  page->note_insert(spa::offset_index(offset));
  if (first_in_page) touched_pages_.push_back(page_idx);
}

void* Worker::ambient_extract_spa(std::uint64_t offset) {
  spa::ViewSlot* slot = slot_at(offset);
  if (slot->empty()) return nullptr;
  void* view = slot->view;
  *slot = spa::ViewSlot{nullptr, nullptr};
  spa::SpaPage* page = page_at(spa::offset_page(offset));
  CILKM_DCHECK(page->num_valid > 0, "page valid-count underflow");
  --page->num_valid;
  // The page stays in touched_pages_; transferal skips empty pages, and a
  // stale log entry is harmless because the slot is now a null pair.
  return view;
}

bool Worker::ambient_empty() const noexcept {
  if (!hmap_.empty()) return false;
  for (const std::uint32_t page_idx : touched_pages_) {
    const auto* page = reinterpret_cast<const spa::SpaPage*>(
        region_.base() + std::size_t{page_idx} * spa::kPageBytes);
    if (!page->all_empty()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// View transferal (paper Section 7) and hypermerge
// ---------------------------------------------------------------------------

void Worker::deposit_ambient(ViewSetDeposit* out) {
  CILKM_DCHECK(out->empty(), "deposit placeholder already occupied");
  {
    ScopedTimerNs timer(stats_[StatCounter::kViewTransferNs]);
    for (const std::uint32_t page_idx : touched_pages_) {
      spa::SpaPage* priv = page_at(page_idx);
      if (priv->all_empty()) continue;
      spa::SpaPage* pub = spa::PagePool::instance().acquire(&page_pool_);
      priv->for_each_valid([&](std::uint32_t idx, spa::ViewSlot& slot) {
        pub->views[idx] = slot;
        pub->note_insert(idx);
        slot = spa::ViewSlot{nullptr, nullptr};
        ++stats_[StatCounter::kViewsTransferred];
      });
      priv->num_valid = 0;
      priv->num_logs = 0;
      out->spa.push_back({page_idx, pub});
    }
    touched_pages_.clear();
  }
  // Hypermap transferal is a pointer switch, as in Cilk Plus.
  out->hmap = std::move(hmap_);
}

void Worker::install_deposit(ViewSetDeposit* in) {
  CILKM_DCHECK(ambient_empty(), "install_deposit requires an empty ambient");
  for (auto& [page_idx, pub] : in->spa) {
    pub->for_each_valid([&](std::uint32_t idx, spa::ViewSlot& dslot) {
      ambient_install_spa(spa::slot_offset(page_idx, idx), dslot.view, dslot.ops);
      dslot = spa::ViewSlot{nullptr, nullptr};
    });
    pub->num_valid = 0;
    pub->num_logs = 0;
    spa::PagePool::instance().release(pub, &page_pool_);
  }
  in->spa.clear();
  hmap_ = std::move(in->hmap);
}

void Worker::merge_hmap(hypermap::HyperMap&& deposit, bool deposit_is_left) {
  if (deposit.empty()) return;
  // Sequence through the map with fewer views and reduce into the larger
  // one (the paper's hypermerge rule). Swapping the table objects flips
  // which physical map survives but not the ⊗ operand order.
  bool ambient_is_storage = true;
  if (deposit.size() > hmap_.size()) {
    hmap_.swap(deposit);
    ambient_is_storage = false;  // hmap_ now holds the deposit's entries
    deposit_is_left = !deposit_is_left;
    (void)ambient_is_storage;
  }
  deposit.for_each([&](hypermap::Entry& e) {
    hypermap::Entry* mine = hmap_.lookup(e.key);
    if (mine == nullptr) {
      hmap_.insert(e.key, e.view, e.ops);
      return;
    }
    if (deposit_is_left) {
      // e is serially earlier: result = e.view ⊗ mine->view, kept in e.view.
      e.ops->reduce(e.ops->reducer, e.view, mine->view);
      mine->view = e.view;
    } else {
      mine->ops->reduce(mine->ops->reducer, mine->view, e.view);
    }
  });
  deposit = hypermap::HyperMap{};
}

void Worker::merge_deposit_left(ViewSetDeposit* in) {
  Tracer::instance().record(id_, TraceEvent::kMerge, in);
  ScopedTimerNs timer(stats_[StatCounter::kHypermergeNs]);
  ++stats_[StatCounter::kHypermerges];
  for (auto& [page_idx, pub] : in->spa) {
    pub->for_each_valid([&](std::uint32_t idx, spa::ViewSlot& dslot) {
      const std::uint64_t offset = spa::slot_offset(page_idx, idx);
      spa::ViewSlot* mine = slot_at(offset);
      if (mine->empty()) {
        ambient_install_spa(offset, dslot.view, dslot.ops);
      } else {
        // Deposit is serially earlier: fold our view into it, then adopt it.
        dslot.ops->reduce(dslot.ops->reducer, dslot.view, mine->view);
        mine->view = dslot.view;
      }
      dslot = spa::ViewSlot{nullptr, nullptr};
    });
    pub->num_valid = 0;
    pub->num_logs = 0;
    spa::PagePool::instance().release(pub, &page_pool_);
  }
  in->spa.clear();
  merge_hmap(std::move(in->hmap), /*deposit_is_left=*/true);
}

void Worker::merge_deposit_right(ViewSetDeposit* in) {
  Tracer::instance().record(id_, TraceEvent::kMerge, in);
  ScopedTimerNs timer(stats_[StatCounter::kHypermergeNs]);
  ++stats_[StatCounter::kHypermerges];
  for (auto& [page_idx, pub] : in->spa) {
    pub->for_each_valid([&](std::uint32_t idx, spa::ViewSlot& dslot) {
      const std::uint64_t offset = spa::slot_offset(page_idx, idx);
      spa::ViewSlot* mine = slot_at(offset);
      if (mine->empty()) {
        ambient_install_spa(offset, dslot.view, dslot.ops);
      } else {
        mine->ops->reduce(mine->ops->reducer, mine->view, dslot.view);
      }
      dslot = spa::ViewSlot{nullptr, nullptr};
    });
    pub->num_valid = 0;
    pub->num_logs = 0;
    spa::PagePool::instance().release(pub, &page_pool_);
  }
  in->spa.clear();
  merge_hmap(std::move(in->hmap), /*deposit_is_left=*/false);
}

void Worker::collapse_ambient_into_leftmosts() {
  for (const std::uint32_t page_idx : touched_pages_) {
    spa::SpaPage* page = page_at(page_idx);
    if (page->all_empty()) continue;
    page->for_each_valid([&](std::uint32_t, spa::ViewSlot& slot) {
      slot.ops->collapse(slot.ops->reducer, slot.view);
      slot = spa::ViewSlot{nullptr, nullptr};
    });
    page->num_valid = 0;
    page->num_logs = 0;
  }
  touched_pages_.clear();
  hmap_.for_each([&](hypermap::Entry& e) {
    e.ops->collapse(e.ops->reducer, e.view);
  });
  hmap_.clear();
}

// ---------------------------------------------------------------------------
// Scheduling: fibers, parking, stealing
// ---------------------------------------------------------------------------

void Worker::drain_pending() {
  if (pending_recycle_ != nullptr) {
    StackPool::instance().release(pending_recycle_);
    pending_recycle_ = nullptr;
  }
}

/// Trampoline for every fiber: runs either the root task or a stolen branch,
/// then performs the thief side of the join protocol. Never returns.
void fiber_main(void* arg) {
  auto* self = static_cast<Fiber*>(arg);
  Worker* w = Worker::current();
  w->drain_pending();
  SpawnFrame* frame = w->launch_frame_;
  w->launch_frame_ = nullptr;

  if (frame == nullptr) {
    // Root task.
    Scheduler* sched = w->scheduler();
    try {
      sched->root_fn_();
    } catch (...) {
      sched->root_eptr_ = std::current_exception();
    }
    Worker* w2 = Worker::current();  // the root may have migrated
    w2->collapse_ambient_into_leftmosts();
    w2->pending_recycle_ = w2->current_fiber_;
    w2->current_fiber_ = nullptr;
    Tracer::instance().record(w2->id(), TraceEvent::kRootDone, nullptr);
    w2->scheduler()->done_.store(true, std::memory_order_release);
    cilkm_ctx_switch(&self->ctx, &w2->sched_ctx_);
    __builtin_unreachable();
  }

  try {
    frame->invoke_b(frame);
  } catch (...) {
    frame->eptr = std::current_exception();
  }
  Worker* w2 = Worker::current();
  if (frame->arrivals.load(std::memory_order_acquire) == 1) {
    // The victim has already parked (its arrival is announced only after
    // its deposit and context save are complete). Merge its serially
    // earlier views on the left of ours and perform the joining steal —
    // resume the parked continuation on this worker, no deposit needed.
    w2->merge_deposit_left(&frame->left_views);
    ++w2->stats_[StatCounter::kJoiningSteals];
    Tracer::instance().record(w2->id(), TraceEvent::kResumeByThief, frame);
    w2->pending_recycle_ = w2->current_fiber_;
    w2->current_fiber_ = frame->parked_fiber;
    cilkm_ctx_switch(&self->ctx, &frame->parked);
    __builtin_unreachable();
  }
  // Deposit our views on the right, THEN announce the arrival: the other
  // side must never observe a half-built deposit.
  Tracer::instance().record(w2->id(), TraceEvent::kDepositRight, frame);
  w2->deposit_ambient(&frame->right_views);
  if (frame->arrivals.fetch_add(1, std::memory_order_acq_rel) == 1) {
    // The victim parked in the meantime and we arrived last: both deposits
    // exist and our ambient is empty. Reinstall the victim's (left) views,
    // merge our own deposit back on the right, and resume the continuation.
    w2->install_deposit(&frame->left_views);
    w2->merge_deposit_right(&frame->right_views);
    ++w2->stats_[StatCounter::kJoiningSteals];
    Tracer::instance().record(w2->id(), TraceEvent::kResumeByThief, frame);
    w2->pending_recycle_ = w2->current_fiber_;
    w2->current_fiber_ = frame->parked_fiber;
    cilkm_ctx_switch(&self->ctx, &frame->parked);
  } else {
    // First arriver: the victim will resume the continuation.
    w2->pending_recycle_ = w2->current_fiber_;
    w2->current_fiber_ = nullptr;
    cilkm_ctx_switch(&self->ctx, &w2->sched_ctx_);
  }
  __builtin_unreachable();
}

void Worker::launch(SpawnFrame* frame_or_null_root) {
  Fiber* fiber = StackPool::instance().acquire();
  Tracer::instance().record(id_, TraceEvent::kLaunch, frame_or_null_root);
  ++stats_[StatCounter::kFibersAllocated];
  launch_frame_ = frame_or_null_root;
  current_fiber_ = fiber;
  cilkm_ctx_start(&sched_ctx_, fiber->stack_top, &fiber_main, fiber);
  // Control returns here when the fiber parks or finishes.
}

void Worker::join_slow(SpawnFrame* frame) {
  Worker* w = Worker::current();
  if (frame->arrivals.load(std::memory_order_acquire) == 1) {
    // The thief has already deposited and left: merge its views on the
    // right of ours and carry on without parking.
    w->merge_deposit_right(&frame->right_views);
    return;
  }
  // Park: transfer our views (serially earlier than the thief's) into the
  // frame, suspend this fiber, and let the scheduler announce our arrival
  // once the context is fully saved.
  Tracer::instance().record(w->id(), TraceEvent::kDepositLeft, frame);
  w->deposit_ambient(&frame->left_views);
  Tracer::instance().record(w->id(), TraceEvent::kPark, frame);
  frame->parked_fiber = w->current_fiber_;
  w->pending_park_ = frame;
  cilkm_ctx_switch(&frame->parked, &w->sched_ctx_);
  // Resumed by the last arriver — possibly on a different worker.
  Worker::current()->drain_pending();
}

void Worker::scheduler_loop() {
  const bool is_bootstrap = (id_ == 0);
  if (is_bootstrap) launch(nullptr);  // run the root task

  while (true) {
    drain_pending();
    if (pending_park_ != nullptr) {
      SpawnFrame* frame = pending_park_;
      pending_park_ = nullptr;
      if (frame->arrivals.fetch_add(1, std::memory_order_acq_rel) == 1) {
        // The thief finished in the meantime: both deposits exist. Take our
        // own views back, merge the thief's on the right, and resume the
        // continuation ourselves.
        install_deposit(&frame->left_views);
        merge_deposit_right(&frame->right_views);
        Tracer::instance().record(id_, TraceEvent::kResumeSelf, frame);
        current_fiber_ = frame->parked_fiber;
        cilkm_ctx_switch(&sched_ctx_, &frame->parked);
        continue;
      }
      // We arrived first; the thief will resume the continuation.
    }
    if (sched_->done_.load(std::memory_order_acquire)) break;

    CILKM_DCHECK(ambient_empty(), "stealing with non-empty ambient views");
    SpawnFrame* frame = deque_.take_any();
    if (frame == nullptr) {
      Worker* victim = sched_->random_victim(this);
      if (victim != nullptr) frame = victim->deque_.steal();
    }
    if (frame != nullptr) {
      ++stats_[StatCounter::kSteals];
      Tracer::instance().record(id_, TraceEvent::kSteal, frame);
      frame->stolen.store(true, std::memory_order_relaxed);
      launch(frame);
      continue;
    }
    std::this_thread::yield();
  }
}

}  // namespace cilkm::rt
