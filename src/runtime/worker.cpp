#include "runtime/worker.hpp"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "chaos/chaos.hpp"
#include "obs/profiler.hpp"
#include "runtime/sanitizer.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/trace.hpp"
#include "topo/topology.hpp"
#include "util/assert.hpp"
#include "util/timing.hpp"

namespace cilkm::rt {

thread_local Worker* tls_worker = nullptr;

Worker::Worker(Scheduler* sched, unsigned id) : id_(id), sched_(sched) {
  // 0 = "half": take ceil(avail/2) up to the deque's transaction cap.
  const unsigned batch = sched->options().steal_batch;
  steal_batch_limit_ =
      batch == 0 ? Deque::kMaxStealBatch : std::min(batch, Deque::kMaxStealBatch);
}

Worker::~Worker() {
  // Hand cached fibers back to the node shards; the pool (and its trim
  // policy) outlives any one worker.
  StackPool::instance().flush(fiber_cache_);
}

// ---------------------------------------------------------------------------
// Scheduling: fibers, parking, stealing. All view bookkeeping is delegated
// to views_ (the ViewStoreSet); this file only sequences the join protocol.
// ---------------------------------------------------------------------------

void Worker::merge_left(ViewSetDeposit* in) {
  // Merges allocate (monoid combines, table growth) inside the join
  // protocol, outside any SpawnFrame::eptr catch: injected allocator faults
  // are suppressed here, injected protocol delays are not.
  chaos::SuppressFaults suppress;
  chaos::maybe_delay(chaos::Site::kMergeDelay);
  Tracer::instance().record(id_, TraceEvent::kMerge, in);
  views_.merge_deposit_left(in);
}

void Worker::merge_right(ViewSetDeposit* in) {
  chaos::SuppressFaults suppress;
  chaos::maybe_delay(chaos::Site::kMergeDelay);
  Tracer::instance().record(id_, TraceEvent::kMerge, in);
  views_.merge_deposit_right(in);
}

void Worker::drain_pending() {
  if (pending_recycle_ != nullptr) {
    StackPool::instance().release(pending_recycle_, &fiber_cache_);
    pending_recycle_ = nullptr;
  }
}

/// Trampoline for every fiber: runs either the root task or a stolen branch,
/// then performs the thief side of the join protocol. Never returns.
void fiber_main(void* arg) {
  auto* self = static_cast<Fiber*>(arg);
  Worker* w = Worker::current();
  w->drain_pending();
  SpawnFrame* frame = w->launch_frame_;
  w->launch_frame_ = nullptr;

  const bool prof = obs::profiler_enabled();
  if (frame == nullptr) {
    // Root task: every run() starts from the root pedigree, so pedigrees
    // (and DPRNG streams) are reproducible per run, not per pool lifetime.
    current_pedigree() = PedigreeState{};
    if (prof) {
      // The root strand opens the run's outermost subcomputation; its final
      // combined state IS the run's work/span/burden.
      obs::ProfileState& ps = obs::current_profile();
      ps = {};
      obs::strand_begin(ps);
    }
    Scheduler* sched = w->scheduler();
    try {
      sched->root_fn_();
    } catch (...) {
      sched->root_eptr_ = std::current_exception();
    }
    Worker* w2 = Worker::current();  // the root may have migrated
    if (prof) {
      obs::ProfileState& ps = obs::current_profile();  // re-fetch: migration
      obs::strand_end(ps);
      obs::Profiler::instance().record_run(ps);
    }
    w2->views().collapse_into_leftmosts();
    w2->pending_recycle_ = w2->current_fiber_;
    w2->current_fiber_ = nullptr;
    Tracer::instance().record(w2->id(), TraceEvent::kRootDone, nullptr);
    w2->scheduler()->done_.store(true, std::memory_order_release);
    // Idle workers may be parked on the lot; they must all observe the done
    // flag to quiesce the run.
    w2->stats_[StatCounter::kWakes] += w2->scheduler()->parking_.wake_all();
    tsan::switch_to(w2->sched_tsan_);
    cilkm_ctx_switch(&self->ctx, &w2->sched_ctx_);
    __builtin_unreachable();
  }

  // A promoted frame resumes the continuation strand: rank ped_rank + 1
  // under the spawn-time prefix, exactly where the victim's fast path would
  // have resumed it. Seating this thread-local here covers thieves AND
  // self-pops (both launch through fiber_main).
  current_pedigree() = {frame->ped_parent, frame->ped_rank + 1};
  if (prof) {
    // The stolen branch is a fresh subcomputation; seed its burden with the
    // steal latency that delivered this frame (0 for a self-pop), so the
    // scheduling cost of getting here is charged to this path.
    obs::ProfileState& ps = obs::current_profile();
    ps = {};
    ps.burden = w->launch_burden_ns_;
    obs::strand_begin(ps);
  }
  try {
    frame->invoke_b(frame);
  } catch (...) {
    frame->eptr = std::current_exception();
  }
  Worker* w2 = Worker::current();
  if (prof) {
    // Publish b's totals in the frame BEFORE any arrival announcement: the
    // release fetch_add below (or the victim's acquire load of arrivals)
    // makes them visible to whoever resumes the continuation.
    obs::ProfileState& ps = obs::current_profile();  // re-fetch: migration
    obs::strand_end(ps);
    frame->prof_work = ps.work;
    frame->prof_span = ps.span;
    frame->prof_burden = ps.burden;
  }
  if (frame->arrivals.load(std::memory_order_acquire) == 1) {
    // The victim has already parked (its arrival is announced only after
    // its deposit and context save are complete). Merge its serially
    // earlier views on the left of ours and perform the joining steal —
    // resume the parked continuation on this worker, no deposit needed.
    if (prof) {
      // Hypermerge burden on the thief path. The continuation resumes on
      // THIS thread right below, so the post-publish store is still ordered
      // before its read of prof_burden.
      const std::uint64_t t0 = now_ns();
      w2->merge_left(&frame->left_views);
      frame->prof_burden += now_ns() - t0;
    } else {
      w2->merge_left(&frame->left_views);
    }
    ++w2->stats_[StatCounter::kJoiningSteals];
    Tracer::instance().record(w2->id(), TraceEvent::kResumeByThief, frame);
    w2->pending_recycle_ = w2->current_fiber_;
    w2->current_fiber_ = frame->parked_fiber;
    tsan::switch_to(frame->parked_fiber->tsan_fiber);
    cilkm_ctx_switch(&self->ctx, &frame->parked);
    __builtin_unreachable();
  }
  // Deposit our views on the right, THEN announce the arrival: the other
  // side must never observe a half-built deposit.
  Tracer::instance().record(w2->id(), TraceEvent::kDepositRight, frame);
  {
    // Scoped (not function-wide) suppression: this fiber never returns, so
    // an open SuppressFaults across a context switch would leak the
    // thread-local count and mute injection on this worker forever.
    chaos::SuppressFaults suppress;
    chaos::maybe_delay(chaos::Site::kDepositDelay);
    if (prof) {
      // View-transferal burden, charged before the arrival announcement so
      // the victim's acquire observes the final value.
      const std::uint64_t t0 = now_ns();
      w2->views().deposit_ambient(&frame->right_views);
      frame->prof_burden += now_ns() - t0;
    } else {
      w2->views().deposit_ambient(&frame->right_views);
    }
  }
  if (frame->arrivals.fetch_add(1, std::memory_order_acq_rel) == 1) {
    // The victim parked in the meantime and we arrived last: both deposits
    // exist and our ambient is empty. Reinstall the victim's (left) views,
    // merge our own deposit back on the right, and resume the continuation.
    {
      chaos::SuppressFaults suppress;
      chaos::maybe_delay(chaos::Site::kInstallDelay);
      if (prof) {
        // Same-thread resume below, so this post-fetch_add burden store is
        // still ordered before the continuation's read.
        const std::uint64_t t0 = now_ns();
        w2->views().install_deposit(&frame->left_views);
        w2->merge_right(&frame->right_views);
        frame->prof_burden += now_ns() - t0;
      } else {
        w2->views().install_deposit(&frame->left_views);
        w2->merge_right(&frame->right_views);
      }
    }
    ++w2->stats_[StatCounter::kJoiningSteals];
    Tracer::instance().record(w2->id(), TraceEvent::kResumeByThief, frame);
    w2->pending_recycle_ = w2->current_fiber_;
    w2->current_fiber_ = frame->parked_fiber;
    tsan::switch_to(frame->parked_fiber->tsan_fiber);
    cilkm_ctx_switch(&self->ctx, &frame->parked);
  } else {
    // First arriver: the victim will resume the continuation.
    w2->pending_recycle_ = w2->current_fiber_;
    w2->current_fiber_ = nullptr;
    tsan::switch_to(w2->sched_tsan_);
    cilkm_ctx_switch(&self->ctx, &w2->sched_ctx_);
  }
  __builtin_unreachable();
}

void Worker::launch(SpawnFrame* frame_or_null_root) {
  progress_.fetch_add(1, std::memory_order_relaxed);
  Tracer::instance().record(id_, TraceEvent::kLaunch, frame_or_null_root);
  Fiber* fiber = nullptr;
  // The fiber consult is keyed on the frame's pedigree SNAPSHOT, not this
  // thread's pedigree slot: on the scheduler context the slot may reference
  // chain nodes on stacks that are already recycled, and the snapshot is
  // what makes the decision schedule-independent (the frame's identity,
  // not who launches it).
  const PedigreeState frame_ped =
      frame_or_null_root != nullptr
          ? PedigreeState{frame_or_null_root->ped_parent,
                          frame_or_null_root->ped_rank}
          : PedigreeState{};
  if (!chaos::should_fail(chaos::Site::kFiberAcquire, frame_ped)) {
    // The fiber-header allocation goes through the internal allocator;
    // suppress injected refill faults for it (a throw here would escape
    // into the scheduler loop). Real exhaustion returns nullptr instead.
    chaos::SuppressFaults suppress;
    fiber = StackPool::instance().acquire(&fiber_cache_);
  }
  if (fiber == nullptr) {
    // Out of fiber stacks (or an injected fault said so): run the frame on
    // this OS thread's own stack instead of aborting.
    ++stats_[StatCounter::kFiberFallbacks];
    run_degraded(frame_or_null_root);
    return;
  }
  ++stats_[StatCounter::kFibersAllocated];
  launch_frame_ = frame_or_null_root;
  current_fiber_ = fiber;
  tsan::switch_to(fiber->tsan_fiber);
  cilkm_ctx_start(&sched_ctx_, fiber->stack_top, &fiber_main, fiber);
  // Control returns here when the fiber parks or finishes.
}

/// The fiber-less twin of fiber_main: same pedigree seating, same profiler
/// publication, same join protocol — but executed as an ordinary call on
/// the scheduler stack, with serial_mode_ forcing every nested fork2join
/// onto its serial-inline path so nothing below can push, park, or migrate.
/// The two resume branches context-switch into the parked continuation
/// exactly as the scheduler loop's kResumeSelf path does; control returns
/// here when some fiber on this thread next yields to the scheduler
/// context, and the loop's drain_pending picks up whatever that fiber left.
void Worker::run_degraded(SpawnFrame* frame) {
  serial_mode_ = true;
  const bool prof = obs::profiler_enabled();
  if (frame == nullptr) {
    // Degraded root: the entire run executes serially on this thread.
    current_pedigree() = PedigreeState{};
    if (prof) {
      obs::ProfileState& ps = obs::current_profile();
      ps = {};
      obs::strand_begin(ps);
    }
    try {
      sched_->root_fn_();
    } catch (...) {
      sched_->root_eptr_ = std::current_exception();
    }
    serial_mode_ = false;
    if (prof) {
      obs::ProfileState& ps = obs::current_profile();
      obs::strand_end(ps);
      obs::Profiler::instance().record_run(ps);
    }
    views_.collapse_into_leftmosts();
    Tracer::instance().record(id_, TraceEvent::kRootDone, nullptr);
    sched_->done_.store(true, std::memory_order_release);
    stats_[StatCounter::kWakes] += sched_->parking_.wake_all();
    return;
  }
  current_pedigree() = {frame->ped_parent, frame->ped_rank + 1};
  if (prof) {
    obs::ProfileState& ps = obs::current_profile();
    ps = {};
    ps.burden = launch_burden_ns_;
    obs::strand_begin(ps);
  }
  try {
    frame->invoke_b(frame);
  } catch (...) {
    frame->eptr = std::current_exception();
  }
  serial_mode_ = false;
  if (prof) {
    obs::ProfileState& ps = obs::current_profile();
    obs::strand_end(ps);
    frame->prof_work = ps.work;
    frame->prof_span = ps.span;
    frame->prof_burden = ps.burden;
  }
  if (frame->arrivals.load(std::memory_order_acquire) == 1) {
    // Victim already parked: merge its views left of ours and perform the
    // joining steal (merge_left suppresses faults and takes the merge-delay
    // consult internally).
    if (prof) {
      const std::uint64_t t0 = now_ns();
      merge_left(&frame->left_views);
      frame->prof_burden += now_ns() - t0;
    } else {
      merge_left(&frame->left_views);
    }
    ++stats_[StatCounter::kJoiningSteals];
    Tracer::instance().record(id_, TraceEvent::kResumeByThief, frame);
    current_fiber_ = frame->parked_fiber;
    tsan::switch_to(frame->parked_fiber->tsan_fiber);
    cilkm_ctx_switch(&sched_ctx_, &frame->parked);
    return;
  }
  Tracer::instance().record(id_, TraceEvent::kDepositRight, frame);
  {
    chaos::SuppressFaults suppress;
    chaos::maybe_delay(chaos::Site::kDepositDelay);
    if (prof) {
      const std::uint64_t t0 = now_ns();
      views_.deposit_ambient(&frame->right_views);
      frame->prof_burden += now_ns() - t0;
    } else {
      views_.deposit_ambient(&frame->right_views);
    }
  }
  if (frame->arrivals.fetch_add(1, std::memory_order_acq_rel) == 1) {
    {
      chaos::SuppressFaults suppress;
      chaos::maybe_delay(chaos::Site::kInstallDelay);
      if (prof) {
        const std::uint64_t t0 = now_ns();
        views_.install_deposit(&frame->left_views);
        merge_right(&frame->right_views);
        frame->prof_burden += now_ns() - t0;
      } else {
        views_.install_deposit(&frame->left_views);
        merge_right(&frame->right_views);
      }
    }
    ++stats_[StatCounter::kJoiningSteals];
    Tracer::instance().record(id_, TraceEvent::kResumeByThief, frame);
    current_fiber_ = frame->parked_fiber;
    tsan::switch_to(frame->parked_fiber->tsan_fiber);
    cilkm_ctx_switch(&sched_ctx_, &frame->parked);
    return;
  }
  // First arriver: the victim resumes the continuation; back to the loop.
}

void Worker::join_slow(SpawnFrame* frame) {
  Worker* w = Worker::current();
  const bool prof = obs::profiler_enabled();
  if (frame->arrivals.load(std::memory_order_acquire) == 1) {
    // The thief has already deposited and left: merge its views on the
    // right of ours and carry on without parking.
    if (prof) {
      // Hypermerge burden on the victim path; the caller (fork2join's slow
      // path, same thread) reads prof_burden_left right after we return.
      const std::uint64_t t0 = now_ns();
      w->merge_right(&frame->right_views);
      frame->prof_burden_left += now_ns() - t0;
    } else {
      w->merge_right(&frame->right_views);
    }
    return;
  }
  // Park: transfer our views (serially earlier than the thief's) into the
  // frame, suspend this fiber, and let the scheduler announce our arrival
  // once the context is fully saved.
  Tracer::instance().record(w->id(), TraceEvent::kDepositLeft, frame);
  {
    chaos::SuppressFaults suppress;
    chaos::maybe_delay(chaos::Site::kDepositDelay);
    if (prof) {
      // View-transferal burden on the victim path, written before the park;
      // the arrival announcement (scheduler loop, release fetch_add) orders
      // it before a thief-side resume reads it.
      const std::uint64_t t0 = now_ns();
      w->views().deposit_ambient(&frame->left_views);
      frame->prof_burden_left += now_ns() - t0;
    } else {
      w->views().deposit_ambient(&frame->left_views);
    }
  }
  Tracer::instance().record(w->id(), TraceEvent::kPark, frame);
  frame->parked_fiber = w->current_fiber_;
  w->pending_park_ = frame;
  tsan::switch_to(w->sched_tsan_);
  cilkm_ctx_switch(&frame->parked, &w->sched_ctx_);
  // Resumed by the last arriver — possibly on a different worker.
  Worker::current()->drain_pending();
}

SpawnFrame* Worker::try_steal_round() {
  const unsigned n = sched_->num_workers();
  if (n <= 1) return nullptr;
  // One deduplicated tour: every other worker probed at most once, nearest
  // proximity tiers first (shuffled within tiers; see build_victim_round).
  // Capped so wide oversubscribed pools still re-check the done flag
  // promptly.
  sched_->build_victim_round(id_, &round_);
  const auto attempts =
      std::min<std::size_t>(round_.size(), Scheduler::kMaxStealProbes);
  for (std::size_t a = 0; a < attempts; ++a) {
    const unsigned victim_id = round_[a];
    ++stats_[StatCounter::kStealAttempts];
    // Timestamp per attempt, not per round: the per-tier latency sample
    // must cover only the successful theft, or failed probes of other
    // (possibly nearer) victims and round construction would be charged
    // to the winning victim's tier and skew tier-vs-tier comparisons.
    const std::uint64_t attempt_start = now_ns();
    const unsigned got = sched_->workers_[victim_id]->deque_.steal_batch(
        steal_buf_, steal_batch_limit_);
    if (got > 0) {
      // Tier 0/1 (same core or package) is a cache-near theft; tier 2
      // crossed a package or NUMA boundary.
      const std::uint8_t tier = sched_->victim_tier(id_, victim_id);
      const bool local = tier < static_cast<std::uint8_t>(
                                    topo::Topology::Proximity::kRemote);
      ++stats_[local ? StatCounter::kLocalSteals : StatCounter::kRemoteSteals];
      stats_[StatCounter::kStolenFrames] += got;
      const std::uint64_t steal_lat = now_ns() - attempt_start;
      stats_.record_steal(tier, steal_lat);
      launch_burden_ns_ = steal_lat;  // burden seed if this frame launches
      // Injected delay between claiming the frames and publishing /
      // launching them — the window a preempted thief would leave the
      // protocol in. Keyed on the promoted frame's pedigree snapshot (this
      // thread's pedigree slot is scheduler-context here).
      chaos::maybe_delay(chaos::Site::kStealDelay,
                         PedigreeState{steal_buf_[0]->ped_parent,
                                       steal_buf_[0]->ped_rank});
      if (got > 1) {
        // Steal-half tail: our deque is empty (we only steal when it is),
        // so a bulk push of the younger frames oldest-first preserves the
        // depth order thieves and our own pops rely on. The push is
        // wake-suppressed; instead ONE ParkingLot call wakes up to got-1
        // nearest sleepers to fan the new work out without got-1 serial
        // wake chains.
        deque_.push_bulk(steal_buf_ + 1, got - 1);
        const std::uint32_t woken =
            sched_->parking_.wake(got - 1, sched_->victim_tier_[id_].data());
        stats_[StatCounter::kWakes] += woken;
        if (woken > 1) stats_[StatCounter::kBatchWakes] += woken - 1;
      }
      return steal_buf_[0];  // promote the oldest stolen frame
    }
    cpu_relax();
  }
  return nullptr;
}

void Worker::park_idle(unsigned episode_parks) {
  ParkingLot& lot = sched_->parking_;
  const std::uint32_t ticket = lot.prepare_park(id_);
  // Registered as a sleeper — re-check everything a producer could have
  // published before it saw us: the done flag and every deque. Publications
  // after this point are guaranteed to observe the registration and wake.
  if (sched_->done_.load(std::memory_order_acquire) ||
      sched_->work_available()) {
    // A producer may have targeted us already; cancel forwards its wake
    // credit to the next sleeper, and those forwards count as wake-ups we
    // delivered.
    stats_[StatCounter::kWakes] += lot.cancel_park(id_);
    return;
  }
  // kParks counts idle EPISODES, not poll cycles: re-parking after a
  // backstop expiry (episode_parks > 1) is the same episode.
  if (episode_parks == 1) ++stats_[StatCounter::kParks];
  // The backstop bounds the damage of any missed wake-up; in correct
  // operation only a wake ends the wait. It escalates exponentially
  // (2ms → 64ms) across one episode so long-idle workers converge to a
  // handful of spurious wake-ups per second instead of a 500 Hz poll.
  const auto backstop =
      std::chrono::milliseconds(2L << std::min(episode_parks - 1, 5u));
  lot.park(id_, ticket, backstop);
}

void Worker::scheduler_loop() {
  // Record this thread's own TSan identity so fibers can switch back to the
  // scheduler stack. The pool thread persists across runs, so this is
  // idempotent after the first run.
  sched_tsan_ = tsan::current_fiber();
  const bool is_bootstrap = (id_ == 0);
  if (is_bootstrap) launch(nullptr);  // run the root task

  // Exponential idle backoff: pause-spin rounds, then yields, then parking.
  constexpr unsigned kSpinRounds = 48;
  constexpr unsigned kYieldRounds = 8;
  unsigned idle_rounds = 0;

  while (true) {
    drain_pending();
    if (pending_park_ != nullptr) {
      SpawnFrame* frame = pending_park_;
      pending_park_ = nullptr;
      if (frame->arrivals.fetch_add(1, std::memory_order_acq_rel) == 1) {
        // The thief finished in the meantime: both deposits exist. Take our
        // own views back, merge the thief's on the right, and resume the
        // continuation ourselves.
        {
          chaos::SuppressFaults suppress;
          chaos::maybe_delay(chaos::Site::kInstallDelay);
          if (obs::profiler_enabled()) {
            // Reinstall + hypermerge burden on the victim path; the
            // continuation resumes on this thread right below.
            const std::uint64_t t0 = now_ns();
            views_.install_deposit(&frame->left_views);
            merge_right(&frame->right_views);
            frame->prof_burden_left += now_ns() - t0;
          } else {
            views_.install_deposit(&frame->left_views);
            merge_right(&frame->right_views);
          }
        }
        progress_.fetch_add(1, std::memory_order_relaxed);
        Tracer::instance().record(id_, TraceEvent::kResumeSelf, frame);
        current_fiber_ = frame->parked_fiber;
        tsan::switch_to(frame->parked_fiber->tsan_fiber);
        cilkm_ctx_switch(&sched_ctx_, &frame->parked);
        // The resumed continuation ran (and may have spawned): restart the
        // idle backoff from the spin phase rather than parking immediately.
        idle_rounds = 0;
        continue;
      }
      // We arrived first; the thief will resume the continuation.
    }
    if (sched_->done_.load(std::memory_order_acquire)) break;

    CILKM_DCHECK(ambient_empty(), "stealing with non-empty ambient views");
    SpawnFrame* frame = deque_.take_any();
    if (frame != nullptr) {
      // Promoting a frame from our own deque is not a theft: count and
      // trace it separately so the steal rate reported for the paper's
      // figures (and total_steals()) measures genuine cross-worker traffic.
      ++stats_[StatCounter::kSelfPops];
      launch_burden_ns_ = 0;  // no steal latency to burden a self-pop with
      Tracer::instance().record(id_, TraceEvent::kSelfPop, frame);
    } else {
      frame = try_steal_round();
      if (frame != nullptr) {
        ++stats_[StatCounter::kSteals];
        Tracer::instance().record(id_, TraceEvent::kSteal, frame);
      }
    }
    if (frame != nullptr) {
      idle_rounds = 0;
      frame->stolen.store(true, std::memory_order_relaxed);
      launch(frame);
      continue;
    }
    // Nothing runnable anywhere we looked: back off, then park.
    ++idle_rounds;
    if (idle_rounds <= kSpinRounds) {
      for (unsigned i = 0; i < 1u << std::min(idle_rounds / 8, 5u); ++i) {
        cpu_relax();
      }
    } else if (idle_rounds <= kSpinRounds + kYieldRounds) {
      std::this_thread::yield();
    } else {
      park_idle(idle_rounds - kSpinRounds - kYieldRounds);
    }
  }
}

namespace {

/// assert_fail context: which worker died, executing which strand. Uses
/// only async-signal-tolerant pieces (fprintf, a bounded stack array) since
/// the process is already aborting.
void print_assert_context(std::FILE* out) {
  Worker* w = Worker::current();
  if (w == nullptr) {
    std::fprintf(out, "  on an external thread (no worker)\n");
    return;
  }
  std::fprintf(out, "  on worker %u", w->id());
  constexpr unsigned kMaxDepth = 128;
  std::uint64_t ranks[kMaxDepth];
  unsigned depth = 0;
  const PedigreeState& ped = current_pedigree();
  const PedigreeNode* n = ped.parent;
  for (; n != nullptr && depth < kMaxDepth; n = n->parent) {
    ranks[depth++] = n->rank;
  }
  std::fprintf(out, ", pedigree (root->leaf):");
  if (n != nullptr) std::fprintf(out, " ...");  // deeper than the buffer
  for (unsigned i = depth; i-- > 0;) {
    std::fprintf(out, " %llu", static_cast<unsigned long long>(ranks[i]));
  }
  std::fprintf(out, " %llu\n", static_cast<unsigned long long>(ped.rank));
}

}  // namespace

void install_assert_context() noexcept {
  ::cilkm::detail::assert_context_fn = &print_assert_context;
}

}  // namespace cilkm::rt
