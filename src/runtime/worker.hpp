// A worker thread: its deque, its scheduling contexts, and one ViewStoreSet
// holding its private reducer-view state for every mechanism. The
// view-transferal / hypermerge engine itself lives in the views layer
// (views/view_store.hpp); the worker only decides WHEN to deposit, install,
// or merge — the join protocol of paper Sections 3 and 7.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "runtime/deque.hpp"
#include "runtime/frame.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "views/view_store.hpp"

namespace cilkm::rt {

class Scheduler;

/// 1024-byte alignment (cf. the OpenCilk __cilkrts_worker layout): adjacent
/// Worker objects never share a cache line OR an adjacent-line prefetch
/// pair, so hardware prefetchers on one worker's hot line cannot induce
/// false sharing with its neighbour. Workers are heap-allocated (C++17
/// aligned operator new honours this).
class alignas(1024) Worker {
 public:
  Worker(Scheduler* sched, unsigned id);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// The worker the calling OS thread belongs to, or nullptr outside runs.
  static Worker* current() noexcept;

  // ---- identity / scheduling ----
  unsigned id() const noexcept { return id_; }
  Scheduler* scheduler() const noexcept { return sched_; }
  WorkerStats& stats() noexcept { return stats_; }
  Deque& deque() noexcept { return deque_; }

  /// True while this worker runs a degraded (fiber-less) frame on its
  /// scheduler stack: fork2join then executes children serially in place —
  /// nothing is pushed, so the frame cannot park and the OS-thread stack
  /// unwinds synchronously (see run_degraded).
  bool serial_spawns() const noexcept { return serial_mode_; }

  /// Monotonic scheduling-progress tick (launches, degraded runs, join
  /// resumptions), read across threads by the run watchdog: a window in
  /// which no worker's tick advances and the run has not quiesced is a
  /// stalled epoch.
  std::uint64_t progress() const noexcept {
    return progress_.load(std::memory_order_relaxed);
  }

  /// Main loop for one run: bootstraps the root (worker 0), then promotes
  /// own-deque frames and steals until the run's done flag rises, parking on
  /// the scheduler's idle gate (after a spin→yield backoff) while no work
  /// exists anywhere.
  void scheduler_loop();

  /// Slow join path for fork2join when the deferred branch was stolen.
  /// May return on a *different* worker (the continuation migrates).
  static void join_slow(SpawnFrame* frame);

  // ---- reducer-view state (all mechanisms) ----
  views::ViewStoreSet& views() noexcept { return views_; }
  const views::ViewStoreSet& views() const noexcept { return views_; }

  /// Base of the emulated TLMM region (installed into TLS by the scheduler).
  std::byte* region_base() noexcept { return views_.spa().base(); }

  /// True iff this worker holds no live view in any store.
  bool ambient_empty() const noexcept { return views_.empty(); }

 private:
  friend class Scheduler;
  friend void fiber_main(void* arg);

  void launch(SpawnFrame* frame_or_null_root);

  /// Graceful-degradation path when no fiber stack could be acquired (real
  /// mmap exhaustion after StackPool's backoff, or an injected chaos
  /// fault): run the frame (or root) to completion on the scheduler's own
  /// OS-thread stack with serial_spawns() forcing nested fork2joins serial,
  /// then perform this frame's join protocol exactly as fiber_main would.
  void run_degraded(SpawnFrame* frame_or_null_root);

  void drain_pending();

  /// One steal round: a deduplicated tour over the other workers — in
  /// proximity order under locality stealing (Scheduler::build_victim_round)
  /// — with pause backoff between attempts. Every attempt (hit or miss)
  /// bumps kStealAttempts; a hit is classified into kLocalSteals or
  /// kRemoteSteals by the victim's proximity tier.
  SpawnFrame* try_steal_round();

  /// Two-phase park on the scheduler's idle gate: register, re-check (done
  /// flag, any stealable work), then block. Returns after a wake-up or the
  /// backstop; the caller re-runs the full loop either way. `episode_parks`
  /// is 1 on the first park of an idle episode (counted in kParks) and grows
  /// with each consecutive re-park, escalating the backstop.
  void park_idle(unsigned episode_parks);

  // Trace-emitting wrappers around the views-layer merges, so every merge
  // in the join protocol is recorded exactly once (the views layer knows
  // nothing about workers or tracing).
  void merge_left(ViewSetDeposit* in);
  void merge_right(ViewSetDeposit* in);

  // Hot/cold member layout (see README "Steal path"). First line: identity
  // and the fiber-switch state touched on every launch/park/resume.
  unsigned id_;
  Scheduler* sched_;
  Context sched_ctx_;
  void* sched_tsan_ = nullptr;  // TSan state of the scheduler-loop stack
  Fiber* current_fiber_ = nullptr;
  Fiber* pending_recycle_ = nullptr;
  LocalFiberCache fiber_cache_;  // lock-free front of the node-sharded pool
  SpawnFrame* pending_park_ = nullptr;
  SpawnFrame* launch_frame_ = nullptr;
  bool serial_mode_ = false;  // degraded frame in flight (see serial_spawns)

  /// Written (relaxed) only by this worker, read by the watchdog thread.
  std::atomic<std::uint64_t> progress_{0};

  /// Burden seed for the next launch (profiling only): the steal latency
  /// that delivered the frame about to be launched, or 0 for a self-pop.
  /// fiber_main charges it to the stolen branch's burdened span.
  std::uint64_t launch_burden_ns_ = 0;

  // Steal-side state, on its own line(s): touched only while idle-stealing,
  // so steal rounds don't bounce the fiber-switch line above.
  alignas(kCacheLineSize) Xoshiro256 rng_;
  std::vector<unsigned> round_;  // scratch victim sequence, reused per round
  unsigned steal_batch_limit_;   // per-theft frame cap (from SchedulerOptions)
  SpawnFrame* steal_buf_[Deque::kMaxStealBatch];  // steal_batch scratch

  // Stats on their own line: bumped from both the owner path (self-pops,
  // view work) and the steal path, but never by other threads.
  alignas(kCacheLineSize) WorkerStats stats_;

  views::ViewStoreSet views_{&stats_};

  Deque deque_;  // large (512 KiB); Worker objects are heap-allocated

  static_assert(alignof(Deque) == kCacheLineSize,
                "deque hot lines rely on cache-line alignment");
};

static_assert(alignof(Worker) == 1024,
              "Worker must be 1024-byte aligned against prefetcher-induced "
              "false sharing (cf. the __cilkrts_worker exemplar)");

/// Install the worker-aware assert_fail context hook (worker id + the
/// failing strand's pedigree). Idempotent; Scheduler's constructor calls it
/// so every runtime-linked binary gets diagnosable aborts.
void install_assert_context() noexcept;

/// TLS pointer to the calling thread's worker.
extern thread_local Worker* tls_worker;

inline Worker* Worker::current() noexcept { return tls_worker; }

}  // namespace cilkm::rt
