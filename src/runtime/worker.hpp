// A worker thread: its deque, its private view state for both reducer
// mechanisms (the emulated-TLMM SPA region and the hypermap), its scheduling
// contexts, and the view-transferal / hypermerge engine (paper Sections 3
// and 7).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/deque.hpp"
#include "runtime/frame.hpp"
#include "spa/page_pool.hpp"
#include "spa/slot_alloc.hpp"
#include "tlmm/region.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cilkm::rt {

class Scheduler;

class Worker {
 public:
  Worker(Scheduler* sched, unsigned id);
  ~Worker();

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// The worker the calling OS thread belongs to, or nullptr outside runs.
  static Worker* current() noexcept;

  // ---- identity / scheduling ----
  unsigned id() const noexcept { return id_; }
  Scheduler* scheduler() const noexcept { return sched_; }
  WorkerStats& stats() noexcept { return stats_; }
  Deque& deque() noexcept { return deque_; }

  /// Main loop: bootstraps the root (worker 0), then steals until done.
  void scheduler_loop();

  /// Slow join path for fork2join when the deferred branch was stolen.
  /// May return on a *different* worker (the continuation migrates).
  static void join_slow(SpawnFrame* frame);

  // ---- memory-mapped reducer (SPA) state ----
  std::byte* region_base() noexcept { return region_.base(); }
  spa::ViewSlot* slot_at(std::uint64_t offset) noexcept {
    return reinterpret_cast<spa::ViewSlot*>(region_.base() + offset);
  }
  spa::SpaPage* page_at(std::uint32_t page) noexcept {
    return reinterpret_cast<spa::SpaPage*>(region_.base() +
                                           std::size_t{page} * spa::kPageBytes);
  }
  spa::LocalSlotCache& slot_cache() noexcept { return slot_cache_; }

  /// Install a freshly created view into the private SPA slot at `offset`
  /// (the reducer lookup miss path and the merge-adopt path).
  void ambient_install_spa(std::uint64_t offset, void* view, const ViewOps* ops);

  /// Remove the private view at `offset` if present (reducer destruction).
  /// Returns the view pointer, or nullptr.
  void* ambient_extract_spa(std::uint64_t offset);

  // ---- hypermap reducer state ----
  hypermap::HyperMap& hmap() noexcept { return hmap_; }

  // ---- view transferal and hypermerge (both mechanisms) ----
  void deposit_ambient(ViewSetDeposit* out);
  void install_deposit(ViewSetDeposit* in);      // requires empty ambient
  void merge_deposit_left(ViewSetDeposit* in);   // deposit ⊗ ambient
  void merge_deposit_right(ViewSetDeposit* in);  // ambient ⊗ deposit
  void collapse_ambient_into_leftmosts();
  bool ambient_empty() const noexcept;

 private:
  friend class Scheduler;
  friend void fiber_main(void* arg);

  void launch(SpawnFrame* frame_or_null_root);
  void drain_pending();
  void merge_hmap(hypermap::HyperMap&& deposit, bool deposit_is_left);

  unsigned id_;
  Scheduler* sched_;
  Xoshiro256 rng_;
  WorkerStats stats_;

  tlmm::WorkerRegion region_{spa::kRegionBytes};
  std::vector<std::uint32_t> touched_pages_;
  spa::LocalSlotCache slot_cache_;
  spa::LocalPagePool page_pool_;
  hypermap::HyperMap hmap_;

  Context sched_ctx_;
  Fiber* current_fiber_ = nullptr;
  Fiber* pending_recycle_ = nullptr;
  SpawnFrame* pending_park_ = nullptr;
  SpawnFrame* launch_frame_ = nullptr;

  Deque deque_;  // large (512 KiB); Worker objects are heap-allocated
};

/// TLS pointer to the calling thread's worker.
extern thread_local Worker* tls_worker;

inline Worker* Worker::current() noexcept { return tls_worker; }

}  // namespace cilkm::rt
