// Minimal stackful-coroutine context switching, the substrate for Cilk-M's
// cactus stack: parked join continuations and stolen branches each live on
// their own fiber stack. Hand-written x86-64 System V switch (callee-saved
// GPRs only; vector registers are caller-saved in the ABI, and we neither
// save nor alter mxcsr/x87 control words).
#pragma once

#include <cstdint>

namespace cilkm::rt {

/// Opaque saved execution state: just the stack pointer; everything else
/// lives on the fiber's stack.
struct Context {
  void* sp = nullptr;
};

extern "C" {
/// Save the current context into `save` and resume `resume`.
/// Returns (into `save`'s position) when someone later switches back to it.
void cilkm_ctx_switch(cilkm::rt::Context* save, const cilkm::rt::Context* resume);

/// Save the current context into `save`, then start running `fn(arg)` on the
/// fresh stack whose highest address is `stack_top`. `fn` must never return;
/// it must leave via cilkm_ctx_switch.
void cilkm_ctx_start(cilkm::rt::Context* save, void* stack_top,
                     void (*fn)(void*), void* arg);
}

}  // namespace cilkm::rt
