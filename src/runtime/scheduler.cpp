#include "runtime/scheduler.hpp"

#include <thread>

#include "tlmm/region.hpp"
#include "util/assert.hpp"

namespace cilkm::rt {

Scheduler::Scheduler(unsigned num_workers) {
  CILKM_CHECK(num_workers >= 1, "need at least one worker");
  workers_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(this, i));
  }
}

Scheduler::~Scheduler() = default;

Worker* Scheduler::random_victim(Worker* thief) {
  const unsigned n = num_workers();
  if (n <= 1) return nullptr;
  const auto pick = static_cast<unsigned>(thief->rng_.below(n - 1));
  const unsigned victim = pick >= thief->id() ? pick + 1 : pick;
  return workers_[victim].get();
}

void Scheduler::run(std::function<void()> root) {
  CILKM_CHECK(Worker::current() == nullptr,
              "Scheduler::run may not be called from inside a run");
  root_fn_ = std::move(root);
  root_eptr_ = nullptr;
  done_.store(false, std::memory_order_relaxed);

  std::vector<std::thread> threads;
  threads.reserve(workers_.size());
  for (auto& worker : workers_) {
    threads.emplace_back([w = worker.get()] {
      tls_worker = w;
      tlmm::tls_region_base = w->region_base();
      w->scheduler_loop();
      CILKM_DCHECK(w->ambient_empty(), "worker exits with live ambient views");
      tls_worker = nullptr;
      tlmm::tls_region_base = nullptr;
    });
  }
  for (auto& thread : threads) thread.join();

  root_fn_ = nullptr;
  if (root_eptr_ != nullptr) std::rethrow_exception(root_eptr_);
}

WorkerStats Scheduler::aggregate_stats() const {
  WorkerStats total;
  for (const auto& worker : workers_) total += worker->stats();
  return total;
}

void Scheduler::reset_stats() {
  for (auto& worker : workers_) worker->stats().reset();
}

std::uint64_t Scheduler::total_steals() const {
  return aggregate_stats()[StatCounter::kSteals];
}

void run(unsigned num_workers, std::function<void()> root) {
  Scheduler scheduler(num_workers);
  scheduler.run(std::move(root));
}

}  // namespace cilkm::rt
