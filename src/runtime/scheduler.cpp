#include "runtime/scheduler.hpp"

#include <utility>

#include "tlmm/region.hpp"
#include "util/assert.hpp"

namespace cilkm::rt {

Scheduler::Scheduler(unsigned num_workers) {
  CILKM_CHECK(num_workers >= 1, "need at least one worker");
  workers_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(this, i));
  }
  for (auto& worker : workers_) {
    worker->deque().attach_wake_gate(&idle_gate_,
                                     &worker->stats()[StatCounter::kWakes]);
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    CILKM_CHECK(!running_, "Scheduler destroyed while a run is in flight");
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

Worker* Scheduler::random_victim(Worker* thief) {
  const unsigned n = num_workers();
  if (n <= 1) return nullptr;
  const auto pick = static_cast<unsigned>(thief->rng_.below(n - 1));
  const unsigned victim = pick >= thief->id() ? pick + 1 : pick;
  return workers_[victim].get();
}

bool Scheduler::work_available() const noexcept {
  for (const auto& worker : workers_) {
    if (!worker->deque_.empty()) return true;
  }
  return false;
}

void Scheduler::start_threads_locked() {
  if (!threads_.empty()) return;
  threads_.reserve(workers_.size());
  for (auto& worker : workers_) {
    threads_.emplace_back([this, w = worker.get()] { worker_thread(w); });
  }
}

void Scheduler::warm_up() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  start_threads_locked();
}

/// Persistent body of one pool thread: TLS is installed once for the life of
/// the thread; between runs the thread sleeps on start_cv_ until run() opens
/// a new epoch (or the destructor shuts the pool down).
void Scheduler::worker_thread(Worker* w) {
  tls_worker = w;
  tlmm::tls_region_base = w->region_base();
  std::uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(lifecycle_mu_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || run_epoch_ != seen_epoch; });
      if (shutdown_) break;
      seen_epoch = run_epoch_;
    }
    w->scheduler_loop();
    CILKM_DCHECK(w->ambient_empty(), "worker exits with live ambient views");
    {
      std::lock_guard<std::mutex> lock(lifecycle_mu_);
      if (--active_workers_ == 0) quiesce_cv_.notify_all();
    }
  }
  tls_worker = nullptr;
  tlmm::tls_region_base = nullptr;
}

void Scheduler::run(std::function<void()> root) {
  CILKM_CHECK(Worker::current() == nullptr,
              "Scheduler::run may not be called from inside a run");
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    CILKM_CHECK(!running_, "Scheduler::run is not reentrant");
    running_ = true;
    // Publish the run's inputs before the epoch opens: workers only read
    // them after observing the new epoch under this mutex.
    root_fn_ = std::move(root);
    root_eptr_ = nullptr;
    done_.store(false, std::memory_order_release);
    start_threads_locked();
    active_workers_ = num_workers();
    ++run_epoch_;
  }
  start_cv_.notify_all();
  std::exception_ptr eptr;
  {
    std::unique_lock<std::mutex> lock(lifecycle_mu_);
    quiesce_cv_.wait(lock, [&] { return active_workers_ == 0; });
    running_ = false;
    root_fn_ = nullptr;
    // Take the exception out under the lock: once running_ drops, another
    // external thread may legally begin the next run.
    eptr = std::exchange(root_eptr_, nullptr);
  }
  if (eptr != nullptr) std::rethrow_exception(eptr);
}

WorkerStats Scheduler::aggregate_stats() const {
  WorkerStats total;
  for (const auto& worker : workers_) total += worker->stats();
  return total;
}

void Scheduler::reset_stats() {
  for (auto& worker : workers_) worker->stats().reset();
}

std::uint64_t Scheduler::total_steals() const {
  return aggregate_stats()[StatCounter::kSteals];
}

void run(unsigned num_workers, std::function<void()> root) {
  Scheduler scheduler(num_workers);
  scheduler.run(std::move(root));
}

}  // namespace cilkm::rt
