#include "runtime/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <numeric>
#include <utility>

#include "mem/internal_alloc.hpp"
#include "obs/metrics.hpp"
#include "runtime/trace.hpp"
#include "tlmm/region.hpp"
#include "topo/topology.hpp"
#include "util/assert.hpp"

namespace cilkm::rt {

Scheduler::Scheduler(unsigned num_workers, SchedulerOptions options)
    : options_(options), parking_(num_workers) {
  CILKM_CHECK(num_workers >= 1, "need at least one worker");
  // Every runtime-linked binary gets worker/pedigree context on aborts.
  install_assert_context();
  if (options_.wake_batch < 1) options_.wake_batch = 1;
  if (options_.wake_batch > ParkingLot::kMaxBatch) {
    options_.wake_batch = ParkingLot::kMaxBatch;
  }
  if (options_.steal_batch > Deque::kMaxStealBatch) {
    options_.steal_batch = Deque::kMaxStealBatch;  // 0 ("half") passes through
  }
  workers_.reserve(num_workers);
  for (unsigned i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>(this, i));
  }

  // Placement and proximity structure. The topology is discovered once per
  // process; placement wraps modulo the CPU count when the pool is
  // oversubscribed, so proximity stays meaningful (several workers "share"
  // one CPU's position).
  const topo::Topology& topology = topo::Topology::machine();
  worker_cpu_ = topo::assign_cpus(topology, num_workers, options_.placement);

  victim_tier_.assign(num_workers, std::vector<std::uint8_t>(num_workers, 0));
  victim_order_.assign(num_workers, {});
  for (unsigned thief = 0; thief < num_workers; ++thief) {
    for (unsigned victim = 0; victim < num_workers; ++victim) {
      victim_tier_[thief][victim] = static_cast<std::uint8_t>(
          topology.proximity(worker_cpu_[thief], worker_cpu_[victim]));
    }
    // Proximity-ordered permutation of every other worker; ties keep id
    // order (the per-round shuffle randomizes within tiers).
    std::vector<unsigned>& order = victim_order_[thief];
    order.reserve(num_workers - 1);
    for (unsigned victim = 0; victim < num_workers; ++victim) {
      if (victim != thief) order.push_back(victim);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](unsigned a, unsigned b) {
                       return victim_tier_[thief][a] < victim_tier_[thief][b];
                     });
  }

  for (auto& worker : workers_) {
    worker->deque().attach_wake_gate(
        &parking_, victim_tier_[worker->id()].data(), options_.wake_batch,
        &worker->stats()[StatCounter::kWakes],
        &worker->stats()[StatCounter::kBatchWakes]);
  }
}

Scheduler::~Scheduler() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    CILKM_CHECK(!running_, "Scheduler destroyed while a run is in flight");
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void Scheduler::build_victim_round(unsigned thief, std::vector<unsigned>* out) {
  const std::vector<unsigned>& order = victim_order_[thief];
  out->assign(order.begin(), order.end());
  if (out->size() <= 1) return;
  Xoshiro256& rng = workers_[thief]->rng_;
  const std::vector<std::uint8_t>& tier = victim_tier_[thief];
  // A round probes at most kMaxStealProbes victims, so only that prefix
  // needs randomizing: partial (front-loaded) Fisher–Yates draws each
  // prefix slot uniformly from the remaining candidates without paying for
  // a full shuffle of a wide pool's tail.
  const std::size_t cap =
      std::min<std::size_t>(out->size(), kMaxStealProbes);
  if (options_.locality_steal) {
    // Partial Fisher–Yates within each proximity tier: nearest victims
    // still come first, but the P thieves of one package don't all hammer
    // the same neighbour in the same order.
    std::size_t lo = 0;
    while (lo < cap) {
      std::size_t hi = lo + 1;
      while (hi < out->size() && tier[(*out)[hi]] == tier[(*out)[lo]]) ++hi;
      for (std::size_t i = lo; i < std::min(hi - 1, cap); ++i) {
        std::swap((*out)[i], (*out)[i + static_cast<std::size_t>(
                                            rng.below(hi - i))]);
      }
      lo = hi;
    }
    // Escape hatch: one round in eight leads with a uniformly random victim,
    // so a loaded remote package is still discovered promptly and the
    // whole-machine balance of uniform stealing is preserved.
    if (rng.below(8) == 0) {
      std::swap((*out)[0],
                (*out)[static_cast<std::size_t>(rng.below(out->size()))]);
    }
  } else {
    // Uniform mode: every prefix slot drawn from the whole remainder.
    // Unlike sampling with replacement, one round still probes each victim
    // at most once.
    for (std::size_t i = 0; i < cap && i < out->size() - 1; ++i) {
      std::swap((*out)[i], (*out)[i + static_cast<std::size_t>(
                                          rng.below(out->size() - i))]);
    }
  }
}

bool Scheduler::work_available() const noexcept {
  for (const auto& worker : workers_) {
    if (!worker->deque_.empty()) return true;
  }
  return false;
}

void Scheduler::start_threads_locked() {
  if (!threads_.empty()) return;
  threads_.reserve(workers_.size());
  for (auto& worker : workers_) {
    threads_.emplace_back([this, w = worker.get()] { worker_thread(w); });
  }
}

void Scheduler::warm_up() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  start_threads_locked();
}

/// Persistent body of one pool thread: TLS is installed once for the life of
/// the thread; between runs the thread sleeps on start_cv_ until run() opens
/// a new epoch (or the destructor shuts the pool down).
void Scheduler::worker_thread(Worker* w) {
  if (options_.pin) {
    topo::pin_current_thread(worker_cpu_[w->id()]);  // best-effort
    // Bind this thread's allocator magazine to the pinned CPU's NUMA shard:
    // every batch exchange (views, SPA pages, frames) stays node-local
    // without per-refill CPU queries. Unpinned workers keep deriving the
    // shard from wherever they currently run.
    mem::InternalAlloc::bind_current_thread(worker_cpu_[w->id()]);
  }
  tls_worker = w;
  tlmm::tls_region_base = w->region_base();
  std::uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(lifecycle_mu_);
      start_cv_.wait(lock,
                     [&] { return shutdown_ || run_epoch_ != seen_epoch; });
      if (shutdown_) break;
      seen_epoch = run_epoch_;
    }
    w->scheduler_loop();
    CILKM_DCHECK(w->ambient_empty(), "worker exits with live ambient views");
    {
      std::lock_guard<std::mutex> lock(lifecycle_mu_);
      if (--active_workers_ == 0) quiesce_cv_.notify_all();
    }
  }
  tls_worker = nullptr;
  tlmm::tls_region_base = nullptr;
}

void Scheduler::run(std::function<void()> root) {
  CILKM_CHECK(Worker::current() == nullptr,
              "Scheduler::run may not be called from inside a run");
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    CILKM_CHECK(!running_, "Scheduler::run is not reentrant");
    running_ = true;
    // Publish the run's inputs before the epoch opens: workers only read
    // them after observing the new epoch under this mutex.
    root_fn_ = std::move(root);
    root_eptr_ = nullptr;
    done_.store(false, std::memory_order_release);
    start_threads_locked();
    active_workers_ = num_workers();
    ++run_epoch_;
  }
  start_cv_.notify_all();
  std::exception_ptr eptr;
  {
    std::unique_lock<std::mutex> lock(lifecycle_mu_);
    const auto quiesced = [&] { return active_workers_ == 0; };
    if (options_.watchdog_ms == 0) {
      quiesce_cv_.wait(lock, quiesced);
    } else {
      // Watchdog: while the run is in flight, a full window in which no
      // worker's progress tick advanced is a stalled epoch — dump the
      // observable state and abort rather than hang forever. progress_sum()
      // reads only atomics, so taking it while holding lifecycle_mu_ is
      // safe (workers never touch that mutex mid-run).
      std::uint64_t last = progress_sum();
      while (!quiesce_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.watchdog_ms), quiesced)) {
        const std::uint64_t now = progress_sum();
        if (now == last) {
          dump_stall_diagnostics();
          CILKM_CHECK(false,
                      "run watchdog: no scheduling progress within the stall "
                      "window");
        }
        last = now;
      }
    }
    running_ = false;
    root_fn_ = nullptr;
    // Take the exception out under the lock: once running_ drops, another
    // external thread may legally begin the next run.
    eptr = std::exchange(root_eptr_, nullptr);
  }
  if (eptr != nullptr) std::rethrow_exception(eptr);
}

std::uint64_t Scheduler::progress_sum() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& worker : workers_) sum += worker->progress();
  return sum;
}

void Scheduler::dump_stall_diagnostics() {
  std::fprintf(stderr,
               "cilkm: run watchdog fired (no scheduling progress for %u ms); "
               "dumping state\n",
               options_.watchdog_ms);
  // The pool is NOT quiesced here, so the snapshot's values are racy
  // best-effort reads — acceptable for a post-mortem that precedes abort.
  const obs::MetricsSnapshot snap = obs::capture(this);
  for (const obs::Metric& m : snap.flatten()) {
    std::fprintf(stderr, "  %s = %.17g\n", m.name.c_str(), m.value);
  }
  if (Tracer::instance().enabled()) {
    std::fprintf(stderr, "-- tracer rings --\n");
    Tracer::instance().dump_csv(std::cerr);
  }
  std::fflush(stderr);
}

WorkerStats Scheduler::aggregate_stats() const {
  WorkerStats total;
  for (const auto& worker : workers_) total += worker->stats();
  return total;
}

void Scheduler::reset_stats() {
  for (auto& worker : workers_) worker->stats().reset();
}

std::uint64_t Scheduler::total_steals() const {
  return aggregate_stats()[StatCounter::kSteals];
}

void run(unsigned num_workers, std::function<void()> root) {
  Scheduler scheduler(num_workers);
  scheduler.run(std::move(root));
}

}  // namespace cilkm::rt
