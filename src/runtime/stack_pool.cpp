#include "runtime/stack_pool.hpp"

#include <sys/mman.h>

#include <mutex>
#include <new>

#include "runtime/sanitizer.hpp"
#include "util/assert.hpp"

namespace cilkm::rt {

StackPool& StackPool::instance() {
  static StackPool pool;
  return pool;
}

Fiber* StackPool::allocate_fresh() {
  const std::size_t size = kDefaultStackBytes;
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  CILKM_CHECK(p != MAP_FAILED, "fiber stack mmap failed");
  // Guard page at the low end (stacks grow downward).
  CILKM_CHECK(::mprotect(p, 4096, PROT_NONE) == 0, "guard mprotect failed");
  auto* fiber = new Fiber;
  fiber->alloc_base = static_cast<std::byte*>(p);
  fiber->alloc_size = size;
  fiber->stack_top = fiber->alloc_base + size;
  // TSan state lives (and is recycled) with the stack it shadows.
  fiber->tsan_fiber = tsan::create_fiber();
  return fiber;
}

Fiber* StackPool::acquire() {
  {
    std::lock_guard guard(lock_);
    if (free_list_ != nullptr) {
      Fiber* fiber = free_list_;
      free_list_ = fiber->next;
      fiber->next = nullptr;
      return fiber;
    }
    ++created_;
  }
  return allocate_fresh();
}

void StackPool::release(Fiber* fiber) {
  std::lock_guard guard(lock_);
  fiber->next = free_list_;
  free_list_ = fiber;
}

}  // namespace cilkm::rt
