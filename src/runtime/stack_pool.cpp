#include "runtime/stack_pool.hpp"

#include <sys/mman.h>

#include <chrono>
#include <mutex>
#include <new>
#include <thread>

#include "mem/internal_alloc.hpp"
#include "runtime/sanitizer.hpp"
#include "util/assert.hpp"

namespace cilkm::rt {

StackPool& StackPool::instance() {
  static StackPool pool;
  return pool;
}

StackPool::StackPool(const topo::Topology* topology,
                     std::size_t max_cached_per_node)
    : nodes_(topology != nullptr ? *topology : topo::Topology::machine()),
      shards_(nodes_.num_shards()),
      max_cached_per_node_(max_cached_per_node) {
  // Fiber headers live in the internal allocator; touching it here pins the
  // construction order, so its (function-local static) instance outlives
  // this pool's destructor.
  (void)mem::InternalAlloc::instance();
}

StackPool::~StackPool() {
  for (Shard& s : shards_) {
    while (s.head != nullptr) {
      Fiber* fiber = s.head;
      s.head = fiber->next;
      destroy_fiber(fiber);
    }
  }
}

Fiber* StackPool::allocate_fresh() {
  const std::size_t size = kDefaultStackBytes;
  void* p = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  // Exhaustion (vm.max_map_count, overcommit limits, address space) is a
  // load condition, not a bug: report it as nullptr and let acquire()'s
  // backoff — and ultimately the worker's serial-degradation path — absorb
  // it instead of aborting the process.
  if (p == MAP_FAILED) return nullptr;
  // Guard page at the low end (stacks grow downward).
  if (::mprotect(p, 4096, PROT_NONE) != 0) {
    ::munmap(p, size);
    return nullptr;
  }
  Fiber* fiber = nullptr;
  try {
    fiber = mem::InternalAlloc::instance().create<Fiber>(
        mem::AllocTag::kFiberStacks);
  } catch (const std::bad_alloc&) {
    ::munmap(p, size);
    return nullptr;
  }
  fiber->alloc_base = static_cast<std::byte*>(p);
  fiber->alloc_size = size;
  fiber->stack_top = fiber->alloc_base + size;
  // TSan state lives (and is recycled) with the stack it shadows.
  fiber->tsan_fiber = tsan::create_fiber();
  return fiber;
}

void StackPool::destroy_fiber(Fiber* fiber) {
  tsan::destroy_fiber(fiber->tsan_fiber);
  ::munmap(fiber->alloc_base, fiber->alloc_size);
  // Shard-direct free (no magazine): trims are rare, and the pool's static
  // destructor may run after the calling thread's TLS magazine is gone.
  fiber->~Fiber();
  mem::InternalAlloc::instance().deallocate(
      fiber, sizeof(Fiber), mem::AllocTag::kFiberStacks, nullptr);
}

Fiber* StackPool::acquire(LocalFiberCache* local) {
  if (local != nullptr && local->head != nullptr) {
    Fiber* fiber = local->head;
    local->head = fiber->next;
    fiber->next = nullptr;
    --local->count;
    return fiber;
  }
  Shard& s = shards_[nodes_.current_shard()];
  {
    std::lock_guard guard(s.lock);
    if (s.head != nullptr) {
      Fiber* fiber = s.head;
      s.head = fiber->next;
      fiber->next = nullptr;
      --s.count;
      return fiber;
    }
  }
  // Nothing pooled: allocate fresh, retrying transient exhaustion with a
  // capped exponential backoff (1/2/4 ms). Another worker may release a
  // fiber meanwhile, so the shard is re-probed between attempts. nullptr
  // after the final attempt; Worker::launch then degrades to running the
  // frame on its own stack.
  for (unsigned attempt = 0;; ++attempt) {
    Fiber* fiber = allocate_fresh();
    if (fiber != nullptr) {
      created_.fetch_add(1, std::memory_order_relaxed);
      return fiber;
    }
    if (attempt >= kAcquireRetries) return nullptr;
    std::this_thread::sleep_for(std::chrono::milliseconds(1L << attempt));
    std::lock_guard guard(s.lock);
    if (s.head != nullptr) {
      Fiber* recycled = s.head;
      s.head = recycled->next;
      recycled->next = nullptr;
      --s.count;
      return recycled;
    }
  }
}

void StackPool::release(Fiber* fiber, LocalFiberCache* local) {
  if (local != nullptr && local->count < LocalFiberCache::kMaxCached) {
    fiber->next = local->head;
    local->head = fiber;
    ++local->count;
    return;
  }
  shard_release(fiber);
}

void StackPool::shard_release(Fiber* fiber) {
  // Recycle into the *current* node's shard: the releasing worker (who
  // touched the stack last) is its most likely next user.
  Shard& s = shards_[nodes_.current_shard()];
  {
    std::lock_guard guard(s.lock);
    if (s.count < max_cached_per_node_) {
      fiber->next = s.head;
      s.head = fiber;
      ++s.count;
      return;
    }
  }
  // Shard at its high-water mark: trim instead of pooling, so peak RSS
  // follows demand down.
  destroy_fiber(fiber);
}

void StackPool::flush(LocalFiberCache& local) {
  while (local.head != nullptr) {
    Fiber* fiber = local.head;
    local.head = fiber->next;
    fiber->next = nullptr;
    shard_release(fiber);
  }
  local.count = 0;
}

std::size_t StackPool::cached(unsigned shard) const {
  const Shard& s = shards_[shard];
  std::lock_guard guard(const_cast<SpinLock&>(s.lock));
  return s.count;
}

}  // namespace cilkm::rt
