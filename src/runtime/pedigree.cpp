#include "runtime/pedigree.hpp"

namespace cilkm::rt {

namespace {
thread_local PedigreeState tls_pedigree;
}  // namespace

// Out of line and noinline on purpose — see the declaration. An inlined
// accessor would let the address of tls_pedigree be computed once and
// reused after a fiber migrates to another OS thread, silently mutating
// the departed thread's pedigree (observed as a TSan race between
// fork2join's post-join reseat and the other thread's own spawns).
__attribute__((noinline)) PedigreeState& current_pedigree() noexcept {
  return tls_pedigree;
}

}  // namespace cilkm::rt
