// Spawn frames: the continuation descriptors pushed on the deque by
// fork2join. An un-stolen frame costs a push and a conditional pop; a stolen
// frame is "promoted" — it then carries the join-arrival counter, the parked
// continuation context, and the view-deposit placeholders that in the paper
// live in a full frame (left-child / right-sibling hypermaps, or public SPA
// maps in the memory-mapping scheme).
#pragma once

#include <atomic>
#include <exception>

#include "mem/internal_alloc.hpp"
#include "runtime/context.hpp"
#include "runtime/pedigree.hpp"
#include "runtime/stack_pool.hpp"
#include "views/view_store.hpp"

namespace cilkm::rt {

/// A deposited set of local views, one component per view store (SPA maps,
/// hypermap, flat array). Defined by the views layer; re-exported here
/// because the runtime embeds two deposit placeholders in every promoted
/// spawn frame.
using ViewSetDeposit = views::ViewSetDeposit;

struct SpawnFrame {
  /// fork2join's fast path embeds frames in the spawning stack frame; any
  /// frame the runtime (or an embedder) heap-allocates goes through the
  /// tagged internal allocator instead of plain operator new. The sized
  /// delete covers SpawnFrameT subobjects too.
  static void* operator new(std::size_t bytes) {
    return mem::InternalAlloc::instance().allocate(bytes,
                                                   mem::AllocTag::kFrames);
  }
  static void operator delete(void* p, std::size_t bytes) noexcept {
    mem::InternalAlloc::instance().deallocate(p, bytes,
                                              mem::AllocTag::kFrames);
  }

  /// Type-erased invoker of the deferred branch `b` (set by SpawnFrameT).
  void (*invoke_b)(SpawnFrame*) = nullptr;

  /// Join-arrival counter. The side whose fetch_add returns 1 arrived last
  /// and resumes the parked continuation; the side that got 0 deposited its
  /// views and went back to work-stealing.
  std::atomic<int> arrivals{0};

  /// Set by a thief at steal time (statistics / assertions only).
  std::atomic<bool> stolen{false};

  /// The victim's suspended continuation (valid once the victim's scheduler
  /// announces its arrival) and its fiber for bookkeeping.
  Context parked;
  Fiber* parked_fiber = nullptr;

  /// Deposit placeholders: the victim deposits to `left_views` (its views
  /// are serially earlier), the thief to `right_views`.
  ViewSetDeposit left_views;
  ViewSetDeposit right_views;

  /// Exception thrown by the stolen branch, rethrown at the join.
  std::exception_ptr eptr;

  /// Work/span profiler slots (obs/profiler.hpp), meaningful only when the
  /// profiler is enabled. The thief (or self-pop fiber) publishes the stolen
  /// branch's subcomputation totals in prof_work/prof_span/prof_burden
  /// before announcing its join arrival; the victim accumulates its own
  /// protocol costs (deposit, reinstall, merge) into prof_burden_left. The
  /// resumed continuation combines both sides at the join. Deliberately
  /// UNINITIALIZED: the profiler-off hot path must not pay the stores —
  /// fork2join zeroes them only under profiling, before the frame is pushed.
  std::uint64_t prof_work;
  std::uint64_t prof_span;
  std::uint64_t prof_burden;
  std::uint64_t prof_burden_left;

  /// Pedigree snapshot of the spawning strand, written by fork2join BEFORE
  /// the frame is pushed (a thief may promote it immediately) and immutable
  /// afterwards. Whoever runs the continuation — the spawner's own fast
  /// path, a thief, or a self-pop — resumes it at rank ped_rank + 1 under
  /// the ped_parent prefix; the strand past the join runs at ped_rank + 2.
  /// The chain nodes live in ancestor fork2join stack frames, all of which
  /// are suspended until this frame's join completes.
  const PedigreeNode* ped_parent = nullptr;
  std::uint64_t ped_rank = 0;
};

template <typename B>
struct SpawnFrameT : SpawnFrame {
  B* body;

  explicit SpawnFrameT(B* b) : body(b) {
    invoke_b = [](SpawnFrame* f) { (*static_cast<SpawnFrameT*>(f)->body)(); };
  }
};

}  // namespace cilkm::rt
