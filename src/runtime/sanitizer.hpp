// ThreadSanitizer fiber annotations for the hand-rolled context switches.
// TSan tracks one shadow stack + happens-before clock per OS thread; a raw
// cilkm_ctx_switch teleports execution onto a different stack without
// telling TSan, which corrupts its shadow state and yields bogus reports
// (or crashes). The fiber API (__tsan_create_fiber / __tsan_switch_to_fiber)
// gives each fiber its own TSan state and makes every switch visible.
//
// Each pooled Fiber owns one TSan fiber for the life of its stack, and each
// worker records its scheduler context's TSan state on entry, so every
// cilkm_ctx_start/cilkm_ctx_switch site can announce its destination. All
// hooks compile to nothing outside -fsanitize=thread builds
// (-DCILKM_SANITIZE=thread).
#pragma once

#if defined(__SANITIZE_THREAD__)
#define CILKM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CILKM_TSAN 1
#endif
#endif

#ifdef CILKM_TSAN
#include <sanitizer/tsan_interface.h>
#endif

namespace cilkm::rt::tsan {

#ifdef CILKM_TSAN

inline void* create_fiber() { return __tsan_create_fiber(0); }
inline void destroy_fiber(void* fiber) { __tsan_destroy_fiber(fiber); }
/// The calling OS thread's own TSan state (a thread is also a fiber).
inline void* current_fiber() { return __tsan_get_current_fiber(); }
/// Must be called immediately before the actual stack switch. Synchronizing
/// (flag 0): the switch edge establishes happens-before, exactly like the
/// runtime's own join protocol does via the frame's arrival counter.
inline void switch_to(void* fiber) { __tsan_switch_to_fiber(fiber, 0); }

#else

inline void* create_fiber() { return nullptr; }
inline void destroy_fiber(void*) {}
inline void* current_fiber() { return nullptr; }
inline void switch_to(void*) {}

#endif

}  // namespace cilkm::rt::tsan
