// CPU → NUMA-shard mapping shared by the node-sharded internal pools
// (mem::InternalAlloc, rt::StackPool). A shard is a dense index over the
// topology's NUMA nodes: sysfs node ids may be sparse (node0 + node2 on a
// half-populated board), so the map densifies them once at construction and
// every pool indexes its shard array with the result. A single-node (or
// flat-fallback) topology collapses to one shard — the "flat fallback" of
// the allocator design.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "topo/topology.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace cilkm::mem {

class NodeMap {
 public:
  explicit NodeMap(const topo::Topology& topo) {
    // Densify the node ids present in the topology.
    std::vector<unsigned> nodes;
    for (const topo::CpuInfo& info : topo.cpus()) nodes.push_back(info.node);
    std::sort(nodes.begin(), nodes.end());
    nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
    num_shards_ = nodes.empty() ? 1 : static_cast<unsigned>(nodes.size());

    unsigned max_cpu = 0;
    for (const topo::CpuInfo& info : topo.cpus()) {
      max_cpu = std::max(max_cpu, info.cpu);
    }
    cpu_shard_.assign(static_cast<std::size_t>(max_cpu) + 1, 0);
    for (const topo::CpuInfo& info : topo.cpus()) {
      const auto it = std::lower_bound(nodes.begin(), nodes.end(), info.node);
      cpu_shard_[info.cpu] =
          static_cast<unsigned>(std::distance(nodes.begin(), it));
    }
  }

  unsigned num_shards() const noexcept { return num_shards_; }

  /// Shard of a logical CPU id; ids outside the topology map to shard 0
  /// (conservative — an unpinned thread on a masked-out CPU still works).
  unsigned shard_of_cpu(unsigned cpu) const noexcept {
    return cpu < cpu_shard_.size() ? cpu_shard_[cpu] : 0;
  }

  /// Shard of the calling thread's current CPU. One vDSO call; callers
  /// amortise it over a refill/flush batch, never per allocation.
  unsigned current_shard() const noexcept {
    if (num_shards_ == 1) return 0;
#if defined(__linux__)
    const int cpu = ::sched_getcpu();
    if (cpu >= 0) return shard_of_cpu(static_cast<unsigned>(cpu));
#endif
    return 0;
  }

 private:
  std::vector<unsigned> cpu_shard_;  // logical cpu id -> dense shard index
  unsigned num_shards_ = 1;
};

}  // namespace cilkm::mem
