// The runtime's unified internal allocator (paper Sections 5 and 7: Cilk-M
// structures all internal memory as per-worker local pools rebalanced
// against a global pool; cf. OpenCilk's runtime/internal-malloc design).
//
// One layer serves every internal consumer, keyed by size class × AllocTag:
//
//   tag             consumer                       block
//   kViews          reducer views (ViewPool)       16..256 B typically
//   kSpaPages       public SPA maps (PagePool)     4096 B, zeroed chunks
//   kHypermapNodes  HyperMap entry tables          384 B+ (class-rounded)
//   kFiberStacks    Fiber headers (StackPool)      ~128 B (stacks are mmap'd)
//   kFrames         heap-allocated SpawnFrames     ~256 B
//   kGeneral        everything else
//
// Each thread holds a Magazine: free lists per (tag, class) exchanging
// kBatch-sized batches with the global pool, which is sharded per NUMA node
// (shard chosen from the worker's pinned CPU via topo::Topology; flat
// single-shard fallback when there is one node). Chunks are carved on the
// allocating thread, so first touch lands on the worker's node and mm views
// stay node-local end to end.
//
// Every tag keeps relaxed-atomic live/peak/refill counters (readable from
// any thread — the stats surface of cilkm_run's mem: rows), and the
// destructor runs a leak check in debug builds reporting outstanding blocks
// by tag.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "mem/node_map.hpp"
#include "util/assert.hpp"
#include "util/cache.hpp"
#include "util/spinlock.hpp"

namespace cilkm::mem {

/// What a block is for. Tags never share free lists: a recycled block can
/// only come back to the consumer class that freed it, which is what lets
/// kSpaPages guarantee the only-empty-pages-recycled invariant at the
/// allocator level.
enum class AllocTag : unsigned {
  kViews = 0,
  kSpaPages,
  kHypermapNodes,
  kFiberStacks,
  kFrames,
  kGeneral,
  kTagCount,
};

inline constexpr std::size_t kNumTags =
    static_cast<std::size_t>(AllocTag::kTagCount);

constexpr const char* to_string(AllocTag tag) noexcept {
  switch (tag) {
    case AllocTag::kViews: return "views";
    case AllocTag::kSpaPages: return "spa_pages";
    case AllocTag::kHypermapNodes: return "hypermap_nodes";
    case AllocTag::kFiberStacks: return "fiber_stacks";
    case AllocTag::kFrames: return "frames";
    case AllocTag::kGeneral: return "general";
    case AllocTag::kTagCount: break;
  }
  return "?";
}

/// Relaxed snapshot of one tag's counters. Bytes are class-rounded for
/// pooled blocks and exact for oversize fall-through allocations.
struct TagStats {
  std::uint64_t live_blocks = 0;   ///< allocated minus freed
  std::uint64_t peak_blocks = 0;
  std::uint64_t live_bytes = 0;
  std::uint64_t peak_bytes = 0;
  std::uint64_t allocs = 0;        ///< total allocations ever
  std::uint64_t refills = 0;       ///< magazine refills (shard or carve)
  std::uint64_t flushes = 0;       ///< magazine high-water drains + flush()
  std::uint64_t carved_blocks = 0; ///< blocks cut from fresh chunks
};

class InternalAlloc {
 public:
  static constexpr std::size_t kClassSizes[] = {16,  32,   64,   128, 256,
                                                512, 1024, 2048, 4096};
  static constexpr std::size_t kNumClasses = std::size(kClassSizes);
  static constexpr std::size_t kBatch = 16;
  static constexpr std::size_t kHighWater = 64;
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  /// Class index serving `bytes`, or -1 for the operator-new fall-through
  /// (sizes above the largest class; still tag-counted).
  static constexpr int size_class(std::size_t bytes) noexcept {
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      if (bytes <= kClassSizes[c]) return static_cast<int>(c);
    }
    return -1;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };

 public:
  /// A thread's local free lists, one per (tag, class). The process-wide
  /// instance() keeps one per thread automatically; tests construct their
  /// own and pass them explicitly. A magazine binds to the first
  /// InternalAlloc it is used with and flushes back to it on destruction.
  struct Magazine {
    Magazine() = default;
    ~Magazine();
    Magazine(const Magazine&) = delete;
    Magazine& operator=(const Magazine&) = delete;

    /// NUMA shard this magazine exchanges batches with; -1 (unpinned)
    /// derives the shard from the current CPU at each refill/flush.
    int node = -1;

   private:
    friend class InternalAlloc;
    /// Stat deltas accumulated with plain stores on the hot path and folded
    /// into the global atomics at every batch exchange — the pre-refactor
    /// pools had no per-op shared-line traffic and neither does this one.
    struct Pending {
      std::int64_t blocks = 0;
      std::int64_t bytes = 0;
      std::uint64_t allocs = 0;
    };
    InternalAlloc* owner = nullptr;
    FreeNode* head[kNumTags][kNumClasses] = {};
    std::uint32_t count[kNumTags][kNumClasses] = {};
    Pending pending[kNumTags] = {};
  };

  /// `topology` = nullptr shards by the live machine's NUMA nodes; tests
  /// inject canned topologies. The mapping is copied, so temporaries are
  /// safe.
  explicit InternalAlloc(const topo::Topology* topology = nullptr);
  ~InternalAlloc();

  InternalAlloc(const InternalAlloc&) = delete;
  InternalAlloc& operator=(const InternalAlloc&) = delete;

  /// The process-wide allocator every runtime layer routes through.
  static InternalAlloc& instance();

  /// Allocate/free through the calling thread's magazine (the instance()
  /// hot path; standalone instances fall back to the shard directly).
  void* allocate(std::size_t bytes, AllocTag tag) {
    return allocate(bytes, tag, tls_magazine());
  }
  void deallocate(void* p, std::size_t bytes, AllocTag tag) {
    deallocate(p, bytes, tag, tls_magazine());
  }

  /// Explicit-magazine variants (tests, non-TLS consumers). `mag` may be
  /// nullptr: the block then moves straight to/from the global shard.
  void* allocate(std::size_t bytes, AllocTag tag, Magazine* mag);
  void deallocate(void* p, std::size_t bytes, AllocTag tag, Magazine* mag);

  /// Typed convenience: tagged pool-backed construct/destroy.
  template <typename T, typename... Args>
  T* create(AllocTag tag, Args&&... args) {
    void* p = allocate(sizeof(T), tag);
    try {
      return ::new (p) T(static_cast<Args&&>(args)...);
    } catch (...) {
      deallocate(p, sizeof(T), tag);
      throw;
    }
  }
  template <typename T>
  void destroy(AllocTag tag, T* p) {
    p->~T();
    deallocate(p, sizeof(T), tag);
  }

  /// Drain every list of `mag` to the global shards (worker teardown).
  void flush(Magazine& mag);

  /// Bind the calling thread's instance() magazine to the shard owning
  /// `cpu`. The scheduler calls this after pinning a worker, so every batch
  /// exchange stays on the worker's node without per-refill CPU queries.
  static void bind_current_thread(unsigned cpu);

  unsigned num_shards() const noexcept { return nodes_.num_shards(); }
  unsigned shard_of_cpu(unsigned cpu) const noexcept {
    return nodes_.shard_of_cpu(cpu);
  }

  /// Relaxed snapshot. Blocks moving through magazines fold their stat
  /// deltas in at batch-exchange granularity (refill/drain/flush/teardown);
  /// call stats_sync() first for exactness over the calling thread's
  /// traffic. Magazine-less and oversize paths update globally per op.
  TagStats tag_stats(AllocTag tag) const noexcept;

  /// Fold the calling thread's in-magazine stat deltas into the global
  /// counters now (stats readers, tests, report emission).
  void stats_sync();

  /// Total chunks carved so far (diagnostics; all tags).
  std::size_t chunks_allocated() const noexcept {
    return chunks_count_.load(std::memory_order_relaxed);
  }

  /// Blocks sitting free in one global shard's (tag, class) list — a test
  /// hook for shard-selection and batching assertions.
  std::size_t shard_cached(unsigned shard, AllocTag tag, int cls) const;

  /// Outstanding (allocated, never freed) blocks by tag. Clean iff every
  /// tag is balanced. The destructor runs this in debug builds and reports
  /// leaks to stderr; tests call it directly to prove detection.
  struct LeakReport {
    std::array<std::uint64_t, kNumTags> blocks{};
    std::array<std::uint64_t, kNumTags> bytes{};
    bool clean = true;
    std::string describe() const;
  };
  LeakReport leak_report() const;

 private:
  struct alignas(kCacheLineSize) Shard {
    SpinLock lock;
    FreeNode* head = nullptr;
    std::size_t count = 0;
  };

  struct TagCounters {
    std::atomic<std::uint64_t> live_blocks{0};
    std::atomic<std::uint64_t> peak_blocks{0};
    std::atomic<std::uint64_t> live_bytes{0};
    std::atomic<std::uint64_t> peak_bytes{0};
    std::atomic<std::uint64_t> allocs{0};
    std::atomic<std::uint64_t> refills{0};
    std::atomic<std::uint64_t> flushes{0};
    std::atomic<std::uint64_t> carved_blocks{0};
  };

  /// kSpaPages blocks come from zeroed chunks: a freshly carved page is
  /// already the all-null SpaPage the acquire invariant wants, and because
  /// tags never share free lists only PagePool::release (which enforces
  /// emptiness) ever recycles into this tag.
  static constexpr bool tag_zeroes_chunks(AllocTag tag) noexcept {
    return tag == AllocTag::kSpaPages;
  }

  Magazine* tls_magazine();
  Shard& shard(unsigned node, AllocTag tag, int cls) noexcept {
    return shards_[(static_cast<std::size_t>(node) * kNumTags +
                    static_cast<std::size_t>(tag)) *
                       kNumClasses +
                   static_cast<std::size_t>(cls)];
  }
  const Shard& shard(unsigned node, AllocTag tag, int cls) const noexcept {
    return const_cast<InternalAlloc*>(this)->shard(node, tag, cls);
  }
  unsigned magazine_node(const Magazine& mag) const noexcept {
    return mag.node >= 0 ? static_cast<unsigned>(mag.node)
                         : nodes_.current_shard();
  }

  void refill(Magazine& mag, AllocTag tag, int cls);
  void drain(Magazine& mag, AllocTag tag, int cls, std::size_t keep);
  void reconcile(Magazine& mag, AllocTag tag) noexcept;
  FreeNode* carve_chunk(AllocTag tag, int cls);
  void* allocate_from_shard(AllocTag tag, int cls);

  static void note_alloc(TagCounters& c, std::size_t bytes) noexcept;
  static void note_free(TagCounters& c, std::size_t bytes) noexcept;

  NodeMap nodes_;
  // [node][tag][class], flattened. A plain array because Shard (SpinLock +
  // intrusive list head) is deliberately immovable.
  std::unique_ptr<Shard[]> shards_;
  std::array<TagCounters, kNumTags> counters_;

  SpinLock chunk_lock_;
  std::vector<void*> chunks_owned_;
  std::atomic<std::size_t> chunks_count_{0};
};

}  // namespace cilkm::mem
