#include "mem/internal_alloc.hpp"

#include <cstdio>
#include <cstring>
#include <mutex>
#include <new>

#include "chaos/chaos.hpp"

namespace cilkm::mem {

InternalAlloc::InternalAlloc(const topo::Topology* topology)
    : nodes_(topology != nullptr ? *topology : topo::Topology::machine()),
      shards_(std::make_unique<Shard[]>(
          static_cast<std::size_t>(nodes_.num_shards()) * kNumTags *
          kNumClasses)) {}

InternalAlloc::~InternalAlloc() {
#ifndef NDEBUG
  // Teardown leak check (debug builds): report, never abort — long-lived
  // singletons (persistent Schedulers in tests) may legitimately hold
  // blocks at process exit, and exit-time aborts would mask the real test
  // result. Tests prove detection through leak_report() directly.
  const LeakReport report = leak_report();
  if (!report.clean) {
    std::fprintf(stderr, "InternalAlloc teardown: %s\n",
                 report.describe().c_str());
  }
#endif
  for (void* chunk : chunks_owned_) ::operator delete(chunk);
}

InternalAlloc& InternalAlloc::instance() {
  static InternalAlloc alloc;
  return alloc;
}

InternalAlloc::Magazine* InternalAlloc::tls_magazine() {
  // Thread-local magazines belong to the process-wide instance only: a
  // standalone allocator (tests, benches) must not mix blocks into them.
  if (this != &instance()) return nullptr;
  thread_local Magazine mag;
  return &mag;
}

InternalAlloc::Magazine::~Magazine() {
  // Return everything to the global shards so blocks freed by a dead
  // worker thread remain reusable.
  if (owner != nullptr) owner->flush(*this);
}

void InternalAlloc::note_alloc(TagCounters& c, std::size_t bytes) noexcept {
  c.allocs.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t blocks =
      c.live_blocks.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t total =
      c.live_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  // CAS-max peaks: racing updates keep the maximum either way.
  std::uint64_t peak = c.peak_blocks.load(std::memory_order_relaxed);
  while (blocks > peak &&
         !c.peak_blocks.compare_exchange_weak(peak, blocks,
                                              std::memory_order_relaxed)) {
  }
  peak = c.peak_bytes.load(std::memory_order_relaxed);
  while (total > peak &&
         !c.peak_bytes.compare_exchange_weak(peak, total,
                                             std::memory_order_relaxed)) {
  }
}

void InternalAlloc::note_free(TagCounters& c, std::size_t bytes) noexcept {
  c.live_blocks.fetch_sub(1, std::memory_order_relaxed);
  c.live_bytes.fetch_sub(bytes, std::memory_order_relaxed);
}

void InternalAlloc::reconcile(Magazine& mag, AllocTag tag) noexcept {
  Magazine::Pending& p = mag.pending[static_cast<std::size_t>(tag)];
  if (p.allocs == 0 && p.blocks == 0 && p.bytes == 0) return;
  TagCounters& c = counters_[static_cast<std::size_t>(tag)];
  c.allocs.fetch_add(p.allocs, std::memory_order_relaxed);
  // Negative deltas ride two's-complement wraparound of the unsigned add.
  const std::uint64_t blocks =
      c.live_blocks.fetch_add(static_cast<std::uint64_t>(p.blocks),
                              std::memory_order_relaxed) +
      static_cast<std::uint64_t>(p.blocks);
  const std::uint64_t bytes =
      c.live_bytes.fetch_add(static_cast<std::uint64_t>(p.bytes),
                             std::memory_order_relaxed) +
      static_cast<std::uint64_t>(p.bytes);
  std::uint64_t peak = c.peak_blocks.load(std::memory_order_relaxed);
  while (blocks > peak &&
         !c.peak_blocks.compare_exchange_weak(peak, blocks,
                                              std::memory_order_relaxed)) {
  }
  peak = c.peak_bytes.load(std::memory_order_relaxed);
  while (bytes > peak &&
         !c.peak_bytes.compare_exchange_weak(peak, bytes,
                                             std::memory_order_relaxed)) {
  }
  p = {};
}

InternalAlloc::FreeNode* InternalAlloc::carve_chunk(AllocTag tag, int cls) {
  const std::size_t slot = kClassSizes[static_cast<std::size_t>(cls)];
  void* chunk = ::operator new(kChunkBytes);
  if (tag_zeroes_chunks(tag)) std::memset(chunk, 0, kChunkBytes);
  {
    std::lock_guard guard(chunk_lock_);
    chunks_owned_.push_back(chunk);
  }
  chunks_count_.fetch_add(1, std::memory_order_relaxed);
  auto* bytes = static_cast<std::byte*>(chunk);
  const std::size_t slots = kChunkBytes / slot;
  FreeNode* head = nullptr;
  for (std::size_t i = 0; i < slots; ++i) {
    auto* node = reinterpret_cast<FreeNode*>(bytes + i * slot);
    node->next = head;
    head = node;
  }
  counters_[static_cast<std::size_t>(tag)].carved_blocks.fetch_add(
      slots, std::memory_order_relaxed);
  return head;
}

void InternalAlloc::refill(Magazine& mag, AllocTag tag, int cls) {
  // Chaos fail-point: the magazine-refill edge is where a real allocator
  // first observes memory pressure, so an injected fault throws the same
  // std::bad_alloc a failed carve_chunk would. It unwinds through the user
  // strand into the SpawnFrame::eptr join protocol (fork2join completes the
  // join before rethrowing, so the pool stays consistent) and surfaces at
  // Scheduler::run. Protocol-section refills are suppressed (SuppressFaults)
  // and non-worker threads are never injected — see chaos.hpp.
  if (chaos::should_fail(chaos::Site::kAllocRefill)) throw std::bad_alloc{};
  const auto t = static_cast<std::size_t>(tag);
  const auto c = static_cast<std::size_t>(cls);
  reconcile(mag, tag);  // batch-exchange point: fold the stat deltas in
  counters_[t].refills.fetch_add(1, std::memory_order_relaxed);
  Shard& s = shard(magazine_node(mag), tag, cls);
  {
    // Grab a batch from the node's shard first.
    std::lock_guard guard(s.lock);
    std::size_t moved = 0;
    while (s.head != nullptr && moved < kBatch) {
      FreeNode* node = s.head;
      s.head = node->next;
      --s.count;
      node->next = mag.head[t][c];
      mag.head[t][c] = node;
      ++moved;
    }
    mag.count[t][c] += static_cast<std::uint32_t>(moved);
    if (moved > 0) return;
  }
  // Shard empty: carve a fresh chunk on this thread — first touch puts the
  // pages on the allocating worker's node. The magazine takes one batch;
  // the remainder parks in the shard (dumping a whole chunk into the
  // magazine would blow past the high-water mark and drain-storm on the
  // very next free).
  FreeNode* head = carve_chunk(tag, cls);
  std::uint32_t taken = 0;
  while (head != nullptr && taken < kBatch) {
    FreeNode* node = head;
    head = node->next;
    node->next = mag.head[t][c];
    mag.head[t][c] = node;
    ++taken;
  }
  mag.count[t][c] += taken;
  if (head != nullptr) {
    std::size_t rest = 0;
    for (FreeNode* n = head; n != nullptr; n = n->next) ++rest;
    FreeNode* tail = head;
    while (tail->next != nullptr) tail = tail->next;
    std::lock_guard guard(s.lock);
    tail->next = s.head;
    s.head = head;
    s.count += rest;
  }
}

void InternalAlloc::drain(Magazine& mag, AllocTag tag, int cls,
                          std::size_t keep) {
  const auto t = static_cast<std::size_t>(tag);
  const auto c = static_cast<std::size_t>(cls);
  if (mag.count[t][c] <= keep) return;
  reconcile(mag, tag);  // batch-exchange point: fold the stat deltas in
  counters_[t].flushes.fetch_add(1, std::memory_order_relaxed);
  // Detach the surplus outside the lock, splice it in under the lock.
  FreeNode* batch_head = nullptr;
  std::size_t moved = 0;
  while (mag.count[t][c] > keep) {
    FreeNode* node = mag.head[t][c];
    mag.head[t][c] = node->next;
    --mag.count[t][c];
    node->next = batch_head;
    batch_head = node;
    ++moved;
  }
  if (batch_head == nullptr) return;
  FreeNode* batch_tail = batch_head;
  while (batch_tail->next != nullptr) batch_tail = batch_tail->next;
  Shard& s = shard(magazine_node(mag), tag, cls);
  std::lock_guard guard(s.lock);
  batch_tail->next = s.head;
  s.head = batch_head;
  s.count += moved;
}

void* InternalAlloc::allocate_from_shard(AllocTag tag, int cls) {
  Shard& s = shard(nodes_.current_shard(), tag, cls);
  {
    std::lock_guard guard(s.lock);
    if (s.head != nullptr) {
      FreeNode* node = s.head;
      s.head = node->next;
      --s.count;
      return node;
    }
  }
  // Carve, keep one block, park the rest in the shard.
  counters_[static_cast<std::size_t>(tag)].refills.fetch_add(
      1, std::memory_order_relaxed);
  FreeNode* head = carve_chunk(tag, cls);
  FreeNode* taken = head;
  head = head->next;
  std::size_t rest = 0;
  for (FreeNode* n = head; n != nullptr; n = n->next) ++rest;
  if (head != nullptr) {
    FreeNode* tail = head;
    while (tail->next != nullptr) tail = tail->next;
    std::lock_guard guard(s.lock);
    tail->next = s.head;
    s.head = head;
    s.count += rest;
  }
  return taken;
}

void* InternalAlloc::allocate(std::size_t bytes, AllocTag tag, Magazine* mag) {
  const auto t = static_cast<std::size_t>(tag);
  const int cls = size_class(bytes);
  if (cls < 0) {
    // Oversize: operator new FIRST (it may throw — real OOM or a test
    // double), then count; the stats must never record an allocation that
    // never happened. Tag-counted so the leak check and the mem: stats
    // cover oversize blocks too.
    void* p = ::operator new(bytes);
    note_alloc(counters_[t], bytes);
    return p;
  }
  if (mag == nullptr) {
    void* p = allocate_from_shard(tag, cls);  // may throw (carve_chunk OOM)
    note_alloc(counters_[t], kClassSizes[static_cast<std::size_t>(cls)]);
    return p;
  }
  CILKM_DCHECK(mag->owner == nullptr || mag->owner == this,
               "magazine used with two allocators");
  mag->owner = this;
  // Refill before the pending-delta stores: a refill may throw (carve_chunk
  // OOM, or an injected chaos fault), and the deltas must stay exception-
  // consistent.
  const auto c = static_cast<std::size_t>(cls);
  if (mag->head[t][c] == nullptr) refill(*mag, tag, cls);
  // Plain stores into the magazine's pending deltas: the hot path touches
  // no shared cache line (reconciled at the next batch exchange).
  Magazine::Pending& pend = mag->pending[t];
  ++pend.allocs;
  ++pend.blocks;
  pend.bytes += static_cast<std::int64_t>(
      kClassSizes[static_cast<std::size_t>(cls)]);
  FreeNode* node = mag->head[t][c];
  mag->head[t][c] = node->next;
  --mag->count[t][c];
  return node;
}

void InternalAlloc::deallocate(void* p, std::size_t bytes, AllocTag tag,
                               Magazine* mag) {
  if (p == nullptr) return;
  const auto t = static_cast<std::size_t>(tag);
  const int cls = size_class(bytes);
  if (cls < 0) {
    note_free(counters_[t], bytes);
    ::operator delete(p);
    return;
  }
  auto* node = static_cast<FreeNode*>(p);
  if (mag == nullptr) {
    note_free(counters_[t], kClassSizes[static_cast<std::size_t>(cls)]);
    Shard& s = shard(nodes_.current_shard(), tag, cls);
    std::lock_guard guard(s.lock);
    node->next = s.head;
    s.head = node;
    ++s.count;
    return;
  }
  CILKM_DCHECK(mag->owner == nullptr || mag->owner == this,
               "magazine used with two allocators");
  mag->owner = this;
  Magazine::Pending& pend = mag->pending[t];
  --pend.blocks;
  pend.bytes -= static_cast<std::int64_t>(
      kClassSizes[static_cast<std::size_t>(cls)]);
  const auto c = static_cast<std::size_t>(cls);
  node->next = mag->head[t][c];
  mag->head[t][c] = node;
  if (++mag->count[t][c] > kHighWater) {
    drain(*mag, tag, cls, kHighWater - kBatch);  // rebalance, Hoard-style
  }
}

void InternalAlloc::flush(Magazine& mag) {
  if (mag.owner == nullptr) return;
  CILKM_DCHECK(mag.owner == this, "flushing a foreign magazine");
  for (std::size_t t = 0; t < kNumTags; ++t) {
    reconcile(mag, static_cast<AllocTag>(t));
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      if (mag.head[t][c] != nullptr) {
        drain(mag, static_cast<AllocTag>(t), static_cast<int>(c), 0);
      }
    }
  }
}

void InternalAlloc::stats_sync() {
  Magazine* mag = tls_magazine();
  if (mag == nullptr || mag->owner != this) return;
  for (std::size_t t = 0; t < kNumTags; ++t) {
    reconcile(*mag, static_cast<AllocTag>(t));
  }
}

void InternalAlloc::bind_current_thread(unsigned cpu) {
  InternalAlloc& alloc = instance();
  Magazine* mag = alloc.tls_magazine();
  mag->node = static_cast<int>(alloc.shard_of_cpu(cpu));
}

TagStats InternalAlloc::tag_stats(AllocTag tag) const noexcept {
  const TagCounters& c = counters_[static_cast<std::size_t>(tag)];
  TagStats out;
  out.live_blocks = c.live_blocks.load(std::memory_order_relaxed);
  out.peak_blocks = c.peak_blocks.load(std::memory_order_relaxed);
  out.live_bytes = c.live_bytes.load(std::memory_order_relaxed);
  out.peak_bytes = c.peak_bytes.load(std::memory_order_relaxed);
  out.allocs = c.allocs.load(std::memory_order_relaxed);
  out.refills = c.refills.load(std::memory_order_relaxed);
  out.flushes = c.flushes.load(std::memory_order_relaxed);
  out.carved_blocks = c.carved_blocks.load(std::memory_order_relaxed);
  return out;
}

std::size_t InternalAlloc::shard_cached(unsigned shard_idx, AllocTag tag,
                                        int cls) const {
  const Shard& s = shard(shard_idx, tag, cls);
  std::lock_guard guard(const_cast<SpinLock&>(s.lock));
  return s.count;
}

InternalAlloc::LeakReport InternalAlloc::leak_report() const {
  LeakReport report;
  for (std::size_t t = 0; t < kNumTags; ++t) {
    report.blocks[t] = counters_[t].live_blocks.load(std::memory_order_relaxed);
    report.bytes[t] = counters_[t].live_bytes.load(std::memory_order_relaxed);
    if (report.blocks[t] != 0) report.clean = false;
  }
  return report;
}

std::string InternalAlloc::LeakReport::describe() const {
  if (clean) return "no outstanding blocks";
  std::string out = "outstanding blocks:";
  for (std::size_t t = 0; t < kNumTags; ++t) {
    if (blocks[t] == 0) continue;
    out += ' ';
    out += to_string(static_cast<AllocTag>(t));
    out += '=';
    out += std::to_string(blocks[t]);
    out += " (";
    out += std::to_string(bytes[t]);
    out += " B)";
  }
  return out;
}

}  // namespace cilkm::mem
