// Page-descriptor management: the software analogue of TLMM-Linux's
// sys_palloc / sys_pfree (paper Section 4). A page descriptor "names" a
// physical page, like a file descriptor, and is valid process-wide.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "util/assert.hpp"

namespace cilkm::tlmm {

inline constexpr std::size_t kPageSize = 4096;

/// Descriptor value meaning "remove this virtual-address mapping" when passed
/// to sys_pmap, mirroring the paper's PD_NULL.
inline constexpr std::uint32_t kPdNull = 0xffffffffu;

/// A simulated physical page frame.
struct alignas(kPageSize) PhysPage {
  std::array<std::byte, kPageSize> data{};
};

/// Owns all simulated physical memory and hands out page descriptors.
/// Thread-safe: any thread may allocate or free, as in TLMM-Linux where the
/// descriptor table is process-wide.
class PageDescriptorManager {
 public:
  /// sys_palloc: allocate a zeroed physical page, return its descriptor.
  std::uint32_t palloc() {
    std::lock_guard lock(mutex_);
    std::uint32_t pd;
    if (!free_.empty()) {
      pd = free_.back();
      free_.pop_back();
      pages_[pd]->data.fill(std::byte{0});
      live_[pd] = true;
    } else {
      pd = static_cast<std::uint32_t>(pages_.size());
      pages_.push_back(std::make_unique<PhysPage>());
      live_.push_back(true);
    }
    ++live_count_;
    return pd;
  }

  /// sys_pfree: release a descriptor and its physical page.
  void pfree(std::uint32_t pd) {
    std::lock_guard lock(mutex_);
    CILKM_CHECK(pd < pages_.size() && live_[pd], "pfree of invalid descriptor");
    live_[pd] = false;
    free_.push_back(pd);
    --live_count_;
  }

  /// Resolve a descriptor to its frame. Descriptors are stable for the
  /// lifetime of the allocation, so the returned pointer does not dangle
  /// until pfree.
  PhysPage* frame(std::uint32_t pd) {
    std::lock_guard lock(mutex_);
    CILKM_CHECK(pd < pages_.size() && live_[pd], "frame() of invalid descriptor");
    return pages_[pd].get();
  }

  bool is_live(std::uint32_t pd) {
    std::lock_guard lock(mutex_);
    return pd < pages_.size() && live_[pd];
  }

  std::size_t live_count() {
    std::lock_guard lock(mutex_);
    return live_count_;
  }

 private:
  std::mutex mutex_;
  std::vector<std::unique_ptr<PhysPage>> pages_;
  std::vector<bool> live_;  // guarded by mutex_; bool-vector is fine here
  std::vector<std::uint32_t> free_;
  std::size_t live_count_ = 0;
};

}  // namespace cilkm::tlmm
