#include "tlmm/address_space.hpp"

namespace cilkm::tlmm {

void AddressSpace::attach_thread(ThreadId tid) {
  std::lock_guard lock(mutex_);
  CILKM_CHECK(!threads_.contains(tid), "thread attached twice");
  threads_.emplace(tid, ThreadRoot{});
}

void AddressSpace::detach_thread(ThreadId tid) {
  std::lock_guard lock(mutex_);
  CILKM_CHECK(threads_.erase(tid) == 1, "detach of unattached thread");
}

AddressSpace::Directory* AddressSpace::walk_to_leaf(Directory* l3,
                                                    std::uint64_t va,
                                                    bool create,
                                                    std::size_t* alloc_counter) {
  const auto idx = split_va(va);
  Directory* dir = l3;
  // l3 already corresponds to idx[0]'s root slot; descend levels 1 and 2.
  for (int level = 1; level < kLevels - 1; ++level) {
    auto& slot = dir->child[idx[static_cast<std::size_t>(level)]];
    if (!slot) {
      if (!create) return nullptr;
      slot = std::make_unique<Directory>();
      if (alloc_counter != nullptr) ++*alloc_counter;
    }
    dir = slot.get();
  }
  return dir;
}

void AddressSpace::pmap(ThreadId tid, std::uint64_t base_va,
                        std::span<const std::uint32_t> pds) {
  std::lock_guard lock(mutex_);
  CILKM_CHECK(base_va % kPageSize == 0, "sys_pmap: base must be page-aligned");
  CILKM_CHECK(base_va + pds.size() * kPageSize <= kTlmmRegionBytes,
              "sys_pmap: range must lie inside the TLMM region");
  auto it = threads_.find(tid);
  CILKM_CHECK(it != threads_.end(), "sys_pmap from unattached thread");
  Directory* l3 = it->second.tlmm_l3.get();

  for (std::size_t i = 0; i < pds.size(); ++i) {
    const std::uint64_t va = base_va + i * kPageSize;
    const auto idx = split_va(va);
    Directory* leaf = walk_to_leaf(l3, va, /*create=*/pds[i] != kPdNull);
    if (pds[i] == kPdNull) {
      if (leaf != nullptr) leaf->leaf[idx[kLevels - 1]] = 0;
      continue;
    }
    CILKM_CHECK(pdm_->is_live(pds[i]), "sys_pmap: dead page descriptor");
    leaf->leaf[idx[kLevels - 1]] = pds[i] + 1;
  }
}

void AddressSpace::map_shared(std::uint64_t va, std::uint32_t pd) {
  std::lock_guard lock(mutex_);
  CILKM_CHECK(va % kPageSize == 0, "map_shared: base must be page-aligned");
  CILKM_CHECK(va >= kTlmmRegionBytes, "map_shared: address is in TLMM region");
  CILKM_CHECK(pdm_->is_live(pd), "map_shared: dead page descriptor");
  const auto idx = split_va(va);
  auto& l3 = shared_l3_[idx[0] - 1];
  if (!l3) {
    l3 = std::make_unique<Directory>();
    ++shared_dir_count_;
  }
  Directory* leaf =
      walk_to_leaf(l3.get(), va, /*create=*/true, &shared_dir_count_);
  leaf->leaf[idx[kLevels - 1]] = pd + 1;
}

void AddressSpace::unmap_shared(std::uint64_t va) {
  std::lock_guard lock(mutex_);
  CILKM_CHECK(va >= kTlmmRegionBytes, "unmap_shared: address is in TLMM region");
  const auto idx = split_va(va);
  auto& l3 = shared_l3_[idx[0] - 1];
  if (!l3) return;
  Directory* leaf = walk_to_leaf(l3.get(), va, /*create=*/false);
  if (leaf != nullptr) leaf->leaf[idx[kLevels - 1]] = 0;
}

std::byte* AddressSpace::translate(ThreadId tid, std::uint64_t va) {
  std::lock_guard lock(mutex_);
  const auto idx = split_va(va);
  Directory* l3 = nullptr;
  if (va < kTlmmRegionBytes) {
    auto it = threads_.find(tid);
    CILKM_CHECK(it != threads_.end(), "translate from unattached thread");
    l3 = it->second.tlmm_l3.get();
  } else {
    l3 = shared_l3_[idx[0] - 1].get();
    if (l3 == nullptr) return nullptr;
  }
  Directory* leaf = walk_to_leaf(l3, va, /*create=*/false);
  if (leaf == nullptr) return nullptr;
  const std::uint32_t pd_plus1 = leaf->leaf[idx[kLevels - 1]];
  if (pd_plus1 == 0) return nullptr;
  return pdm_->frame(pd_plus1 - 1)->data.data() + (va % kPageSize);
}

std::size_t AddressSpace::shared_directory_count() {
  std::lock_guard lock(mutex_);
  return shared_dir_count_;
}

}  // namespace cilkm::tlmm
