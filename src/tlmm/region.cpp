#include "tlmm/region.hpp"

#include <sys/mman.h>

#include "tlmm/page_descriptor.hpp"

namespace cilkm::tlmm {

thread_local std::byte* tls_region_base = nullptr;

WorkerRegion::WorkerRegion(std::size_t capacity) {
  capacity_ = (capacity + kPageSize - 1) / kPageSize * kPageSize;
  void* p = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  CILKM_CHECK(p != MAP_FAILED, "mmap of worker TLMM region failed");
  base_ = static_cast<std::byte*>(p);
}

WorkerRegion::~WorkerRegion() {
  if (base_ != nullptr) ::munmap(base_, capacity_);
}

}  // namespace cilkm::tlmm
