// Fast user-space emulation of a worker's TLMM region (DESIGN.md
// substitution (b)). Each worker owns one contiguous, lazily committed
// private region; a reducer stores a byte offset into it (its tlmm_addr).
// The hardware page-table walk of TLMM-Linux is replaced by one initial-exec
// TLS load of the current worker's region base, so a reducer lookup costs
//   load tlmm_addr  ->  load tls_base  ->  load base[offset]  ->  branch
// preserving the paper's "two memory accesses and a predictable branch"
// profile up to a single extra fs:-relative mov.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/assert.hpp"

namespace cilkm::tlmm {

/// One worker's private region. Backed by an anonymous, norm-reserve mmap so
/// a large virtual span costs nothing until touched (mirroring the paper's
/// observation that in a 64-bit address space the region can be generous).
class WorkerRegion {
 public:
  /// Reserve `capacity` bytes of virtual address space (rounded up to pages).
  explicit WorkerRegion(std::size_t capacity);
  ~WorkerRegion();

  WorkerRegion(const WorkerRegion&) = delete;
  WorkerRegion& operator=(const WorkerRegion&) = delete;

  std::byte* base() const noexcept { return base_; }
  std::size_t capacity() const noexcept { return capacity_; }

  std::byte* at(std::size_t offset) const noexcept {
    CILKM_DCHECK(offset < capacity_, "region offset out of range");
    return base_ + offset;
  }

 private:
  std::byte* base_ = nullptr;
  std::size_t capacity_ = 0;
};

/// The executing worker's region base. Declared with initial-exec TLS model
/// so an access compiles to a single fs:-relative load inside this binary.
extern thread_local std::byte* tls_region_base;

/// Install/clear the current thread's region (done by the scheduler when a
/// worker thread starts/stops, and by tests).
inline void set_current_region(WorkerRegion* region) noexcept {
  tls_region_base = region != nullptr ? region->base() : nullptr;
}

/// The fast path used by reducer lookups: resolve a global region offset in
/// the *current* worker's private region.
inline std::byte* resolve(std::uint64_t offset) noexcept {
  return tls_region_base + offset;
}

}  // namespace cilkm::tlmm
