// Software model of the TLMM-Linux virtual-memory design (paper Section 4):
// x86-64-style 4-level page tables with 512-entry directories, one root page
// directory per thread, root entry 0 reserved for the 512-GByte TLMM region,
// and all remaining root entries referring to page directories shared by
// every thread — populated once, visible to all.
//
// This module exists to validate the *kernel-side* semantics the paper relies
// on; the production reducer path uses the fast user-space emulation in
// region.hpp (see DESIGN.md, substitution table).
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "tlmm/page_descriptor.hpp"

namespace cilkm::tlmm {

/// 9 bits of virtual address per level, 4 levels, 4096-byte pages = 48-bit
/// virtual addresses. Root entry 0 covers [0, 512 GB) — the TLMM region.
inline constexpr int kLevels = 4;
inline constexpr int kDirBits = 9;
inline constexpr std::size_t kDirEntries = std::size_t{1} << kDirBits;
inline constexpr std::uint64_t kTlmmRegionBytes =
    kDirEntries * kDirEntries * kDirEntries * kPageSize;  // 512 GB

using ThreadId = std::uint32_t;

class AddressSpace {
 public:
  explicit AddressSpace(PageDescriptorManager& pdm) : pdm_(&pdm) {}

  /// Register a thread: assigns it a unique root page directory whose shared
  /// entries alias the process-wide directories (synchronised lazily, as the
  /// TLMM-Linux VM manager does for root-entry updates).
  void attach_thread(ThreadId tid);
  void detach_thread(ThreadId tid);

  /// sys_pmap: map `pds.size()` physical pages at consecutive page-aligned
  /// virtual addresses starting at `base_va`, in `tid`'s TLMM region only.
  /// A kPdNull descriptor removes the mapping at that slot.
  void pmap(ThreadId tid, std::uint64_t base_va, std::span<const std::uint32_t> pds);

  /// Map a page into the *shared* region (heap/.data analogue). Visible to
  /// all attached threads immediately; lower-level directories are populated
  /// exactly once.
  void map_shared(std::uint64_t va, std::uint32_t pd);
  void unmap_shared(std::uint64_t va);

  /// Software page-table walk. Returns nullptr on an unmapped address
  /// ("page fault"). The returned pointer is into the simulated frame.
  std::byte* translate(ThreadId tid, std::uint64_t va);

  /// Convenience typed access used by tests.
  template <typename T>
  T read(ThreadId tid, std::uint64_t va) {
    std::byte* p = translate(tid, va);
    CILKM_CHECK(p != nullptr, "read from unmapped virtual address");
    T out;
    __builtin_memcpy(&out, p, sizeof(T));
    return out;
  }
  template <typename T>
  void write(ThreadId tid, std::uint64_t va, const T& value) {
    std::byte* p = translate(tid, va);
    CILKM_CHECK(p != nullptr, "write to unmapped virtual address");
    __builtin_memcpy(p, &value, sizeof(T));
  }

  /// Number of lower-level directories allocated for the shared region;
  /// tests use this to show sharing is populated once, not per thread.
  std::size_t shared_directory_count();

 private:
  struct Directory {
    // Interior levels: child directory pointers. Leaf level: pd + 1 (0 means
    // unmapped) stored in `leaf` so a Directory serves both roles.
    std::array<std::unique_ptr<Directory>, kDirEntries> child{};
    std::array<std::uint32_t, kDirEntries> leaf{};  // pd + 1; 0 = invalid
  };

  struct ThreadRoot {
    // Root entry 0: private TLMM L3 directory. Entries 1..511 alias
    // shared_root_ (modelled by lookup fallthrough rather than duplication).
    std::unique_ptr<Directory> tlmm_l3 = std::make_unique<Directory>();
  };

  static std::array<std::size_t, kLevels> split_va(std::uint64_t va) noexcept {
    // idx[0] = root-level index, idx[3] = leaf-level index.
    std::array<std::size_t, kLevels> idx{};
    for (int level = 0; level < kLevels; ++level) {
      const int shift = 12 + kDirBits * (kLevels - 1 - level);
      idx[static_cast<std::size_t>(level)] = (va >> shift) & (kDirEntries - 1);
    }
    return idx;
  }

  // Walk (creating missing interior directories) down to the leaf directory
  // covering va, starting from an L3 directory. When alloc_counter is
  // non-null, each newly created interior directory bumps it.
  Directory* walk_to_leaf(Directory* l3, std::uint64_t va, bool create,
                          std::size_t* alloc_counter = nullptr);

  PageDescriptorManager* pdm_;
  std::mutex mutex_;
  std::unordered_map<ThreadId, ThreadRoot> threads_;
  // Shared region: root entries 1..511. shared_l3_[i] covers root slot i+1.
  std::array<std::unique_ptr<Directory>, kDirEntries - 1> shared_l3_{};
  std::size_t shared_dir_count_ = 0;
};

}  // namespace cilkm::tlmm
