// Per-worker instrumentation counters for the reduce-overhead study
// (paper Figures 7 and 8): view creation, view insertion, view transferal,
// and hypermerge time, plus steal counts.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/cache.hpp"

namespace cilkm {

/// Categories of reduce overhead the paper attributes in Figure 8, plus
/// bookkeeping counters used by tests and the Figure 7 comparison.
enum class StatCounter : unsigned {
  kViewCreateNs,     ///< time spent constructing identity views
  kViewInsertNs,     ///< time spent installing views into SPA map / hypermap
  kViewTransferNs,   ///< time spent in view transferal (Cilk-M only)
  kHypermergeNs,     ///< time spent merging deposited views (incl. REDUCE ops)
  kViewsCreated,     ///< number of identity views created
  kViewsTransferred, ///< number of view pointers copied private -> public
  kHypermerges,      ///< number of deposit-merge operations
  kSteals,           ///< genuine thefts from another worker's deque
  kStolenFrames,     ///< frames acquired by thefts (≥ kSteals under steal-half)
  kLocalSteals,      ///< thefts from a same-core / same-package victim
  kRemoteSteals,     ///< thefts from a cross-package (or cross-node) victim
  kSelfPops,         ///< frames promoted from the worker's own deque
  kStealAttempts,    ///< steal() attempts on victims, successful or not
  kJoiningSteals,    ///< joins resumed by the non-owning worker
  kParks,            ///< idle episodes in which the worker blocked (parked)
  kWakes,            ///< wake-ups this worker's pushes/completions delivered
  kBatchWakes,       ///< extra sleepers (beyond the first) woken per push batch
  kFibersAllocated,  ///< fiber stacks allocated (cactus-stack pressure)
  kSerialDegrades,   ///< spawns executed serially in place (deque full or
                     ///< injected push fault) instead of being pushed
  kFiberFallbacks,   ///< launches degraded to the scheduler's own stack
                     ///< because no fiber stack could be acquired
  kCount
};

constexpr std::string_view to_string(StatCounter c) noexcept {
  switch (c) {
    case StatCounter::kViewCreateNs: return "view_create_ns";
    case StatCounter::kViewInsertNs: return "view_insert_ns";
    case StatCounter::kViewTransferNs: return "view_transfer_ns";
    case StatCounter::kHypermergeNs: return "hypermerge_ns";
    case StatCounter::kViewsCreated: return "views_created";
    case StatCounter::kViewsTransferred: return "views_transferred";
    case StatCounter::kHypermerges: return "hypermerges";
    case StatCounter::kSteals: return "steals";
    case StatCounter::kStolenFrames: return "stolen_frames";
    case StatCounter::kLocalSteals: return "local_steals";
    case StatCounter::kRemoteSteals: return "remote_steals";
    case StatCounter::kSelfPops: return "self_pops";
    case StatCounter::kStealAttempts: return "steal_attempts";
    case StatCounter::kJoiningSteals: return "joining_steals";
    case StatCounter::kParks: return "parks";
    case StatCounter::kWakes: return "wakes";
    case StatCounter::kBatchWakes: return "batch_wakes";
    case StatCounter::kFibersAllocated: return "fibers_allocated";
    case StatCounter::kSerialDegrades: return "serial_degrades";
    case StatCounter::kFiberFallbacks: return "fiber_fallbacks";
    case StatCounter::kCount: break;
  }
  return "?";
}

/// One worker's private counter block. Plain (non-atomic) increments: each
/// block is written by exactly one worker thread and read only after the
/// scheduler quiesces.
struct WorkerStats {
  /// Proximity tiers a steal-latency sample can be attributed to; mirrors
  /// the scheduler's victim tiers (same-core / same-package / remote).
  static constexpr std::size_t kStealTiers = 3;
  /// Log2 histogram buckets at 128 ns granularity: bucket 0 is < 256 ns,
  /// each next bucket doubles, bucket 7 collects everything ≥ ~8.2 µs.
  static constexpr std::size_t kStealLatBuckets = 8;

  std::array<std::uint64_t, static_cast<std::size_t>(StatCounter::kCount)>
      counters{};

  /// Per-tier latency of successful steal rounds (round start → theft):
  /// sample counts per log2 bucket, plus total ns and sample count for
  /// computing means in reports.
  std::uint64_t steal_lat_hist[kStealTiers][kStealLatBuckets]{};
  std::uint64_t steal_lat_ns[kStealTiers]{};
  std::uint64_t steal_lat_count[kStealTiers]{};

  std::uint64_t& operator[](StatCounter c) noexcept {
    return counters[static_cast<std::size_t>(c)];
  }
  std::uint64_t operator[](StatCounter c) const noexcept {
    return counters[static_cast<std::size_t>(c)];
  }

  /// Record one successful steal round's latency, attributed to the winning
  /// victim's proximity tier.
  void record_steal(unsigned tier, std::uint64_t ns) noexcept {
    if (tier >= kStealTiers) tier = kStealTiers - 1;
    const std::uint64_t scaled = ns >> 7;  // 128 ns granularity
    std::size_t bucket = 0;
    while (bucket + 1 < kStealLatBuckets && (scaled >> (bucket + 1)) != 0) {
      ++bucket;
    }
    ++steal_lat_hist[tier][bucket];
    steal_lat_ns[tier] += ns;
    ++steal_lat_count[tier];
  }

  void reset() noexcept {
    counters.fill(0);
    for (std::size_t t = 0; t < kStealTiers; ++t) {
      for (std::size_t b = 0; b < kStealLatBuckets; ++b) {
        steal_lat_hist[t][b] = 0;
      }
      steal_lat_ns[t] = 0;
      steal_lat_count[t] = 0;
    }
  }

  WorkerStats& operator+=(const WorkerStats& other) noexcept {
    for (std::size_t i = 0; i < counters.size(); ++i)
      counters[i] += other.counters[i];
    for (std::size_t t = 0; t < kStealTiers; ++t) {
      for (std::size_t b = 0; b < kStealLatBuckets; ++b) {
        steal_lat_hist[t][b] += other.steal_lat_hist[t][b];
      }
      steal_lat_ns[t] += other.steal_lat_ns[t];
      steal_lat_count[t] += other.steal_lat_count[t];
    }
    return *this;
  }
};

}  // namespace cilkm
