// Deterministic parallel random number generation by pedigree hashing — the
// DotMix scheme of Leiserson, Schardl & Sukha (SPAA'12 "Deterministic
// Parallel Random-Number Generation for Dynamic-Multithreading Platforms").
// A draw hashes the calling strand's spawn pedigree (runtime/pedigree.hpp),
// so its value is a pure function of (seed, pedigree): identical at every
// worker count, view-store policy, steal-batch setting, and steal schedule,
// and identical to the serial elision. This is what lets randomized
// workloads double as determinism regression tests — a failing draw
// sequence replays from the seed alone.
//
// DotMix, concretely: compress the rank vector [r_leaf, …, r_root] into one
// word with a seeded dot product modulo the prime p = 2^64 − 59,
//
//     c = Σ_i (r_i + 1) · Γ_i  (mod p),   Γ_i uniform in [1, p),
//
// then scatter the compressed value with 4 rounds of the RC6-style mixer
// x ← x·(2x+1) followed by a half-word rotation. Distinct pedigrees
// collide in the compression with probability < depth/p, and the mixing
// rounds de-correlate adjacent pedigrees.
//
// A draw also BUMPS the leaf rank (pedigree scoping, per the paper), so
// consecutive draws on one strand have distinct pedigrees; the bump
// participates in the ordinary rank discipline, so draws and spawns share
// one deterministic serial-order rank stream.
#pragma once

#include <cstdint>

#include "runtime/pedigree.hpp"
#include "util/rng.hpp"

namespace cilkm {

/// DotMix pedigree-hashing generator. The object holds only seed-derived
/// constants (the Γ table and an offset); all mutable state is the calling
/// strand's pedigree, so one Dprng may be shared by every worker without
/// synchronization.
class Dprng {
 public:
  /// Γ-table length. Pedigrees deeper than this wrap their coefficient
  /// index; determinism is unaffected (a strand's depth is fixed), only the
  /// collision bound degrades for computations nested > 128 spawns deep.
  static constexpr unsigned kMaxDepth = 128;

  /// The compression prime, 2^64 − 59 (the largest 64-bit prime).
  static constexpr std::uint64_t kPrime = 0xffffffffffffffc5ULL;

  explicit Dprng(std::uint64_t seed = kDefaultSeed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    seed_ = seed;
    std::uint64_t state = seed ^ 0x9e3779b97f4a7c15ULL;
    offset_ = splitmix64(state) % kPrime;
    for (auto& gamma : gamma_) {
      // Uniform in [1, p): zero would erase its pedigree position.
      do {
        gamma = splitmix64(state) % kPrime;
      } while (gamma == 0);
    }
  }

  std::uint64_t seed() const noexcept { return seed_; }

  /// Draw one value: hash the current pedigree, then bump the leaf rank so
  /// the next draw (or spawn) on this strand sees a fresh pedigree.
  std::uint64_t next() noexcept {
    rt::PedigreeState& ped = rt::current_pedigree();
    const std::uint64_t value = hash(ped);
    ++ped.rank;
    return value;
  }

  /// Uniform value in [0, bound) (Lemire reduction), drawn via next().
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1), drawn via next().
  double next01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// The pure pedigree hash, no rank bump. Exposed for the pedigree
  /// invariant tests (test_pedigree.cpp), which compare hash streams across
  /// schedules without perturbing them.
  std::uint64_t hash(const rt::PedigreeState& ped) const noexcept {
    // Each term is < 2^64, so the 128-bit accumulator cannot overflow for
    // any realizable pedigree depth; one reduction at the end suffices.
    unsigned __int128 sum = offset_;
    sum += mulmod(ped.rank + 1, gamma_[0]);
    unsigned depth = 1;
    for (const rt::PedigreeNode* n = ped.parent; n != nullptr;
         n = n->parent, ++depth) {
      sum += mulmod(n->rank + 1, gamma_[depth & (kMaxDepth - 1)]);
    }
    return mix(static_cast<std::uint64_t>(sum % kPrime));
  }

 private:
  static std::uint64_t mulmod(std::uint64_t a, std::uint64_t b) noexcept {
    return static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(a) * b % kPrime);
  }

  /// 4 rounds of x ← x·(2x+1) mod 2^64 then rotate by 32: the quadratic is
  /// a permutation of Z_2^64 whose high half mixes thoroughly; the rotation
  /// exposes it to the next round.
  static std::uint64_t mix(std::uint64_t x) noexcept {
    for (int round = 0; round < 4; ++round) {
      x = x * (2 * x + 1);
      x = (x << 32) | (x >> 32);
    }
    return x;
  }

  static_assert((kMaxDepth & (kMaxDepth - 1)) == 0,
                "depth wrap relies on kMaxDepth being a power of two");

  std::uint64_t seed_ = 0;
  std::uint64_t offset_ = 0;
  std::uint64_t gamma_[kMaxDepth];
};

}  // namespace cilkm
