// Runtime assertion macro that stays active in release builds for cheap
// invariants and compiles out only when CILKM_NO_CHECKS is defined.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cilkm::detail {

/// Optional context provider appended to assert_fail output. The runtime
/// installs a worker-aware hook (worker id + the failing strand's pedigree —
/// see rt::install_assert_context) so the hard aborts that remain after the
/// graceful-degradation paths are diagnosable from CI logs alone. Default
/// nullptr keeps this header freestanding.
using AssertContextFn = void (*)(std::FILE*);
inline AssertContextFn assert_context_fn = nullptr;

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "cilkm assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  if (assert_context_fn != nullptr) assert_context_fn(stderr);
  std::abort();
}

}  // namespace cilkm::detail

#ifdef CILKM_NO_CHECKS
#define CILKM_CHECK(expr, msg) ((void)0)
#else
#define CILKM_CHECK(expr, msg)                                        \
  ((expr) ? (void)0                                                   \
          : ::cilkm::detail::assert_fail(#expr, __FILE__, __LINE__, msg))
#endif

// Debug-only (NDEBUG-gated) heavier checks.
#ifdef NDEBUG
#define CILKM_DCHECK(expr, msg) ((void)0)
#else
#define CILKM_DCHECK(expr, msg) CILKM_CHECK(expr, msg)
#endif
