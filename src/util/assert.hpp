// Runtime assertion macro that stays active in release builds for cheap
// invariants and compiles out only when CILKM_NO_CHECKS is defined.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cilkm::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "cilkm assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg ? msg : "");
  std::abort();
}
}  // namespace cilkm::detail

#ifdef CILKM_NO_CHECKS
#define CILKM_CHECK(expr, msg) ((void)0)
#else
#define CILKM_CHECK(expr, msg)                                        \
  ((expr) ? (void)0                                                   \
          : ::cilkm::detail::assert_fail(#expr, __FILE__, __LINE__, msg))
#endif

// Debug-only (NDEBUG-gated) heavier checks.
#ifdef NDEBUG
#define CILKM_DCHECK(expr, msg) ((void)0)
#else
#define CILKM_DCHECK(expr, msg) CILKM_CHECK(expr, msg)
#endif
