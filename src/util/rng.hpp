// Deterministic pseudo-random number generation for workload generators,
// victim selection in the scheduler, and property tests.
#pragma once

#include <cstdint>

namespace cilkm {

/// The process-wide default seed: Xoshiro256's default, the workload
/// driver's default --seed, and the test suite's CILKM_TEST_SEED fallback
/// all reference this one constant, so they reproduce each other's inputs.
inline constexpr std::uint64_t kDefaultSeed = 0x5eed5eed5eed5eedULL;

/// SplitMix64: used to seed other generators and for cheap stateless hashing.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** — fast, high-quality, and deterministic across platforms.
/// Satisfies UniformRandomBitGenerator so it composes with <random>.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = kDefaultSeed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound) without modulo bias for small bounds
  /// (Lemire's multiply-shift reduction).
  std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace cilkm
