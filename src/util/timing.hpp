// Monotonic nanosecond timers used by the benchmark harness and the
// runtime's reduce-overhead instrumentation (paper Figures 7 and 8).
#pragma once

#include <chrono>
#include <cstdint>

namespace cilkm {

/// Current monotonic time in nanoseconds.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Accumulates elapsed wall time into a plain uint64 on destruction.
/// The target counter must be worker-private (no atomics): the runtime keeps
/// one stats block per worker, cache-padded, and aggregates at report time.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(std::uint64_t& sink) noexcept
      : sink_(sink), start_(now_ns()) {}
  ~ScopedTimerNs() { sink_ += now_ns() - start_; }

  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  std::uint64_t& sink_;
  std::uint64_t start_;
};

}  // namespace cilkm
