// Test-and-test-and-set spinlock. Used for the Figure 1 locking comparison
// and for the deque's THE-protocol exceptional path.
#pragma once

#include <atomic>

namespace cilkm {

/// TTAS spinlock with exponential-free polite spinning (pause on x86).
/// Satisfies Lockable, so it composes with std::lock_guard.
class SpinLock {
 public:
  void lock() noexcept {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) cpu_relax();
    }
  }

  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

  static void cpu_relax() noexcept {
#if defined(__x86_64__)
    __builtin_ia32_pause();
#else
    std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
  }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace cilkm
