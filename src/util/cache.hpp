// Cache-line geometry and false-sharing avoidance helpers.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace cilkm {

/// Size of a destructive-interference cache line. Hard-coded to 64 bytes,
/// which is correct for every x86-64 part the paper (AMD Opteron 8354) and
/// this reproduction target; std::hardware_destructive_interference_size is
/// avoided because GCC warns that its value is ABI-unstable.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a T in storage padded out to a whole number of cache lines so that
/// adjacent array elements (e.g. per-worker counters) never share a line.
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  T value{};

  CachePadded() = default;
  template <typename... Args>
  explicit CachePadded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
};

static_assert(alignof(CachePadded<int>) == kCacheLineSize);
static_assert(sizeof(CachePadded<int>) % kCacheLineSize == 0);

}  // namespace cilkm
