#include "util/pool_alloc.hpp"

#include <cstdlib>
#include <mutex>

#include "util/assert.hpp"

namespace cilkm {

ViewPool& ViewPool::instance() {
  static ViewPool pool;
  return pool;
}

ViewPool::LocalCache& ViewPool::local() {
  thread_local LocalCache cache;
  return cache;
}

ViewPool::LocalCache::~LocalCache() {
  // Return everything to the global shards so views freed by a dead worker
  // thread remain reusable.
  auto& pool = ViewPool::instance();
  for (std::size_t cls = 0; cls < kNumClasses; ++cls) {
    while (head[cls] != nullptr) {
      FreeNode* node = head[cls];
      head[cls] = node->next;
      std::lock_guard guard(pool.shards_[cls].lock);
      node->next = pool.shards_[cls].head;
      pool.shards_[cls].head = node;
    }
    count[cls] = 0;
  }
}

void ViewPool::refill(LocalCache& cache, int cls) {
  auto& shard = shards_[static_cast<std::size_t>(cls)];
  {
    // Grab a batch from the global shard first.
    std::lock_guard guard(shard.lock);
    std::size_t moved = 0;
    while (shard.head != nullptr && moved < kBatch) {
      FreeNode* node = shard.head;
      shard.head = node->next;
      node->next = cache.head[static_cast<std::size_t>(cls)];
      cache.head[static_cast<std::size_t>(cls)] = node;
      ++moved;
    }
    cache.count[static_cast<std::size_t>(cls)] += moved;
    if (moved > 0) return;
  }
  // Global shard empty: carve a fresh chunk into this class's slots.
  const std::size_t slot = kClassSizes[static_cast<std::size_t>(cls)];
  void* chunk = ::operator new(kChunkBytes);
  {
    std::lock_guard guard(chunk_lock_);
    chunks_owned_.push_back(chunk);
    ++chunks_;
  }
  auto* bytes = static_cast<std::byte*>(chunk);
  const std::size_t slots = kChunkBytes / slot;
  for (std::size_t i = 0; i < slots; ++i) {
    auto* node = reinterpret_cast<FreeNode*>(bytes + i * slot);
    node->next = cache.head[static_cast<std::size_t>(cls)];
    cache.head[static_cast<std::size_t>(cls)] = node;
  }
  cache.count[static_cast<std::size_t>(cls)] += slots;
}

void ViewPool::drain(LocalCache& cache, int cls) {
  auto& shard = shards_[static_cast<std::size_t>(cls)];
  std::lock_guard guard(shard.lock);
  for (std::size_t i = 0; i < kBatch; ++i) {
    FreeNode* node = cache.head[static_cast<std::size_t>(cls)];
    if (node == nullptr) break;
    cache.head[static_cast<std::size_t>(cls)] = node->next;
    node->next = shard.head;
    shard.head = node;
    --cache.count[static_cast<std::size_t>(cls)];
  }
}

void* ViewPool::allocate(std::size_t bytes) {
  const int cls = size_class(bytes);
  if (cls < 0) return ::operator new(bytes);
  LocalCache& cache = local();
  if (cache.head[static_cast<std::size_t>(cls)] == nullptr) {
    refill(cache, cls);
  }
  FreeNode* node = cache.head[static_cast<std::size_t>(cls)];
  cache.head[static_cast<std::size_t>(cls)] = node->next;
  --cache.count[static_cast<std::size_t>(cls)];
  return node;
}

void ViewPool::deallocate(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  const int cls = size_class(bytes);
  if (cls < 0) {
    ::operator delete(p);
    return;
  }
  LocalCache& cache = local();
  auto* node = static_cast<FreeNode*>(p);
  node->next = cache.head[static_cast<std::size_t>(cls)];
  cache.head[static_cast<std::size_t>(cls)] = node;
  if (++cache.count[static_cast<std::size_t>(cls)] > kHighWater) {
    drain(cache, cls);  // rebalance to the global pool, Hoard-style
  }
}

}  // namespace cilkm
