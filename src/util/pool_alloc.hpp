// Pooled allocation for reducer views — since the internal-allocator
// unification a thin adapter over mem::InternalAlloc with AllocTag::kViews.
// The per-thread magazine / NUMA-sharded global pool mechanics (paper
// Sections 5 and 7: per-worker local pools rebalanced against a global
// pool) live in mem/internal_alloc.hpp; this keeps the view-facing API that
// core/reducer.hpp and the tests speak. View creation is the dominant
// reduce overhead (paper Figure 8), so the allocation path matters.
#pragma once

#include <cstddef>

#include "mem/internal_alloc.hpp"

namespace cilkm {

class ViewPool {
 public:
  static ViewPool& instance() {
    static ViewPool pool;
    return pool;
  }

  /// Allocate `bytes` of storage (uninitialised). Sizes above the largest
  /// class fall through to operator new (still tag-counted).
  void* allocate(std::size_t bytes) {
    return mem::InternalAlloc::instance().allocate(bytes,
                                                   mem::AllocTag::kViews);
  }
  void deallocate(void* p, std::size_t bytes) {
    mem::InternalAlloc::instance().deallocate(p, bytes,
                                              mem::AllocTag::kViews);
  }

  /// Typed convenience: pool-backed construct/destroy.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    return mem::InternalAlloc::instance().create<T>(
        mem::AllocTag::kViews, static_cast<Args&&>(args)...);
  }
  template <typename T>
  void destroy(T* p) {
    mem::InternalAlloc::instance().destroy(mem::AllocTag::kViews, p);
  }

  /// Diagnostics for tests: total chunks carved so far (all tags).
  std::size_t chunks_allocated() const noexcept {
    return mem::InternalAlloc::instance().chunks_allocated();
  }

  static constexpr int size_class(std::size_t bytes) noexcept {
    return mem::InternalAlloc::size_class(bytes);
  }
};

}  // namespace cilkm
