// A Hoard-style pooled allocator for reducer views (paper Sections 5 and 7:
// the Cilk-M runtime structures its internal memory allocation as per-worker
// local pools rebalanced against a global pool). Small size classes are
// carved from 4-KiB chunks; each thread keeps a local free cache per class
// and exchanges fixed-size batches with a global shard under a spinlock.
// View creation is the dominant reduce overhead (paper Figure 8), so the
// allocation path matters.
#pragma once

#include <array>
#include <cstddef>
#include <new>
#include <vector>

#include "util/spinlock.hpp"

namespace cilkm {

class ViewPool {
 public:
  static constexpr std::size_t kClassSizes[] = {16, 32, 64, 128, 256};
  static constexpr std::size_t kNumClasses = std::size(kClassSizes);
  static constexpr std::size_t kBatch = 16;
  static constexpr std::size_t kHighWater = 64;
  static constexpr std::size_t kChunkBytes = 4096;

  static ViewPool& instance();

  ~ViewPool() {
    for (void* chunk : chunks_owned_) ::operator delete(chunk);
  }

  /// Allocate `bytes` of storage (uninitialised). Sizes above the largest
  /// class fall through to operator new.
  void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes);

  /// Typed convenience: pool-backed construct/destroy.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* p = allocate(sizeof(T));
    try {
      return ::new (p) T(static_cast<Args&&>(args)...);
    } catch (...) {
      deallocate(p, sizeof(T));
      throw;
    }
  }
  template <typename T>
  void destroy(T* p) {
    p->~T();
    deallocate(p, sizeof(T));
  }

  /// Diagnostics for tests: total chunks carved so far.
  std::size_t chunks_allocated() const noexcept { return chunks_; }

  static constexpr int size_class(std::size_t bytes) noexcept {
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      if (bytes <= kClassSizes[c]) return static_cast<int>(c);
    }
    return -1;
  }

 private:
  struct FreeNode {
    FreeNode* next;
  };
  struct GlobalShard {
    SpinLock lock;
    FreeNode* head = nullptr;
  };
  struct LocalCache {
    std::array<FreeNode*, kNumClasses> head{};
    std::array<std::size_t, kNumClasses> count{};
    ~LocalCache();  // flush to the global shards on thread exit
  };

  static LocalCache& local();
  void refill(LocalCache& cache, int cls);
  void drain(LocalCache& cache, int cls);

  std::array<GlobalShard, kNumClasses> shards_;
  SpinLock chunk_lock_;
  std::vector<void*> chunks_owned_;
  std::size_t chunks_ = 0;
};

}  // namespace cilkm
