// The runtime/library ABI for reducer hyperobjects, mirroring the monoid
// interface of the Cilk Plus reducer API (paper Section 3): the runtime
// invokes IDENTITY (create_identity), REDUCE (reduce), plus destroy and a
// collapse-into-leftmost operation used at quiescence. One ViewOps instance
// is embedded in each reducer object; SPA-map slots and hypermap entries
// store (view pointer, ViewOps pointer) side by side so the hypermerge
// process can reach the monoid without touching the reducer.
#pragma once

namespace cilkm {

struct ViewOps {
  /// Allocate and return a new identity view.
  void* (*create_identity)(void* reducer);
  /// left = left ⊗ right; destroys the right view.
  void (*reduce)(void* reducer, void* left_view, void* right_view);
  /// Destroy a view without folding it (error paths only).
  void (*destroy)(void* reducer, void* view);
  /// leftmost = leftmost ⊗ view; destroys the view. Called by the worker
  /// that completes the root task, and by the reducer destructor.
  void (*collapse)(void* reducer, void* view);
  /// The owning reducer instance, passed back to every callback.
  void* reducer;
};

}  // namespace cilkm
