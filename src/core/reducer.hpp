// Reducer hyperobjects (paper Sections 2, 5, 6): the public reducer<Monoid,
// Policy> template, with three interchangeable runtime mechanisms selected
// at compile time per reducer — each one an implementation of the ViewStore
// contract (views/view_store.hpp):
//
//   mm_policy        the paper's contribution: thread-local indirection
//                    through the (emulated) TLMM region. The reducer stores
//                    its tlmm_addr (a 16-byte view-array slot offset valid
//                    in every worker's region); a lookup is
//                        load tlmm_addr -> load slot -> predictable branch.
//
//   hypermap_policy  the Cilk Plus baseline: a per-worker hash table keyed
//                    by the reducer's address.
//
//   flat_policy      ablation upper bound: a dense per-worker array indexed
//                    by a globally allocated reducer id — no hashing, no
//                    mmap emulation; a lookup is a bounds check and a load.
//
// All mechanisms share the ViewOps ABI, the view-transferal/hypermerge
// engine in the views layer, and these semantics: the value observed after
// quiescence equals the serial-execution result whenever the monoid's
// reduce operation is associative.
#pragma once

#include <concepts>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "core/view_ops.hpp"
#include "runtime/worker.hpp"
#include "spa/slot_alloc.hpp"
#include "tlmm/region.hpp"
#include "util/pool_alloc.hpp"
#include "util/timing.hpp"
#include "views/flat_registry.hpp"
#include "views/view_store.hpp"

namespace cilkm {

/// A reducer is defined in terms of an algebraic monoid (T, ⊗, e):
/// identity() returns e, and reduce(a, b) performs a = a ⊗ b (it may pilfer
/// b's resources; b is destroyed by the runtime afterwards). The runtime
/// guarantees a deterministic, serial-equivalent result iff ⊗ is
/// associative; commutativity is NOT required.
template <typename M>
concept MonoidFor = requires(M m, typename M::value_type& a,
                             typename M::value_type& b) {
  typename M::value_type;
  { m.identity() } -> std::convertible_to<typename M::value_type>;
  m.reduce(a, b);
};

struct mm_policy {};
struct hypermap_policy {};
struct flat_policy {};

/// Display/series names for the policies, used by benches and reports.
template <typename Policy>
struct policy_traits;
template <>
struct policy_traits<mm_policy> {
  static constexpr const char* name = "mm";
};
template <>
struct policy_traits<hypermap_policy> {
  static constexpr const char* name = "hypermap";
};
template <>
struct policy_traits<flat_policy> {
  static constexpr const char* name = "flat";
};

template <MonoidFor M, typename Policy = mm_policy>
class reducer {
 public:
  using value_type = typename M::value_type;
  using monoid_type = M;
  using policy_type = Policy;
  static constexpr bool is_memory_mapped = std::is_same_v<Policy, mm_policy>;
  static constexpr bool is_flat = std::is_same_v<Policy, flat_policy>;
  static constexpr bool is_hypermap =
      std::is_same_v<Policy, hypermap_policy>;
  static_assert(is_memory_mapped || is_flat || is_hypermap,
                "Policy must be mm_policy, hypermap_policy, or flat_policy");

  reducer() : reducer(M{}) {}

  explicit reducer(M monoid)
      : monoid_(std::move(monoid)), leftmost_(monoid_.identity()) {
    init();
  }

  /// Start from an initial value (the pre-existing contents of the leftmost
  /// view, e.g. a non-empty list being appended to).
  reducer(M monoid, value_type initial)
      : monoid_(std::move(monoid)), leftmost_(std::move(initial)) {
    init();
  }

  ~reducer() {
    // Fold any view the destroying worker still holds, then release the
    // key. Destroying a reducer while logically-parallel updates to it are
    // outstanding is a precondition violation, as in Cilk Plus.
    if (rt::Worker* w = rt::Worker::current()) {
      void* view = nullptr;
      if constexpr (is_memory_mapped) {
        view = w->views().spa().extract(tlmm_addr_);
      } else if constexpr (is_flat) {
        view = w->views().flat().extract(flat_id_);
      } else {
        view = w->views().hypermap().extract(this);
      }
      if (view != nullptr) collapse_view(static_cast<value_type*>(view));
    }
    if constexpr (is_memory_mapped) {
      rt::Worker* w = rt::Worker::current();
      spa::SlotAllocator::instance().free(
          tlmm_addr_, w ? &w->views().spa().slot_cache() : nullptr);
    } else if constexpr (is_flat) {
      views::FlatIdAllocator::instance().free(flat_id_);
    }
  }

  reducer(const reducer&) = delete;
  reducer& operator=(const reducer&) = delete;

  /// The local view of the executing strand — the hot operation the paper's
  /// Figures 1 and 6 measure. Outside a scheduler run this is the leftmost
  /// view itself (serial semantics).
  value_type& view() {
    if constexpr (is_memory_mapped) {
      std::byte* base = tlmm::tls_region_base;
      if (base != nullptr) [[likely]] {
        auto* slot = reinterpret_cast<spa::ViewSlot*>(base + tlmm_addr_);
        if (slot->view != nullptr) [[likely]] {
          return *static_cast<value_type*>(slot->view);
        }
        return *miss_mm();
      }
      return leftmost_;
    } else if constexpr (is_flat) {
      rt::Worker* w = rt::Worker::current();
      if (w != nullptr) [[likely]] {
        if (void* v = w->views().flat().lookup(flat_id_)) [[likely]] {
          return *static_cast<value_type*>(v);
        }
        return *miss_flat(w);
      }
      return leftmost_;
    } else {
      rt::Worker* w = rt::Worker::current();
      if (w != nullptr) [[likely]] {
        if (auto* entry = w->views().hypermap().lookup(this)) [[likely]] {
          return *static_cast<value_type*>(entry->view);
        }
        return *miss_hypermap(w);
      }
      return leftmost_;
    }
  }

  value_type& operator*() { return view(); }
  value_type* operator->() { return &view(); }

  /// The reducer's value. After quiescence (outside runs) this is the exact
  /// serial-execution result; from inside a run it is the current strand's
  /// local view, as in Cilk Plus.
  value_type& get_value() { return view(); }

  /// Replace the value (quiescent context only).
  void set_value(value_type v) {
    CILKM_CHECK(rt::Worker::current() == nullptr,
                "set_value must be called outside parallel execution");
    leftmost_ = std::move(v);
  }

  /// Move the final value out (quiescent context only).
  value_type move_value() {
    CILKM_CHECK(rt::Worker::current() == nullptr,
                "move_value must be called outside parallel execution");
    return std::move(leftmost_);
  }

  const M& monoid() const noexcept { return monoid_; }

  /// The reducer's slot offset in the emulated TLMM region (mm policy).
  std::uint64_t tlmm_addr() const noexcept { return tlmm_addr_; }

  /// The reducer's dense id in the flat view store (flat policy).
  std::uint32_t flat_id() const noexcept { return flat_id_; }

 private:
  void init() {
    ops_.create_identity = &s_create_identity;
    ops_.reduce = &s_reduce;
    ops_.destroy = &s_destroy;
    ops_.collapse = &s_collapse;
    ops_.reducer = this;
    if constexpr (is_memory_mapped) {
      rt::Worker* w = rt::Worker::current();
      tlmm_addr_ = spa::SlotAllocator::instance().allocate(
          w ? &w->views().spa().slot_cache() : nullptr);
    } else if constexpr (is_flat) {
      flat_id_ = views::FlatIdAllocator::instance().allocate();
    }
  }

  // Views live in pooled storage (Hoard-style per-worker caches): view
  // creation dominates the reduce overhead (paper Figure 8), so its
  // allocation path avoids the general-purpose heap.
  value_type* make_identity(rt::Worker* w) {
    ScopedTimerNs timer(w->stats()[StatCounter::kViewCreateNs]);
    ++w->stats()[StatCounter::kViewsCreated];
    return ViewPool::instance().create<value_type>(monoid_.identity());
  }

  value_type* miss_mm() {
    rt::Worker* w = rt::Worker::current();
    CILKM_CHECK(w != nullptr, "TLMM region set but no current worker");
    value_type* view = make_identity(w);
    w->views().spa().install(tlmm_addr_, view, &ops_);
    return view;
  }

  value_type* miss_flat(rt::Worker* w) {
    value_type* view = make_identity(w);
    w->views().flat().install(flat_id_, view, &ops_);
    return view;
  }

  value_type* miss_hypermap(rt::Worker* w) {
    value_type* view = make_identity(w);
    w->views().hypermap().install(this, view, &ops_);
    return view;
  }

  void collapse_view(value_type* view) {
    monoid_.reduce(leftmost_, *view);
    ViewPool::instance().destroy(view);
  }

  static void* s_create_identity(void* r) {
    auto* self = static_cast<reducer*>(r);
    rt::Worker* w = rt::Worker::current();
    return w ? self->make_identity(w)
             : ViewPool::instance().create<value_type>(self->monoid_.identity());
  }
  static void s_reduce(void* r, void* left, void* right) {
    auto* self = static_cast<reducer*>(r);
    auto* l = static_cast<value_type*>(left);
    auto* rv = static_cast<value_type*>(right);
    self->monoid_.reduce(*l, *rv);
    ViewPool::instance().destroy(rv);
  }
  static void s_destroy(void*, void* view) {
    ViewPool::instance().destroy(static_cast<value_type*>(view));
  }
  static void s_collapse(void* r, void* view) {
    static_cast<reducer*>(r)->collapse_view(static_cast<value_type*>(view));
  }

  M monoid_;
  value_type leftmost_;
  std::uint64_t tlmm_addr_ = 0;  // mm policy key
  std::uint32_t flat_id_ = 0;    // flat policy key
  ViewOps ops_{};
};

}  // namespace cilkm
