// Compressed-sparse-row graphs and synthetic generators standing in for the
// paper's Figure 10(b) input suite (see DESIGN.md substitution table).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cilkm::pbfs {

using Vertex = std::uint32_t;
inline constexpr Vertex kUnreached = 0xffffffffu;

/// Immutable CSR graph. Edges are stored directed; builders symmetrise.
class Graph {
 public:
  Graph() = default;

  /// Build from a directed edge list; when `symmetrise` both directions are
  /// inserted. Self-loops are kept (harmless for BFS); duplicates are kept
  /// (they only scale |E| like the paper's multigraph inputs).
  static Graph from_edges(Vertex num_vertices,
                          const std::vector<std::pair<Vertex, Vertex>>& edges,
                          bool symmetrise = true);

  Vertex num_vertices() const noexcept {
    return static_cast<Vertex>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  std::uint64_t num_edges() const noexcept { return targets_.size(); }

  /// Neighbour range of u: [adj_begin(u), adj_end(u)).
  const Vertex* adj_begin(Vertex u) const noexcept {
    return targets_.data() + offsets_[u];
  }
  const Vertex* adj_end(Vertex u) const noexcept {
    return targets_.data() + offsets_[u + 1];
  }
  std::uint32_t degree(Vertex u) const noexcept {
    return static_cast<std::uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<Vertex> targets_;
};

/// Generator parameters for one Figure 10(b) stand-in.
struct GraphSpec {
  std::string name;       // paper graph it stands in for
  std::string kind;       // "rmat" | "grid3d" | "uniform"
  Vertex num_vertices;
  std::uint64_t num_edges;  // directed edge count before symmetrisation
  std::uint64_t seed;
};

Graph uniform_random(Vertex n, std::uint64_t m, std::uint64_t seed);
Graph rmat(unsigned scale, std::uint64_t m, double a, double b, double c,
           std::uint64_t seed);
Graph grid3d(Vertex side);

Graph generate(const GraphSpec& spec);

/// The eight stand-ins for the paper's input graphs, scaled by 1/`shrink`
/// in vertex and edge count (shrink = 1 reproduces paper sizes).
std::vector<GraphSpec> paper_graph_suite(unsigned shrink);

}  // namespace cilkm::pbfs
