#include "pbfs/graph.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace cilkm::pbfs {

Graph Graph::from_edges(Vertex num_vertices,
                        const std::vector<std::pair<Vertex, Vertex>>& edges,
                        bool symmetrise) {
  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(num_vertices) + 1, 0);
  // Counting pass.
  for (const auto& [u, v] : edges) {
    CILKM_CHECK(u < num_vertices && v < num_vertices, "edge endpoint OOB");
    ++g.offsets_[u + 1];
    if (symmetrise) ++g.offsets_[v + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  g.targets_.resize(g.offsets_.back());
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.targets_[cursor[u]++] = v;
    if (symmetrise) g.targets_[cursor[v]++] = u;
  }
  return g;
}

Graph uniform_random(Vertex n, std::uint64_t m, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    edges.emplace_back(static_cast<Vertex>(rng.below(n)),
                       static_cast<Vertex>(rng.below(n)));
  }
  return Graph::from_edges(n, edges);
}

Graph rmat(unsigned scale, std::uint64_t m, double a, double b, double c,
           std::uint64_t seed) {
  const Vertex n = Vertex{1} << scale;
  Xoshiro256 rng(seed);
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    Vertex u = 0, v = 0;
    for (unsigned bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform01();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: nothing to add
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    edges.emplace_back(u, v);
  }
  return Graph::from_edges(n, edges);
}

Graph grid3d(Vertex side) {
  const auto n = static_cast<std::uint64_t>(side) * side * side;
  CILKM_CHECK(n < kUnreached, "grid too large");
  std::vector<std::pair<Vertex, Vertex>> edges;
  edges.reserve(n * 3);
  auto id = [side](Vertex x, Vertex y, Vertex z) {
    return (static_cast<std::uint64_t>(z) * side + y) * side + x;
  };
  for (Vertex z = 0; z < side; ++z) {
    for (Vertex y = 0; y < side; ++y) {
      for (Vertex x = 0; x < side; ++x) {
        const auto u = static_cast<Vertex>(id(x, y, z));
        if (x + 1 < side) edges.emplace_back(u, static_cast<Vertex>(id(x + 1, y, z)));
        if (y + 1 < side) edges.emplace_back(u, static_cast<Vertex>(id(x, y + 1, z)));
        if (z + 1 < side) edges.emplace_back(u, static_cast<Vertex>(id(x, y, z + 1)));
      }
    }
  }
  return Graph::from_edges(static_cast<Vertex>(n), edges);
}

Graph generate(const GraphSpec& spec) {
  if (spec.kind == "grid3d") {
    // num_vertices holds the side length for grids.
    return grid3d(spec.num_vertices);
  }
  if (spec.kind == "rmat") {
    unsigned scale = 0;
    while ((Vertex{1} << scale) < spec.num_vertices) ++scale;
    return rmat(scale, spec.num_edges, 0.45, 0.22, 0.22, spec.seed);
  }
  return uniform_random(spec.num_vertices, spec.num_edges, spec.seed);
}

std::vector<GraphSpec> paper_graph_suite(unsigned shrink) {
  CILKM_CHECK(shrink >= 1, "shrink factor must be >= 1");
  // Paper Figure 10(b): |V|, |E| (directed), diameter class. Matrix-market
  // meshes (kkt_power, freescale1, cage14/15, nlpkkt160, grid3d200) map to
  // grid/uniform generators; wikipedia and rmat23 map to RMAT (power law).
  auto v = [shrink](double millions) {
    return static_cast<Vertex>(millions * 1e6 / shrink);
  };
  auto e = [shrink](double millions) {
    return static_cast<std::uint64_t>(millions * 1e6 / shrink);
  };
  // grid3d200: paper uses a 200^3 grid (8M vertices); scale the side by the
  // cube root of the shrink factor.
  Vertex side = 200;
  while (static_cast<std::uint64_t>(side) * side * side > 8000000ull / shrink &&
         side > 8) {
    --side;
  }
  return {
      {"kkt_power", "uniform", v(2.05), e(12.76), 101},
      {"freescale1", "uniform", v(3.43), e(17.1), 102},
      {"cage14", "uniform", v(1.51), e(27.1), 103},
      {"wikipedia", "rmat", v(2.4), e(41.9), 104},
      {"grid3d200", "grid3d", side, 0, 105},
      {"rmat23", "rmat", v(2.3), e(77.9), 106},
      {"cage15", "uniform", v(5.15), e(99.2), 107},
      {"nlpkkt160", "uniform", v(8.35), e(225.4), 108},
  };
}

}  // namespace cilkm::pbfs
