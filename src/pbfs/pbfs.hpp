// Parallel breadth-first search with bag reducers (paper Section 8's
// application benchmark) and its serial baseline.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/reducer.hpp"
#include "pbfs/bag.hpp"
#include "pbfs/graph.hpp"
#include "runtime/api.hpp"

namespace cilkm::pbfs {

struct BfsResult {
  std::vector<Vertex> dist;       // kUnreached where unreachable
  Vertex num_layers = 0;          // eccentricity of the source + 1
  std::uint64_t reducer_lookups = 0;  // bag-reducer lookups performed
};

/// Serial queue-based BFS (correctness baseline and Figure 10b's D column).
BfsResult serial_bfs(const Graph& g, Vertex source);

namespace detail {

/// Height at or below which a pennant subtree is processed serially, with
/// the bag-reducer view looked up once per chunk — mirroring the real PBFS
/// code, whose per-graph lookup counts (paper Figure 10b) are consequently
/// small.
inline constexpr unsigned kGrainHeight = 7;

template <typename Policy>
struct LayerContext {
  const Graph* graph;
  std::atomic<Vertex>* dist;
  Vertex next_depth;
  reducer<bag_merge<Vertex>, Policy>* out;
  std::atomic<std::uint64_t>* lookups;

  void process_chunk(const typename Bag<Vertex>::Node* node) const {
    Bag<Vertex>& local = out->view();
    lookups->fetch_add(1, std::memory_order_relaxed);
    process_tree_serial(node, local);
  }

  void process_tree_serial(const typename Bag<Vertex>::Node* node,
                           Bag<Vertex>& local) const {
    if (node == nullptr) return;
    expand(node->value, local);
    process_tree_serial(node->left, local);
    process_tree_serial(node->right, local);
  }

  void expand(Vertex u, Bag<Vertex>& local) const {
    for (const Vertex* it = graph->adj_begin(u); it != graph->adj_end(u);
         ++it) {
      const Vertex v = *it;
      Vertex expected = kUnreached;
      if (dist[v].load(std::memory_order_relaxed) == kUnreached &&
          dist[v].compare_exchange_strong(expected, next_depth,
                                          std::memory_order_relaxed)) {
        local.insert(v);
      }
    }
  }

  /// Parallel walk of a complete subtree of height `height`.
  void walk_tree(const typename Bag<Vertex>::Node* node,
                 unsigned height) const {
    if (node == nullptr) return;
    if (height <= kGrainHeight) {
      process_chunk(node);
      return;
    }
    fork2join(
        [&] {
          Bag<Vertex>& local = out->view();
          lookups->fetch_add(1, std::memory_order_relaxed);
          expand(node->value, local);
          walk_tree(node->left, height - 1);
        },
        [&] { walk_tree(node->right, height - 1); });
  }
};

}  // namespace detail

/// Layer-synchronous PBFS. Policy selects the reducer mechanism under test
/// (mm_policy = Cilk-M memory-mapped, hypermap_policy = Cilk Plus baseline).
/// Call from inside cilkm::run() for parallel execution; calling it outside
/// a run degrades gracefully to serial execution.
template <typename Policy = mm_policy>
BfsResult pbfs(const Graph& g, Vertex source) {
  const Vertex n = g.num_vertices();
  auto dist = std::make_unique<std::atomic<Vertex>[]>(n);
  for (Vertex v = 0; v < n; ++v) {
    dist[v].store(kUnreached, std::memory_order_relaxed);
  }
  dist[source].store(0, std::memory_order_relaxed);

  std::atomic<std::uint64_t> lookups{0};
  Bag<Vertex> frontier;
  frontier.insert(source);
  Vertex depth = 0;

  while (!frontier.empty()) {
    reducer<bag_merge<Vertex>, Policy> out;
    detail::LayerContext<Policy> ctx{&g, dist.get(), static_cast<Vertex>(depth + 1),
                                     &out, &lookups};
    const auto pennant_list = frontier.pennants();
    parallel_for(0, static_cast<std::int64_t>(pennant_list.size()), 1,
                 [&](std::int64_t i) {
                   const auto& [root, rank] = pennant_list[static_cast<std::size_t>(i)];
                   // A rank-k pennant: the root element plus a complete tree
                   // of height k-1 at root->left.
                   Bag<Vertex>& local = out.view();
                   lookups.fetch_add(1, std::memory_order_relaxed);
                   ctx.expand(root->value, local);
                   ctx.walk_tree(root->left, rank == 0 ? 0 : rank - 1);
                 });
    frontier = std::move(out.get_value());
    ++depth;
  }

  BfsResult result;
  result.dist.resize(n);
  for (Vertex v = 0; v < n; ++v) {
    result.dist[v] = dist[v].load(std::memory_order_relaxed);
  }
  result.num_layers = depth;
  result.reducer_lookups = lookups.load(std::memory_order_relaxed);
  return result;
}

}  // namespace cilkm::pbfs
