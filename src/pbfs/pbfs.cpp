#include "pbfs/pbfs.hpp"

#include <deque>

namespace cilkm::pbfs {

BfsResult serial_bfs(const Graph& g, Vertex source) {
  BfsResult result;
  result.dist.assign(g.num_vertices(), kUnreached);
  result.dist[source] = 0;
  std::deque<Vertex> queue{source};
  Vertex max_depth = 0;
  while (!queue.empty()) {
    const Vertex u = queue.front();
    queue.pop_front();
    const Vertex du = result.dist[u];
    max_depth = du > max_depth ? du : max_depth;
    for (const Vertex* it = g.adj_begin(u); it != g.adj_end(u); ++it) {
      if (result.dist[*it] == kUnreached) {
        result.dist[*it] = du + 1;
        queue.push_back(*it);
      }
    }
  }
  result.num_layers = max_depth + 1;
  result.reducer_lookups = 0;
  return result;
}

}  // namespace cilkm::pbfs
