// The bag data structure of Leiserson & Schardl's work-efficient parallel
// breadth-first search — the reducer the paper's PBFS benchmark exercises
// (paper Section 8). A bag is a list of "pennants": a pennant of rank k is
// a root node whose left child is a complete binary tree of 2^k - 1 nodes.
// Insertion is O(1) amortised (binary carry propagation), and merging two
// bags is O(log n) (a full adder over ranks), which makes bag-merge a cheap
// associative (and commutative) monoid operation.
#pragma once

#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace cilkm::pbfs {

template <typename T>
class Bag {
 public:
  struct Node {
    T value;
    Node* left = nullptr;
    Node* right = nullptr;
  };

  static constexpr unsigned kMaxRank = 40;  // up to 2^40 elements

  Bag() = default;
  Bag(Bag&& other) noexcept { swap(other); }
  Bag& operator=(Bag&& other) noexcept {
    if (this != &other) {
      destroy();
      swap(other);
    }
    return *this;
  }
  Bag(const Bag&) = delete;
  Bag& operator=(const Bag&) = delete;
  ~Bag() { destroy(); }

  bool empty() const noexcept { return size_ == 0; }
  std::uint64_t size() const noexcept { return size_; }

  /// O(1) amortised insertion: a rank-0 pennant carried up the spine.
  void insert(T value) {
    Node* carry = new Node{std::move(value)};
    unsigned rank = 0;
    while (spine_[rank] != nullptr) {
      carry = pennant_union(spine_[rank], carry);
      spine_[rank] = nullptr;
      ++rank;
      CILKM_DCHECK(rank < kMaxRank, "bag rank overflow");
    }
    spine_[rank] = carry;
    ++size_;
  }

  /// O(log n) merge: a full adder over the two spines. `other` is emptied.
  void merge(Bag&& other) {
    Node* carry = nullptr;
    for (unsigned rank = 0; rank < kMaxRank; ++rank) {
      Node* a = spine_[rank];
      Node* b = other.spine_[rank];
      other.spine_[rank] = nullptr;
      // Full adder on pennants of equal rank.
      const int ones = (a != nullptr) + (b != nullptr) + (carry != nullptr);
      switch (ones) {
        case 0:
          spine_[rank] = nullptr;
          break;
        case 1:
          spine_[rank] = a != nullptr ? a : (b != nullptr ? b : carry);
          carry = nullptr;
          break;
        case 2: {
          Node* x = a != nullptr ? a : b;
          Node* y = (a != nullptr && b != nullptr) ? b : carry;
          spine_[rank] = nullptr;
          carry = pennant_union(x, y);
          break;
        }
        case 3:
          spine_[rank] = a;
          carry = pennant_union(b, carry);
          break;
      }
    }
    CILKM_CHECK(carry == nullptr, "bag merge overflowed kMaxRank");
    size_ += other.size_;
    other.size_ = 0;
  }

  /// The pennants currently in the bag: (root, rank) pairs. A rank-k
  /// pennant's left child is a complete tree of height k-1.
  std::vector<std::pair<Node*, unsigned>> pennants() const {
    std::vector<std::pair<Node*, unsigned>> out;
    for (unsigned rank = 0; rank < kMaxRank; ++rank) {
      if (spine_[rank] != nullptr) out.emplace_back(spine_[rank], rank);
    }
    return out;
  }

  /// Visit every element (test/debug; not the parallel traversal).
  template <typename Visitor>
  void for_each(Visitor&& visit) const {
    for (unsigned rank = 0; rank < kMaxRank; ++rank) {
      visit_tree(spine_[rank], visit);
    }
  }

  void swap(Bag& other) noexcept {
    spine_.swap(other.spine_);
    std::swap(size_, other.size_);
  }

  /// Combine two pennants of equal rank k into one of rank k+1.
  static Node* pennant_union(Node* x, Node* y) noexcept {
    y->right = x->left;
    x->left = y;
    return x;
  }

 private:
  template <typename Visitor>
  static void visit_tree(const Node* node, Visitor& visit) {
    if (node == nullptr) return;
    visit(node->value);
    visit_tree(node->left, visit);
    visit_tree(node->right, visit);
  }

  static void destroy_tree(Node* node) noexcept {
    if (node == nullptr) return;
    destroy_tree(node->left);
    destroy_tree(node->right);
    delete node;
  }

  void destroy() noexcept {
    for (Node*& root : spine_) {
      destroy_tree(root);
      root = nullptr;
    }
    size_ = 0;
  }

  std::array<Node*, kMaxRank> spine_{};
  std::uint64_t size_ = 0;
};

/// The bag-merge monoid: identity is the empty bag; reduce is Bag::merge.
/// Associative and commutative, so PBFS needs only the set of inserted
/// elements to be deterministic — which it is.
template <typename T>
struct bag_merge {
  using value_type = Bag<T>;
  value_type identity() const { return {}; }
  void reduce(value_type& left, value_type& right) const {
    left.merge(std::move(right));
  }
};

}  // namespace cilkm::pbfs
