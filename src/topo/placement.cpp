#include "topo/placement.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#if defined(__linux__)
#include <sched.h>
#endif

namespace cilkm::topo {

const char* placement_name(Placement p) noexcept {
  switch (p) {
    case Placement::kSpread: return "spread";
    case Placement::kCompact: return "compact";
  }
  return "?";
}

bool parse_placement(const std::string& text, Placement* out) {
  if (text == "spread") {
    *out = Placement::kSpread;
    return true;
  }
  if (text == "compact") {
    *out = Placement::kCompact;
    return true;
  }
  return false;
}

std::vector<unsigned> assign_cpus(const Topology& topo, unsigned num_workers,
                                  Placement policy) {
  struct Ranked {
    unsigned cpu;
    unsigned core;
    unsigned package;
    unsigned smt_rank;  // 0 for a core's first thread, 1 for its sibling, …
  };
  std::vector<Ranked> ranked;
  ranked.reserve(topo.cpus().size());
  std::map<unsigned, unsigned> seen_per_core;
  for (const CpuInfo& info : topo.cpus()) {  // cpus() ascends by id
    ranked.push_back(
        Ranked{info.cpu, info.core, info.package, seen_per_core[info.core]++});
  }

  std::vector<unsigned> order;
  order.reserve(ranked.size());
  if (policy == Placement::kCompact) {
    // Siblings adjacent, cores adjacent, one package at a time.
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const Ranked& a, const Ranked& b) {
                       return std::tie(a.package, a.core, a.smt_rank, a.cpu) <
                              std::tie(b.package, b.core, b.smt_rank, b.cpu);
                     });
    for (const Ranked& r : ranked) order.push_back(r.cpu);
  } else {
    // Spread: within each package, distinct cores before SMT siblings; then
    // interleave the packages round-robin so consecutive workers land as far
    // apart as possible.
    std::map<unsigned, std::vector<Ranked>> per_package;
    for (const Ranked& r : ranked) per_package[r.package].push_back(r);
    for (auto& [package, bucket] : per_package) {
      std::stable_sort(bucket.begin(), bucket.end(),
                       [](const Ranked& a, const Ranked& b) {
                         return std::tie(a.smt_rank, a.core, a.cpu) <
                                std::tie(b.smt_rank, b.core, b.cpu);
                       });
    }
    for (std::size_t i = 0; order.size() < ranked.size(); ++i) {
      for (auto& [package, bucket] : per_package) {
        if (i < bucket.size()) order.push_back(bucket[i].cpu);
      }
    }
  }

  std::vector<unsigned> out(num_workers);
  for (unsigned w = 0; w < num_workers; ++w) out[w] = order[w % order.size()];
  return out;
}

bool pin_current_thread(unsigned cpu) noexcept {
#if defined(__linux__)
  if (cpu >= CPU_SETSIZE) return false;
  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(cpu, &one);
  return sched_setaffinity(0, sizeof one, &one) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace cilkm::topo
