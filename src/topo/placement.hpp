// Worker placement: map worker ids onto the topology's CPUs and optionally
// pin the calling thread. Two policies:
//
//   kSpread  (default) — round-robin across packages, distinct physical
//     cores before SMT siblings: maximises cache and memory bandwidth per
//     worker, the right default for the paper's bandwidth-hungry SPA view
//     stores.
//   kCompact — fill core by core (siblings adjacent), package by package:
//     minimises steal latency between neighbouring worker ids, useful when
//     the working set fits one package's LLC.
//
// With more workers than CPUs the assignment wraps modulo the CPU order, so
// oversubscribed pools (the test suite's bread and butter) stay valid.
#pragma once

#include <string>
#include <vector>

#include "topo/topology.hpp"

namespace cilkm::topo {

enum class Placement : int { kSpread = 0, kCompact = 1 };

const char* placement_name(Placement p) noexcept;

/// Parse "spread" | "compact"; returns false on anything else.
bool parse_placement(const std::string& text, Placement* out);

/// worker id -> logical cpu id for `num_workers` workers. Never empty;
/// wraps modulo the topology's CPU count when oversubscribed.
std::vector<unsigned> assign_cpus(const Topology& topo, unsigned num_workers,
                                  Placement policy);

/// Pin the calling thread to one logical CPU. Returns false (leaving
/// affinity unchanged) when unsupported or rejected by the kernel — callers
/// treat pinning as best-effort.
bool pin_current_thread(unsigned cpu) noexcept;

}  // namespace cilkm::topo
