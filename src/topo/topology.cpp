#include "topo/topology.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <system_error>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <sched.h>
#endif

namespace cilkm::topo {

namespace fs = std::filesystem;

namespace {

/// Read a small sysfs file into `out` (trailing whitespace stripped).
/// Returns false when the file is missing or unreadable.
bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  out->clear();
  char buf[256];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out->append(buf, n);
  std::fclose(f);
  while (!out->empty() && std::isspace(static_cast<unsigned char>(out->back()))) {
    out->pop_back();
  }
  return true;
}

/// Parse a sysfs integer file (core_id, physical_package_id). sysfs reports
/// -1 for "unknown"; map that (and parse failures) to `fallback`.
bool read_int(const std::string& path, long* out) {
  std::string text;
  if (!read_file(path, &text)) return false;
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str()) return false;
  *out = v;
  return true;
}

std::vector<unsigned> intersect(const std::vector<unsigned>& a,
                                const std::vector<unsigned>& b) {
  std::vector<unsigned> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

unsigned fallback_cpu_count() {
  return std::max(1u, std::thread::hardware_concurrency());
}

}  // namespace

std::vector<unsigned> parse_cpulist(const std::string& text) {
  std::vector<unsigned> out;
  const char* p = text.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const unsigned long lo = std::strtoul(p, &end, 10);
    if (end == p) break;
    unsigned long hi = lo;
    p = end;
    if (*p == '-') {
      ++p;
      hi = std::strtoul(p, &end, 10);
      if (end == p || hi < lo) break;
      p = end;
    }
    for (unsigned long c = lo; c <= hi; ++c) out.push_back(static_cast<unsigned>(c));
    if (*p == ',') ++p;
    else break;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Topology Topology::flat(unsigned num_cpus) {
  std::vector<unsigned> ids(std::max(1u, num_cpus));
  for (unsigned i = 0; i < ids.size(); ++i) ids[i] = i;
  return flat_over(std::move(ids));
}

Topology Topology::flat_over(std::vector<unsigned> cpu_ids) {
  std::sort(cpu_ids.begin(), cpu_ids.end());
  cpu_ids.erase(std::unique(cpu_ids.begin(), cpu_ids.end()), cpu_ids.end());
  if (cpu_ids.empty()) cpu_ids.push_back(0);
  Topology t;
  t.cpus_.reserve(cpu_ids.size());
  for (unsigned i = 0; i < cpu_ids.size(); ++i) {
    t.cpus_.push_back(CpuInfo{cpu_ids[i], /*core=*/i, /*package=*/0, /*node=*/0});
  }
  t.num_cores_ = static_cast<unsigned>(cpu_ids.size());
  t.num_packages_ = 1;
  t.num_nodes_ = 1;
  t.from_sysfs_ = false;
  return t;
}

Topology Topology::discover_at(const std::string& sysfs_root,
                               const std::vector<unsigned>* affinity) {
  // Which CPUs exist: the online cpulist. Without it there is no usable
  // sysfs tree — fall back to a flat topology over the affinity mask (or a
  // hardware_concurrency guess when there is no mask either).
  std::string online_text;
  std::vector<unsigned> online;
  if (read_file(sysfs_root + "/cpu/online", &online_text)) {
    online = parse_cpulist(online_text);
  }
  if (online.empty()) {
    if (affinity != nullptr && !affinity->empty()) return flat_over(*affinity);
    return flat(fallback_cpu_count());
  }

  std::vector<unsigned> usable = online;
  if (affinity != nullptr && !affinity->empty()) {
    std::vector<unsigned> mask = *affinity;
    std::sort(mask.begin(), mask.end());
    usable = intersect(online, mask);
    // A mask entirely outside the online list (stale cpuset): trust the
    // mask — the kernel will run us somewhere — but with no sysfs data.
    if (usable.empty()) return flat_over(mask);
  }

  // Per-CPU structure. Dense core ids are assigned per (package, core_id)
  // pair because sysfs core_id is only unique within a package.
  Topology t;
  std::map<std::pair<long, long>, unsigned> core_index;
  std::set<long> packages;
  bool parsed_any = false;
  for (const unsigned cpu : usable) {
    const std::string base = sysfs_root + "/cpu/cpu" + std::to_string(cpu) +
                             "/topology/";
    long package = 0, core = static_cast<long>(cpu);
    const bool got_pkg = read_int(base + "physical_package_id", &package);
    const bool got_core = read_int(base + "core_id", &core);
    parsed_any = parsed_any || got_pkg || got_core;
    if (package < 0) package = 0;
    if (core < 0) core = static_cast<long>(cpu);
    // Un-parseable CPUs get a core index of their own (no false siblings).
    const auto key = got_core ? std::make_pair(package, core)
                              : std::make_pair(package, -1L - cpu);
    const auto [it, inserted] =
        core_index.emplace(key, static_cast<unsigned>(core_index.size()));
    packages.insert(package);
    t.cpus_.push_back(CpuInfo{cpu, it->second,
                              static_cast<unsigned>(package), 0});
  }
  if (!parsed_any) return flat_over(usable);

  // NUMA nodes from the sibling node/ tree; absent, node mirrors package.
  // Node ids need not be contiguous (offlined nodes, memory hotplug), so
  // enumerate the node<K> directories instead of counting from zero.
  std::set<unsigned> nodes;
  bool any_node = false;
  std::error_code ec;
  for (const auto& entry :
       fs::directory_iterator(sysfs_root + "/node", ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("node", 0) != 0) continue;
    char* end = nullptr;
    const unsigned long node = std::strtoul(name.c_str() + 4, &end, 10);
    if (end == name.c_str() + 4 || *end != '\0') continue;
    std::string list_text;
    if (!read_file(entry.path().string() + "/cpulist", &list_text)) continue;
    any_node = true;
    for (const unsigned cpu : parse_cpulist(list_text)) {
      for (CpuInfo& info : t.cpus_) {
        if (info.cpu == cpu) info.node = static_cast<unsigned>(node);
      }
    }
  }
  for (CpuInfo& info : t.cpus_) {
    if (!any_node) info.node = info.package;
    nodes.insert(info.node);
  }

  t.num_cores_ = static_cast<unsigned>(core_index.size());
  t.num_packages_ = static_cast<unsigned>(packages.size());
  t.num_nodes_ = static_cast<unsigned>(nodes.size());
  t.from_sysfs_ = true;
  return t;
}

Topology Topology::discover() {
#if defined(__linux__)
  std::vector<unsigned> affinity;
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof set, &set) == 0) {
    for (unsigned cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
      if (CPU_ISSET(cpu, &set)) affinity.push_back(cpu);
    }
  }
  return discover_at("/sys/devices/system",
                     affinity.empty() ? nullptr : &affinity);
#else
  return flat(fallback_cpu_count());
#endif
}

const Topology& Topology::machine() {
  static const Topology topology = discover();
  return topology;
}

const CpuInfo* Topology::find(unsigned cpu_id) const noexcept {
  const auto it = std::lower_bound(
      cpus_.begin(), cpus_.end(), cpu_id,
      [](const CpuInfo& info, unsigned id) { return info.cpu < id; });
  if (it == cpus_.end() || it->cpu != cpu_id) return nullptr;
  return &*it;
}

Topology::Proximity Topology::proximity(unsigned cpu_a,
                                        unsigned cpu_b) const noexcept {
  if (cpu_a == cpu_b) return Proximity::kSameCore;
  const CpuInfo* a = find(cpu_a);
  const CpuInfo* b = find(cpu_b);
  if (a == nullptr || b == nullptr) return Proximity::kRemote;
  if (a->core == b->core) return Proximity::kSameCore;
  if (a->package == b->package && a->node == b->node) {
    return Proximity::kSamePackage;
  }
  return Proximity::kRemote;
}

std::string Topology::describe() const {
  return std::to_string(num_cpus()) + " cpus / " + std::to_string(num_cores_) +
         " cores / " + std::to_string(num_packages_) + " packages / " +
         std::to_string(num_nodes_) + " nodes " +
         (from_sysfs_ ? "(sysfs)" : "(flat fallback)");
}

}  // namespace cilkm::topo
