// CPU-topology discovery: which logical CPUs the process may use, and how
// they group into SMT siblings, physical cores, packages, and NUMA nodes.
// The runtime uses this to place (and optionally pin) workers and to order
// steal victims by proximity — with a persistent worker pool (PR 3) the
// per-worker reducer view stores stay cache/NUMA-resident across run()
// epochs, so placement is worth preserving.
//
// Discovery reads the Linux sysfs tree (/sys/devices/system by default;
// tests point it at canned trees) intersected with the current affinity
// mask from sched_getaffinity, and degrades to a flat single-package
// topology when sysfs is missing or unparseable (containers with a
// restricted /sys, non-Linux hosts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cilkm::topo {

/// One logical CPU the process may run on.
struct CpuInfo {
  unsigned cpu = 0;      ///< logical id (sysfs cpuN / sched_setaffinity bit)
  unsigned core = 0;     ///< dense physical-core index, unique across packages
  unsigned package = 0;  ///< physical_package_id as reported by sysfs
  unsigned node = 0;     ///< NUMA node; equals `package` when undiscoverable
};

/// Parse a sysfs cpulist ("0-3,8,10-11") into ascending cpu ids. Malformed
/// input yields the longest valid prefix (sysfs itself is trusted; the
/// leniency is for canned test trees).
std::vector<unsigned> parse_cpulist(const std::string& text);

class Topology {
 public:
  /// Proximity classes for victim ordering, nearest first. Two SMT siblings
  /// share L1/L2; two cores of one package share the last-level cache; the
  /// rest is a cross-package (or cross-NUMA-node) hop.
  enum class Proximity : std::uint8_t {
    kSameCore = 0,
    kSamePackage = 1,
    kRemote = 2,
  };

  /// Discover the live machine: sysfs structure restricted to the CPUs in
  /// the calling thread's affinity mask. Falls back to flat() when either
  /// source is unavailable.
  static Topology discover();

  /// Discovery with injectable inputs (the golden-file test seam).
  /// `sysfs_root` mimics /sys/devices/system (containing cpu/ and
  /// optionally node/); `affinity`, when non-null, plays the role of the
  /// sched_getaffinity mask.
  static Topology discover_at(const std::string& sysfs_root,
                              const std::vector<unsigned>* affinity = nullptr);

  /// Flat fallback: cpus 0..n-1, one package, every cpu its own core.
  static Topology flat(unsigned num_cpus);

  /// Flat fallback over explicit cpu ids (a restricted mask with no sysfs).
  static Topology flat_over(std::vector<unsigned> cpu_ids);

  /// The process-wide topology, discovered once on first use.
  static const Topology& machine();

  unsigned num_cpus() const noexcept {
    return static_cast<unsigned>(cpus_.size());
  }
  unsigned num_cores() const noexcept { return num_cores_; }
  unsigned num_packages() const noexcept { return num_packages_; }
  unsigned num_nodes() const noexcept { return num_nodes_; }

  /// False when discovery fell back to the flat topology.
  bool from_sysfs() const noexcept { return from_sysfs_; }

  /// All usable CPUs, ascending by logical id.
  const std::vector<CpuInfo>& cpus() const noexcept { return cpus_; }

  /// Lookup by logical id; nullptr when the id is not usable here.
  const CpuInfo* find(unsigned cpu_id) const noexcept;

  /// Proximity of two logical CPUs. Identical ids are kSameCore; ids this
  /// topology does not know are kRemote (conservative for victim ordering).
  Proximity proximity(unsigned cpu_a, unsigned cpu_b) const noexcept;

  /// One-line human summary, e.g. "8 cpus / 4 cores / 2 packages / 2 nodes
  /// (sysfs)".
  std::string describe() const;

 private:
  std::vector<CpuInfo> cpus_;  // sorted by logical id
  unsigned num_cores_ = 0;
  unsigned num_packages_ = 0;
  unsigned num_nodes_ = 0;
  bool from_sysfs_ = false;
};

}  // namespace cilkm::topo
