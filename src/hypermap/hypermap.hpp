// The hypermap reducer-view map of Cilk++/Cilk Plus (paper Section 3): a
// worker-local hash table mapping a reducer's address to its local view.
// Open addressing with linear probing; the table starts small and expands,
// so lookups cost a hash plus a probe chain and insertions occasionally
// trigger an expansion — the overheads the paper's Figures 6 and 7 measure
// against the memory-mapping approach.
//
// View transferal in this scheme is cheap by design ("switching a few
// pointers"): a deposit simply moves the HyperMap object.
#pragma once

#include <cstdint>
#include <utility>

#include "core/view_ops.hpp"
#include "mem/internal_alloc.hpp"
#include "util/assert.hpp"

namespace cilkm::hypermap {

struct Entry {
  const void* key = nullptr;  // reducer address
  void* view = nullptr;
  const ViewOps* ops = nullptr;
};

class HyperMap {
 public:
  static constexpr std::size_t kInitialCapacity = 16;  // power of two

  HyperMap() = default;
  HyperMap(HyperMap&& other) noexcept { swap(other); }
  HyperMap& operator=(HyperMap&& other) noexcept {
    if (this != &other) {
      free_table(table_, capacity_);
      table_ = nullptr;
      capacity_ = size_ = 0;
      swap(other);
    }
    return *this;
  }
  HyperMap(const HyperMap&) = delete;
  HyperMap& operator=(const HyperMap&) = delete;

  ~HyperMap() { free_table(table_, capacity_); }

  bool empty() const noexcept { return size_ == 0; }
  std::size_t size() const noexcept { return size_; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Find the entry for `key`, or nullptr. The hot lookup path.
  Entry* lookup(const void* key) noexcept {
    if (capacity_ == 0) return nullptr;
    Entry& e = table_[probe(key)];
    return e.key == key ? &e : nullptr;
  }

  /// Insert a view for `key`; the key must NOT be present. The precondition
  /// is enforced in every build mode: a duplicate insert would corrupt
  /// size_ and leak the old view, and the probe walk reads each key anyway,
  /// so the check is free.
  void insert(const void* key, void* view, const ViewOps* ops) {
    if (size_ + 1 > capacity_ - capacity_ / 4) expand();
    const std::size_t i = probe(key);
    CILKM_CHECK(table_[i].key == nullptr, "duplicate hypermap insertion");
    table_[i] = Entry{key, view, ops};
    ++size_;
  }

  /// Insert a view for `key`, or overwrite an existing entry in place.
  /// Returns the replaced view (the caller owns destroying it), or nullptr
  /// if the key was absent. A replacement changes neither size() nor
  /// capacity().
  void* insert_or_assign(const void* key, void* view, const ViewOps* ops) {
    if (capacity_ != 0) {
      Entry& e = table_[probe(key)];
      if (e.key == key) {
        void* old = e.view;
        e.view = view;
        e.ops = ops;
        return old;
      }
    }
    insert(key, view, ops);
    return nullptr;
  }

  /// Remove the entry for `key` (reducer destruction mid-scope). Uses
  /// backward-shift deletion to keep probe chains intact.
  void erase(const void* key) noexcept {
    Entry* e = lookup(key);
    if (e == nullptr) return;
    const std::size_t mask = capacity_ - 1;
    std::size_t hole = static_cast<std::size_t>(e - table_);
    std::size_t i = (hole + 1) & mask;
    while (table_[i].key != nullptr) {
      const std::size_t home = hash(table_[i].key) & mask;
      // Move the entry back if its home position lies at or "before" the
      // hole along the probe path.
      if (((i - home) & mask) >= ((i - hole) & mask)) {
        table_[hole] = table_[i];
        hole = i;
      }
      i = (i + 1) & mask;
    }
    table_[hole] = Entry{};
    --size_;
  }

  template <typename Visitor>
  void for_each(Visitor&& visit) {
    for (std::size_t i = 0; i < capacity_; ++i) {
      if (table_[i].key != nullptr) visit(table_[i]);
    }
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < capacity_; ++i) table_[i] = Entry{};
    size_ = 0;
  }

  void swap(HyperMap& other) noexcept {
    std::swap(table_, other.table_);
    std::swap(capacity_, other.capacity_);
    std::swap(size_, other.size_);
  }

  /// The key hash (SplitMix64 finalizer over the pointer bits). Public so
  /// tests can construct adversarial probe chains deterministically.
  static std::size_t hash(const void* key) noexcept {
    std::uint64_t z = reinterpret_cast<std::uintptr_t>(key);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }

 private:

  /// Walk `key`'s probe chain: the index of its entry if present, else of
  /// the first empty slot where it would be inserted. capacity_ != 0.
  std::size_t probe(const void* key) const noexcept {
    const std::size_t mask = capacity_ - 1;
    std::size_t i = hash(key) & mask;
    while (table_[i].key != nullptr && table_[i].key != key) {
      i = (i + 1) & mask;
    }
    return i;
  }

  /// Rehash path only: keys come from the old table, so they are unique by
  /// construction and the duplicate check can stay debug-only here.
  void insert_nogrow(const void* key, void* view, const ViewOps* ops) noexcept {
    const std::size_t i = probe(key);
    CILKM_DCHECK(table_[i].key == nullptr, "duplicate hypermap insertion");
    table_[i] = Entry{key, view, ops};
    ++size_;
  }

  void expand() {
    const std::size_t new_cap = capacity_ == 0 ? kInitialCapacity : capacity_ * 2;
    Entry* old_table = table_;
    const std::size_t old_cap = capacity_;
    table_ = alloc_table(new_cap);
    capacity_ = new_cap;
    size_ = 0;
    for (std::size_t i = 0; i < old_cap; ++i) {
      if (old_table[i].key != nullptr) {
        insert_nogrow(old_table[i].key, old_table[i].view, old_table[i].ops);
      }
    }
    free_table(old_table, old_cap);
  }

  /// Entry tables come from the tagged internal allocator. A deposited map
  /// moves between workers and is merged (and its table freed) wherever the
  /// join lands, so the cross-worker free path is the allocator's problem,
  /// not this class's.
  static Entry* alloc_table(std::size_t cap) {
    void* p = mem::InternalAlloc::instance().allocate(
        cap * sizeof(Entry), mem::AllocTag::kHypermapNodes);
    Entry* table = static_cast<Entry*>(p);
    for (std::size_t i = 0; i < cap; ++i) ::new (&table[i]) Entry{};
    return table;
  }
  static void free_table(Entry* table, std::size_t cap) noexcept {
    if (table == nullptr) return;
    mem::InternalAlloc::instance().deallocate(table, cap * sizeof(Entry),
                                              mem::AllocTag::kHypermapNodes);
  }

  Entry* table_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
};

}  // namespace cilkm::hypermap
