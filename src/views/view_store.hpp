// The ViewStore layer: the explicit view-lookup / view-transferal contract
// that the paper's two reducer mechanisms (and any future one) implement.
//
// The paper's central claim is that the memory-mapped (TLMM/SPA) scheme and
// the Cilk Plus hypermap are interchangeable implementations of one
// contract:
//
//   lookup   find the executing worker's local view of a reducer
//   install  bind a freshly created identity view (lookup-miss path)
//   extract  unbind and return a view (reducer destruction)
//   deposit  move ALL local views into a frame's deposit placeholder
//            ("view transferal", paper Section 7)
//   install_deposit
//            adopt a whole deposit into an empty store
//   merge    hypermerge a deposit into the ambient views, preserving the
//            serial operand order of every ⊗ (deposit-left = deposit is
//            serially earlier; deposit-right = ambient is earlier)
//   collapse fold every remaining view into its reducer's leftmost view
//            (quiescence)
//
// Three stores implement the contract, selected per reducer by its Policy:
//
//   SpaViewStore       mm_policy        the paper's contribution — SPA maps
//                                       in an emulated-TLMM region
//   HyperMapViewStore  hypermap_policy  the Cilk Plus baseline hash table
//   FlatViewStore      flat_policy      ablation: a dense reducer-id-indexed
//                                       array (no hashing, no mmap
//                                       emulation) — the "what if ids were
//                                       perfect" upper bound
//
// A worker owns one ViewStoreSet holding all three, so every program can mix
// policies and the benchmarks compare them inside a single binary. The
// scheduling code (Worker) only ever talks to ViewStoreSet; it no longer
// knows how views are kept.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/view_ops.hpp"
#include "hypermap/hypermap.hpp"
#include "spa/page_pool.hpp"
#include "spa/slot_alloc.hpp"
#include "spa/spa_map.hpp"
#include "tlmm/region.hpp"
#include "util/stats.hpp"

namespace cilkm::views {

/// One transferred flat-store view: the reducer's dense id plus the
/// (view, ops) pair, the flat analogue of a public SPA-map entry.
struct FlatDepositEntry {
  std::uint32_t id;
  spa::ViewSlot slot;
};

/// A deposited set of local views, one component per store. All three
/// mechanisms coexist in one program, which is how the benchmarks compare
/// them in a single binary.
struct ViewSetDeposit {
  std::vector<spa::SpaDepositEntry> spa;
  hypermap::HyperMap hmap;
  std::vector<FlatDepositEntry> flat;

  bool empty() const noexcept {
    return spa.empty() && hmap.empty() && flat.empty();
  }
};

// ---------------------------------------------------------------------------
// SpaViewStore — the memory-mapped mechanism (mm_policy)
// ---------------------------------------------------------------------------

/// The TLMM/SPA state that used to be inlined in Worker: the emulated
/// private region, the touched-page log, and the Hoard-style slot cache.
/// Public pages come from the tagged internal allocator via PagePool (the
/// calling thread's magazine is the per-worker cache). A reducer's key is
/// its tlmm_addr (a byte offset valid in every worker's region).
class SpaViewStore {
 public:
  explicit SpaViewStore(WorkerStats* stats);
  ~SpaViewStore();

  SpaViewStore(const SpaViewStore&) = delete;
  SpaViewStore& operator=(const SpaViewStore&) = delete;

  std::byte* base() const noexcept { return region_.base(); }
  spa::LocalSlotCache& slot_cache() noexcept { return slot_cache_; }

  spa::ViewSlot* slot_at(std::uint64_t offset) noexcept {
    return reinterpret_cast<spa::ViewSlot*>(region_.base() + offset);
  }
  spa::SpaPage* page_at(std::uint32_t page) noexcept {
    return reinterpret_cast<spa::SpaPage*>(region_.base() +
                                           std::size_t{page} * spa::kPageBytes);
  }

  /// Install a freshly created view into the private slot at `offset`
  /// (the reducer lookup-miss path and the merge-adopt path).
  void install(std::uint64_t offset, void* view, const ViewOps* ops);

  /// Remove and return the view at `offset`, or nullptr (reducer dtor).
  void* extract(std::uint64_t offset);

  bool empty() const noexcept;

  /// View transferal: move every private SPA map into public pages in `out`.
  void deposit(std::vector<spa::SpaDepositEntry>* out);

  /// Adopt a deposit wholesale; the store must be empty.
  void install_deposit(std::vector<spa::SpaDepositEntry>* in);

  /// Hypermerge `in` into the ambient views; `deposit_is_left` gives the
  /// serial order of every ⊗ (deposit earlier vs ambient earlier).
  void merge(std::vector<spa::SpaDepositEntry>* in, bool deposit_is_left);

  void collapse_into_leftmosts();

 private:
  tlmm::WorkerRegion region_{spa::kRegionBytes};
  std::vector<std::uint32_t> touched_pages_;
  spa::LocalSlotCache slot_cache_;
  WorkerStats* stats_;
};

// ---------------------------------------------------------------------------
// HyperMapViewStore — the Cilk Plus baseline (hypermap_policy)
// ---------------------------------------------------------------------------

/// Wraps the worker-local HyperMap. A reducer's key is its address. View
/// transferal is a pointer switch, as in Cilk Plus.
class HyperMapViewStore {
 public:
  explicit HyperMapViewStore(WorkerStats* stats) : stats_(stats) {}

  HyperMapViewStore(const HyperMapViewStore&) = delete;
  HyperMapViewStore& operator=(const HyperMapViewStore&) = delete;

  hypermap::HyperMap& map() noexcept { return map_; }

  /// The hot lookup path: hash plus probe chain.
  hypermap::Entry* lookup(const void* key) noexcept {
    return map_.lookup(key);
  }

  void install(const void* key, void* view, const ViewOps* ops);

  /// Remove and return the view for `key`, or nullptr (reducer dtor).
  void* extract(const void* key);

  bool empty() const noexcept { return map_.empty(); }

  void deposit(hypermap::HyperMap* out) { *out = std::move(map_); }

  void install_deposit(hypermap::HyperMap* in) { map_ = std::move(*in); }

  /// The hypermerge rule: sequence through the smaller map and reduce into
  /// the larger one; swapping the physical tables flips which map survives
  /// but never the ⊗ operand order.
  void merge(hypermap::HyperMap&& deposit, bool deposit_is_left);

  void collapse_into_leftmosts();

 private:
  hypermap::HyperMap map_;
  WorkerStats* stats_;
};

// ---------------------------------------------------------------------------
// FlatViewStore — dense-id ablation (flat_policy)
// ---------------------------------------------------------------------------

/// A worker-indexed flat view array: reducer id → (view, ops), no hashing,
/// no mmap emulation. Lookup is one bounds check and one array load — the
/// cheapest conceivable implementation of the contract, which is exactly
/// what makes it a useful third point in the ablation benches.
class FlatViewStore {
 public:
  explicit FlatViewStore(WorkerStats* stats) : stats_(stats) {}

  FlatViewStore(const FlatViewStore&) = delete;
  FlatViewStore& operator=(const FlatViewStore&) = delete;

  /// The hot lookup path. Returns the view, or nullptr on a miss.
  void* lookup(std::uint32_t id) const noexcept {
    return id < slots_.size() ? slots_[id].view : nullptr;
  }

  void install(std::uint32_t id, void* view, const ViewOps* ops);

  /// Remove and return the view for `id`, or nullptr (reducer dtor).
  void* extract(std::uint32_t id);

  bool empty() const noexcept;

  /// How many ids the store has slots for; test hook.
  std::size_t capacity() const noexcept { return slots_.size(); }

  void deposit(std::vector<FlatDepositEntry>* out);
  void install_deposit(std::vector<FlatDepositEntry>* in);
  void merge(std::vector<FlatDepositEntry>* in, bool deposit_is_left);
  void collapse_into_leftmosts();

 private:
  std::vector<spa::ViewSlot> slots_;
  // Ids installed since the last transferal, so deposit/collapse never scan
  // the whole array. Stale entries (extracted ids) are skipped because their
  // slot is a null pair — same convention as the SPA touched-page log.
  std::vector<std::uint32_t> touched_;
  WorkerStats* stats_;
};

// ---------------------------------------------------------------------------
// ViewStoreSet — what a Worker owns
// ---------------------------------------------------------------------------

/// The union of one store per mechanism plus the view-transferal /
/// hypermerge engine over all of them. This is the whole interface the
/// scheduler needs: the join protocol deposits, installs, and merges entire
/// view sets without knowing how any store keeps its views.
class ViewStoreSet {
 public:
  explicit ViewStoreSet(WorkerStats* stats)
      : spa_(stats), hypermap_(stats), flat_(stats), stats_(stats) {}

  SpaViewStore& spa() noexcept { return spa_; }
  HyperMapViewStore& hypermap() noexcept { return hypermap_; }
  FlatViewStore& flat() noexcept { return flat_; }

  /// True iff no store holds any live view.
  bool empty() const noexcept;

  /// Move every local view of every store into `out` (view transferal).
  void deposit_ambient(ViewSetDeposit* out);

  /// Adopt a full deposit; requires an empty ambient.
  void install_deposit(ViewSetDeposit* in);

  /// Hypermerge a deposit that is serially EARLIER than the ambient views
  /// (deposit ⊗ ambient).
  void merge_deposit_left(ViewSetDeposit* in);

  /// Hypermerge a deposit that is serially LATER than the ambient views
  /// (ambient ⊗ deposit).
  void merge_deposit_right(ViewSetDeposit* in);

  /// Quiescence: fold every remaining view into its reducer's leftmost.
  void collapse_into_leftmosts();

 private:
  void merge_deposit(ViewSetDeposit* in, bool deposit_is_left);

  SpaViewStore spa_;
  HyperMapViewStore hypermap_;
  FlatViewStore flat_;
  WorkerStats* stats_;
};

}  // namespace cilkm::views
