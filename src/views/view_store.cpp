#include "views/view_store.hpp"

#include "util/assert.hpp"
#include "util/timing.hpp"

namespace cilkm::views {

// ---------------------------------------------------------------------------
// SpaViewStore
// ---------------------------------------------------------------------------

SpaViewStore::SpaViewStore(WorkerStats* stats) : stats_(stats) {}

SpaViewStore::~SpaViewStore() {
  spa::SlotAllocator::instance().flush(slot_cache_);
}

void SpaViewStore::install(std::uint64_t offset, void* view,
                           const ViewOps* ops) {
  ScopedTimerNs timer((*stats_)[StatCounter::kViewInsertNs]);
  const std::uint32_t page_idx = spa::offset_page(offset);
  spa::SpaPage* page = page_at(page_idx);
  spa::ViewSlot* slot = slot_at(offset);
  CILKM_DCHECK(slot->empty(), "installing over a live view");
  slot->view = view;
  slot->ops = ops;
  const bool first_in_page = page->num_valid == 0;
  page->note_insert(spa::offset_index(offset));
  if (first_in_page) touched_pages_.push_back(page_idx);
}

void* SpaViewStore::extract(std::uint64_t offset) {
  spa::ViewSlot* slot = slot_at(offset);
  if (slot->empty()) return nullptr;
  void* view = slot->view;
  *slot = spa::ViewSlot{nullptr, nullptr};
  spa::SpaPage* page = page_at(spa::offset_page(offset));
  CILKM_DCHECK(page->num_valid > 0, "page valid-count underflow");
  --page->num_valid;
  // The page stays in touched_pages_; transferal skips empty pages, and a
  // stale log entry is harmless because the slot is now a null pair.
  return view;
}

bool SpaViewStore::empty() const noexcept {
  for (const std::uint32_t page_idx : touched_pages_) {
    const auto* page = reinterpret_cast<const spa::SpaPage*>(
        region_.base() + std::size_t{page_idx} * spa::kPageBytes);
    if (!page->all_empty()) return false;
  }
  return true;
}

void SpaViewStore::deposit(std::vector<spa::SpaDepositEntry>* out) {
  ScopedTimerNs timer((*stats_)[StatCounter::kViewTransferNs]);
  for (const std::uint32_t page_idx : touched_pages_) {
    spa::SpaPage* priv = page_at(page_idx);
    if (priv->all_empty()) continue;
    spa::SpaPage* pub = spa::PagePool::instance().acquire();
    priv->for_each_valid([&](std::uint32_t idx, spa::ViewSlot& slot) {
      pub->views[idx] = slot;
      pub->note_insert(idx);
      slot = spa::ViewSlot{nullptr, nullptr};
      ++(*stats_)[StatCounter::kViewsTransferred];
    });
    priv->num_valid = 0;
    priv->num_logs = 0;
    out->push_back({page_idx, pub});
  }
  touched_pages_.clear();
}

void SpaViewStore::install_deposit(std::vector<spa::SpaDepositEntry>* in) {
  for (auto& [page_idx, pub] : *in) {
    pub->for_each_valid([&](std::uint32_t idx, spa::ViewSlot& dslot) {
      install(spa::slot_offset(page_idx, idx), dslot.view, dslot.ops);
      dslot = spa::ViewSlot{nullptr, nullptr};
    });
    pub->num_valid = 0;
    pub->num_logs = 0;
    spa::PagePool::instance().release(pub);
  }
  in->clear();
}

void SpaViewStore::merge(std::vector<spa::SpaDepositEntry>* in,
                         bool deposit_is_left) {
  for (auto& [page_idx, pub] : *in) {
    pub->for_each_valid([&](std::uint32_t idx, spa::ViewSlot& dslot) {
      const std::uint64_t offset = spa::slot_offset(page_idx, idx);
      spa::ViewSlot* mine = slot_at(offset);
      if (mine->empty()) {
        install(offset, dslot.view, dslot.ops);
      } else if (deposit_is_left) {
        // Deposit is serially earlier: fold our view into it, then adopt it.
        dslot.ops->reduce(dslot.ops->reducer, dslot.view, mine->view);
        mine->view = dslot.view;
      } else {
        mine->ops->reduce(mine->ops->reducer, mine->view, dslot.view);
      }
      dslot = spa::ViewSlot{nullptr, nullptr};
    });
    pub->num_valid = 0;
    pub->num_logs = 0;
    spa::PagePool::instance().release(pub);
  }
  in->clear();
}

void SpaViewStore::collapse_into_leftmosts() {
  for (const std::uint32_t page_idx : touched_pages_) {
    spa::SpaPage* page = page_at(page_idx);
    if (page->all_empty()) continue;
    page->for_each_valid([&](std::uint32_t, spa::ViewSlot& slot) {
      slot.ops->collapse(slot.ops->reducer, slot.view);
      slot = spa::ViewSlot{nullptr, nullptr};
    });
    page->num_valid = 0;
    page->num_logs = 0;
  }
  touched_pages_.clear();
}

// ---------------------------------------------------------------------------
// HyperMapViewStore
// ---------------------------------------------------------------------------

void HyperMapViewStore::install(const void* key, void* view,
                                const ViewOps* ops) {
  ScopedTimerNs timer((*stats_)[StatCounter::kViewInsertNs]);
  map_.insert(key, view, ops);
}

void* HyperMapViewStore::extract(const void* key) {
  hypermap::Entry* entry = map_.lookup(key);
  if (entry == nullptr) return nullptr;
  void* view = entry->view;
  map_.erase(key);
  return view;
}

void HyperMapViewStore::merge(hypermap::HyperMap&& deposit,
                              bool deposit_is_left) {
  if (deposit.empty()) return;
  // Sequence through the map with fewer views and reduce into the larger
  // one (the paper's hypermerge rule). Swapping the table objects flips
  // which physical map survives but not the ⊗ operand order.
  if (deposit.size() > map_.size()) {
    map_.swap(deposit);
    deposit_is_left = !deposit_is_left;
  }
  deposit.for_each([&](hypermap::Entry& e) {
    hypermap::Entry* mine = map_.lookup(e.key);
    if (mine == nullptr) {
      map_.insert(e.key, e.view, e.ops);
      return;
    }
    if (deposit_is_left) {
      // e is serially earlier: result = e.view ⊗ mine->view, kept in e.view.
      e.ops->reduce(e.ops->reducer, e.view, mine->view);
      mine->view = e.view;
    } else {
      mine->ops->reduce(mine->ops->reducer, mine->view, e.view);
    }
  });
  deposit = hypermap::HyperMap{};
}

void HyperMapViewStore::collapse_into_leftmosts() {
  map_.for_each([&](hypermap::Entry& e) {
    e.ops->collapse(e.ops->reducer, e.view);
  });
  map_.clear();
}

// ---------------------------------------------------------------------------
// FlatViewStore
// ---------------------------------------------------------------------------

void FlatViewStore::install(std::uint32_t id, void* view, const ViewOps* ops) {
  ScopedTimerNs timer((*stats_)[StatCounter::kViewInsertNs]);
  if (id >= slots_.size()) {
    slots_.resize(static_cast<std::size_t>(id) + 1,
                  spa::ViewSlot{nullptr, nullptr});
  }
  spa::ViewSlot& slot = slots_[id];
  CILKM_DCHECK(slot.empty(), "installing over a live flat view");
  slot.view = view;
  slot.ops = ops;
  touched_.push_back(id);
}

void* FlatViewStore::extract(std::uint32_t id) {
  if (id >= slots_.size() || slots_[id].empty()) return nullptr;
  void* view = slots_[id].view;
  slots_[id] = spa::ViewSlot{nullptr, nullptr};
  // The id stays in touched_; a stale entry is skipped as a null pair.
  return view;
}

bool FlatViewStore::empty() const noexcept {
  for (const std::uint32_t id : touched_) {
    if (!slots_[id].empty()) return false;
  }
  return true;
}

void FlatViewStore::deposit(std::vector<FlatDepositEntry>* out) {
  ScopedTimerNs timer((*stats_)[StatCounter::kViewTransferNs]);
  for (const std::uint32_t id : touched_) {
    spa::ViewSlot& slot = slots_[id];
    if (slot.empty()) continue;  // extracted, or a duplicate touched entry
    out->push_back({id, slot});
    slot = spa::ViewSlot{nullptr, nullptr};
    ++(*stats_)[StatCounter::kViewsTransferred];
  }
  touched_.clear();
}

void FlatViewStore::install_deposit(std::vector<FlatDepositEntry>* in) {
  for (FlatDepositEntry& e : *in) {
    install(e.id, e.slot.view, e.slot.ops);
  }
  in->clear();
}

void FlatViewStore::merge(std::vector<FlatDepositEntry>* in,
                          bool deposit_is_left) {
  for (FlatDepositEntry& e : *in) {
    spa::ViewSlot* mine =
        e.id < slots_.size() && !slots_[e.id].empty() ? &slots_[e.id] : nullptr;
    if (mine == nullptr) {
      install(e.id, e.slot.view, e.slot.ops);
    } else if (deposit_is_left) {
      e.slot.ops->reduce(e.slot.ops->reducer, e.slot.view, mine->view);
      mine->view = e.slot.view;
    } else {
      mine->ops->reduce(mine->ops->reducer, mine->view, e.slot.view);
    }
  }
  in->clear();
}

void FlatViewStore::collapse_into_leftmosts() {
  for (const std::uint32_t id : touched_) {
    spa::ViewSlot& slot = slots_[id];
    if (slot.empty()) continue;
    slot.ops->collapse(slot.ops->reducer, slot.view);
    slot = spa::ViewSlot{nullptr, nullptr};
  }
  touched_.clear();
}

// ---------------------------------------------------------------------------
// ViewStoreSet — the view-transferal / hypermerge engine
// ---------------------------------------------------------------------------

bool ViewStoreSet::empty() const noexcept {
  return spa_.empty() && hypermap_.empty() && flat_.empty();
}

void ViewStoreSet::deposit_ambient(ViewSetDeposit* out) {
  CILKM_DCHECK(out->empty(), "deposit placeholder already occupied");
  spa_.deposit(&out->spa);
  // Hypermap transferal is a pointer switch, as in Cilk Plus.
  hypermap_.deposit(&out->hmap);
  flat_.deposit(&out->flat);
}

void ViewStoreSet::install_deposit(ViewSetDeposit* in) {
  CILKM_DCHECK(empty(), "install_deposit requires an empty ambient");
  spa_.install_deposit(&in->spa);
  hypermap_.install_deposit(&in->hmap);
  flat_.install_deposit(&in->flat);
}

void ViewStoreSet::merge_deposit(ViewSetDeposit* in, bool deposit_is_left) {
  ScopedTimerNs timer((*stats_)[StatCounter::kHypermergeNs]);
  ++(*stats_)[StatCounter::kHypermerges];
  spa_.merge(&in->spa, deposit_is_left);
  hypermap_.merge(std::move(in->hmap), deposit_is_left);
  flat_.merge(&in->flat, deposit_is_left);
}

void ViewStoreSet::merge_deposit_left(ViewSetDeposit* in) {
  merge_deposit(in, /*deposit_is_left=*/true);
}

void ViewStoreSet::merge_deposit_right(ViewSetDeposit* in) {
  merge_deposit(in, /*deposit_is_left=*/false);
}

void ViewStoreSet::collapse_into_leftmosts() {
  spa_.collapse_into_leftmosts();
  hypermap_.collapse_into_leftmosts();
  flat_.collapse_into_leftmosts();
}

}  // namespace cilkm::views
