// Dense reducer-id allocation for flat_policy reducers. The flat view store
// indexes a per-worker array by reducer id, so ids must be small, dense, and
// aggressively recycled — a freed id is reused LIFO, mirroring the slot
// recycling of the TLMM scheme (and keeping the per-worker arrays compact).
// Allocation is a plain mutex-protected free list: reducer construction is
// not a hot path, and the flat scheme's whole point is that it adds *no*
// machinery beyond an array index.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace cilkm::views {

/// Hard ceiling on concurrently live flat reducer ids. Every worker's flat
/// store is an array indexed by id, so an unbounded id space would let one
/// leaked allocation loop grow every store without bound; past this cap
/// allocate() throws std::bad_alloc (the flat analogue of the SPA
/// allocator's "TLMM region exhausted") — the process survives and the
/// allocator stays usable once ids are freed.
inline constexpr std::uint32_t kMaxFlatIds = 1u << 20;

class FlatIdAllocator {
 public:
  static FlatIdAllocator& instance();

  /// Allocate a dense reducer id, valid in every worker's flat store.
  /// Throws std::bad_alloc when the id space is exhausted (kMaxFlatIds live
  /// ids); the allocator remains consistent and usable after the throw.
  std::uint32_t allocate();

  /// Return an id. The id's slot must already be empty in every store.
  void free(std::uint32_t id);

  /// Number of ids currently handed out (live flat reducers); test hook.
  std::size_t live();

 private:
  std::mutex mutex_;
  std::vector<std::uint32_t> free_;
  std::uint32_t next_ = 0;
  std::size_t live_ = 0;
};

}  // namespace cilkm::views
