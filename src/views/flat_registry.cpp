#include "views/flat_registry.hpp"

#include <new>

namespace cilkm::views {

FlatIdAllocator& FlatIdAllocator::instance() {
  static FlatIdAllocator allocator;
  return allocator;
}

std::uint32_t FlatIdAllocator::allocate() {
  std::lock_guard lock(mutex_);
  if (!free_.empty()) {
    const std::uint32_t id = free_.back();
    free_.pop_back();
    ++live_;
    return id;
  }
  // Exhaustion is a resource-limit condition, not a bug: throw (leaving
  // live_ untouched and the free list intact) so the caller can unwind,
  // free reducers, and try again — instead of aborting the process.
  if (next_ >= kMaxFlatIds) throw std::bad_alloc{};
  ++live_;
  return next_++;
}

void FlatIdAllocator::free(std::uint32_t id) {
  std::lock_guard lock(mutex_);
  --live_;
  free_.push_back(id);
}

std::size_t FlatIdAllocator::live() {
  std::lock_guard lock(mutex_);
  return live_;
}

}  // namespace cilkm::views
