#include "views/flat_registry.hpp"

#include "util/assert.hpp"

namespace cilkm::views {

FlatIdAllocator& FlatIdAllocator::instance() {
  static FlatIdAllocator allocator;
  return allocator;
}

std::uint32_t FlatIdAllocator::allocate() {
  std::lock_guard lock(mutex_);
  ++live_;
  if (!free_.empty()) {
    const std::uint32_t id = free_.back();
    free_.pop_back();
    return id;
  }
  CILKM_CHECK(next_ < kMaxFlatIds,
              "flat reducer ids exhausted (too many live flat_policy reducers)");
  return next_++;
}

void FlatIdAllocator::free(std::uint32_t id) {
  std::lock_guard lock(mutex_);
  --live_;
  free_.push_back(id);
}

std::size_t FlatIdAllocator::live() {
  std::lock_guard lock(mutex_);
  return live_;
}

}  // namespace cilkm::views
