#include "spa/slot_alloc.hpp"

#include "util/assert.hpp"

namespace cilkm::spa {

SlotAllocator& SlotAllocator::instance() {
  static SlotAllocator alloc;
  return alloc;
}

std::uint64_t SlotAllocator::allocate_global_locked() {
  if (!global_free_.empty()) {
    const std::uint64_t offset = global_free_.back();
    global_free_.pop_back();
    return offset;
  }
  CILKM_CHECK(bump_page_ < kMaxPages, "TLMM region exhausted (too many reducers)");
  const std::uint64_t offset = slot_offset(bump_page_, bump_index_);
  if (++bump_index_ == kViewsPerPage) {
    bump_index_ = 0;
    ++bump_page_;
  }
  return offset;
}

std::uint64_t SlotAllocator::allocate(LocalSlotCache* cache) {
  if (cache != nullptr && !cache->slots.empty()) {
    const std::uint64_t offset = cache->slots.back();
    cache->slots.pop_back();
    std::lock_guard lock(mutex_);
    ++live_;
    return offset;
  }
  std::lock_guard lock(mutex_);
  if (cache != nullptr) {
    // Refill a batch into the local pool while we hold the lock once.
    for (std::size_t i = 0; i + 1 < LocalSlotCache::kBatch &&
                            (!global_free_.empty() || bump_page_ < kMaxPages);
         ++i) {
      cache->slots.push_back(allocate_global_locked());
    }
  }
  ++live_;
  return allocate_global_locked();
}

void SlotAllocator::free(std::uint64_t offset, LocalSlotCache* cache) {
  if (cache != nullptr) {
    cache->slots.push_back(offset);
    {
      std::lock_guard lock(mutex_);
      --live_;
    }
    if (cache->slots.size() > LocalSlotCache::kHighWater) {
      // Rebalance: return a batch to the global pool (Hoard-style).
      std::lock_guard lock(mutex_);
      for (std::size_t i = 0; i < LocalSlotCache::kBatch; ++i) {
        global_free_.push_back(cache->slots.back());
        cache->slots.pop_back();
      }
    }
    return;
  }
  std::lock_guard lock(mutex_);
  --live_;
  global_free_.push_back(offset);
}

void SlotAllocator::flush(LocalSlotCache& cache) {
  std::lock_guard lock(mutex_);
  for (const std::uint64_t offset : cache.slots) global_free_.push_back(offset);
  cache.slots.clear();
}

std::size_t SlotAllocator::live_slots() {
  std::lock_guard lock(mutex_);
  return live_;
}

std::uint32_t SlotAllocator::page_watermark() {
  std::lock_guard lock(mutex_);
  return bump_index_ == 0 ? bump_page_ : bump_page_ + 1;
}

}  // namespace cilkm::spa
