#include "spa/page_pool.hpp"

#include <mutex>

#include "util/assert.hpp"

namespace cilkm::spa {

PagePool& PagePool::instance() {
  static PagePool pool;
  return pool;
}

SpaPage* PagePool::acquire(LocalPagePool* local) {
  if (local != nullptr && !local->pages.empty()) {
    SpaPage* page = local->pages.back();
    local->pages.pop_back();
    return page;
  }
  {
    std::lock_guard guard(lock_);
    if (local != nullptr) {
      while (local->pages.size() < LocalPagePool::kBatch && !global_.empty()) {
        local->pages.push_back(global_.back());
        global_.pop_back();
      }
    }
    if (!global_.empty()) {
      SpaPage* page = global_.back();
      global_.pop_back();
      return page;
    }
    if (local != nullptr && !local->pages.empty()) {
      SpaPage* page = local->pages.back();
      local->pages.pop_back();
      return page;
    }
    ++total_allocated_;
  }
  auto* page = new SpaPage;
  page->clear();
  return page;
}

void PagePool::release(SpaPage* page, LocalPagePool* local) {
  CILKM_CHECK(page->all_empty(), "only empty SPA maps may be recycled");
  page->num_logs = 0;  // reset overflow state; view array is already zero
  if (local != nullptr) {
    local->pages.push_back(page);
    if (local->pages.size() > LocalPagePool::kHighWater) {
      std::lock_guard guard(lock_);
      for (std::size_t i = 0; i < LocalPagePool::kBatch; ++i) {
        global_.push_back(local->pages.back());
        local->pages.pop_back();
      }
    }
    return;
  }
  std::lock_guard guard(lock_);
  global_.push_back(page);
}

void PagePool::flush(LocalPagePool& local) {
  std::lock_guard guard(lock_);
  for (SpaPage* page : local.pages) global_.push_back(page);
  local.pages.clear();
}

}  // namespace cilkm::spa
