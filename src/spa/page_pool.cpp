#include "spa/page_pool.hpp"

#include "mem/internal_alloc.hpp"
#include "util/assert.hpp"

namespace cilkm::spa {

PagePool& PagePool::instance() {
  static PagePool pool;
  return pool;
}

SpaPage* PagePool::acquire() {
  void* p = mem::InternalAlloc::instance().allocate(sizeof(SpaPage),
                                                    mem::AllocTag::kSpaPages);
  auto* page = static_cast<SpaPage*>(p);
  // The free-list link occupied the first 8 bytes (views[0].view); every
  // other byte is null/zero — fresh pages come from zeroed chunks, recycled
  // pages were released empty. Re-null the one clobbered slot.
  page->views[0] = ViewSlot{nullptr, nullptr};
  CILKM_DCHECK(page->all_empty(), "acquired SPA page not empty");
  return page;
}

void PagePool::release(SpaPage* page) {
  CILKM_CHECK(page->all_empty(), "only empty SPA maps may be recycled");
  page->num_logs = 0;  // reset overflow state; view array is already zero
  mem::InternalAlloc::instance().deallocate(page, sizeof(SpaPage),
                                            mem::AllocTag::kSpaPages);
}

std::size_t PagePool::total_allocated() const noexcept {
  return mem::InternalAlloc::instance()
      .tag_stats(mem::AllocTag::kSpaPages)
      .carved_blocks;
}

}  // namespace cilkm::spa
