// Allocation of 16-byte view-array slots in the (emulated) TLMM region
// (paper Sections 5–6). The offset space is global — an assigned slot
// represents the same reducer in every worker's region for the reducer's
// whole life — while allocation itself is scalable in the manner of Hoard:
// each worker owns a local pool of free slots and occasionally rebalances
// fixed-size batches against a global pool.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "spa/spa_map.hpp"

namespace cilkm::spa {

/// Maximum SPA pages per worker region: 2^16 pages = 256 MiB of (lazily
/// committed) virtual space, i.e. up to ~16M live reducers.
inline constexpr std::uint32_t kMaxPages = 1u << 16;
inline constexpr std::size_t kRegionBytes =
    static_cast<std::size_t>(kMaxPages) * kPageBytes;

/// A worker-local cache of free slot offsets (the "local pool").
struct LocalSlotCache {
  static constexpr std::size_t kBatch = 32;    // refill/flush granularity
  static constexpr std::size_t kHighWater = 64;
  std::vector<std::uint64_t> slots;
};

class SlotAllocator {
 public:
  static SlotAllocator& instance();

  /// Allocate a slot offset. `cache` may be null (e.g. reducers constructed
  /// on a non-worker thread go straight to the global pool).
  std::uint64_t allocate(LocalSlotCache* cache);

  /// Return a slot offset. The slot must already be empty in every region.
  void free(std::uint64_t offset, LocalSlotCache* cache);

  /// Flush a worker's local pool back to the global pool (worker teardown).
  void flush(LocalSlotCache& cache);

  /// Number of offsets currently handed out (live reducers); test hook.
  std::size_t live_slots();

  /// One past the highest page index ever used; bounds region scans.
  std::uint32_t page_watermark();

 private:
  std::uint64_t allocate_global_locked();

  std::mutex mutex_;
  std::vector<std::uint64_t> global_free_;
  std::uint32_t bump_page_ = 0;
  std::uint32_t bump_index_ = 0;
  std::size_t live_ = 0;
};

}  // namespace cilkm::spa
