// The sparse-accumulator (SPA) map of paper Section 6, bit-for-bit at the
// sizes the paper specifies: each map is one 4096-byte page holding
//   - a view array of 248 elements, each a pair of 8-byte pointers
//     (local view, monoid/ViewOps),
//   - a log array of 120 one-byte indices of valid view-array elements,
//   - the 4-byte number of valid elements, and
//   - the 4-byte number of logs.
// Empty elements are a pair of null pointers (the paper's invariant). Once
// the number of insertions exceeds the log capacity the map stops tracking
// logs (kLogsOverflowed) and sequencing walks the whole view array — the
// paper's 2:1 amortisation rule.
#pragma once

#include <cstdint>

#include "core/view_ops.hpp"
#include "util/assert.hpp"

namespace cilkm::spa {

inline constexpr std::size_t kPageBytes = 4096;
inline constexpr std::size_t kViewsPerPage = 248;
inline constexpr std::size_t kLogCapacity = 120;
inline constexpr std::uint32_t kLogsOverflowed = 0xffffffffu;

/// One element of the view array: 16 bytes, recycled as a unit.
struct ViewSlot {
  void* view;           // null when the slot is empty or unclaimed
  const ViewOps* ops;   // null iff view is null

  bool empty() const noexcept { return view == nullptr; }
};
static_assert(sizeof(ViewSlot) == 16);

struct SpaPage {
  ViewSlot views[kViewsPerPage];
  std::uint8_t log[kLogCapacity];
  std::uint32_t num_valid;
  std::uint32_t num_logs;

  void clear() noexcept {
    for (auto& slot : views) slot = ViewSlot{nullptr, nullptr};
    num_valid = 0;
    num_logs = 0;
  }

  bool all_empty() const noexcept { return num_valid == 0; }

  /// Record that slot `idx` just transitioned empty -> valid.
  void note_insert(std::uint32_t idx) noexcept {
    ++num_valid;
    if (num_logs == kLogsOverflowed) return;
    if (num_logs >= kLogCapacity) {
      num_logs = kLogsOverflowed;  // stop tracking; sequence the whole array
      return;
    }
    log[num_logs++] = static_cast<std::uint8_t>(idx);
  }

  /// Visit every valid slot: via the log when tracked, otherwise a full
  /// walk of the view array (the amortised overflow mode). The visitor may
  /// zero slots; duplicates in the log are skipped because a zeroed slot is
  /// no longer valid.
  template <typename Visitor>
  void for_each_valid(Visitor&& visit) {
    if (num_logs != kLogsOverflowed) {
      for (std::uint32_t i = 0; i < num_logs; ++i) {
        const std::uint32_t idx = log[i];
        if (!views[idx].empty()) visit(idx, views[idx]);
      }
    } else {
      for (std::uint32_t idx = 0; idx < kViewsPerPage; ++idx) {
        if (!views[idx].empty()) visit(idx, views[idx]);
      }
    }
  }
};
static_assert(sizeof(SpaPage) == kPageBytes,
              "SPA map must occupy exactly one 4096-byte page");

/// Byte offset of slot (page, idx) in a worker region — the reducer's
/// tlmm_addr. The same offset resolves to the same logical slot in every
/// worker's private region (the paper's "same virtual address" property).
constexpr std::uint64_t slot_offset(std::uint32_t page, std::uint32_t idx) noexcept {
  return static_cast<std::uint64_t>(page) * kPageBytes +
         static_cast<std::uint64_t>(idx) * sizeof(ViewSlot);
}

constexpr std::uint32_t offset_page(std::uint64_t offset) noexcept {
  return static_cast<std::uint32_t>(offset / kPageBytes);
}
constexpr std::uint32_t offset_index(std::uint64_t offset) noexcept {
  return static_cast<std::uint32_t>((offset % kPageBytes) / sizeof(ViewSlot));
}

/// One public SPA map produced by view transferal: the page of transferred
/// view pointers plus the region page index it was copied from (which fixes
/// the global slot offsets of its entries).
struct SpaDepositEntry {
  std::uint32_t page_index;
  SpaPage* page;
};

}  // namespace cilkm::spa
