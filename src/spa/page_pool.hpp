// Pooling of empty SPA pages for *public* SPA maps (paper Section 7): view
// transferal allocates public pages here, hypermerge recycles them. Since
// the internal-allocator unification this is a thin adapter over
// mem::InternalAlloc with AllocTag::kSpaPages — per-worker caching happens
// in the calling thread's magazine, and the global pool is sharded per
// NUMA node. The paper's invariant is still enforced here: only all-empty
// pages are recycled, and the tag's zeroed-chunk policy guarantees a fresh
// page arrives all-empty too.
#pragma once

#include <cstddef>

#include "spa/spa_map.hpp"

namespace cilkm::spa {

class PagePool {
 public:
  static PagePool& instance();

  /// Returns an all-empty page. Fresh pages come from zeroed chunks;
  /// recycled pages were released empty — either way the acquire invariant
  /// (all view slots null, num_valid == 0, num_logs == 0) holds.
  SpaPage* acquire();

  /// Recycle a page. Enforces the only-empty-pages-are-recycled invariant.
  void release(SpaPage* page);

  /// Pages of backing store carved so far (an upper bound on pages ever
  /// handed out: chunks carve 16 pages at a time). Lock-free read.
  std::size_t total_allocated() const noexcept;
};

}  // namespace cilkm::spa
