// Memory pools of empty SPA pages for *public* SPA maps (paper Section 7):
// view transferal allocates public pages here, hypermerge recycles them.
// The paper's invariant is enforced: only all-empty pages are recycled.
// Structured like the rest of the Cilk-M internal allocator — every worker
// owns a local pool, and a global pool rebalances between them (Hoard-like).
#pragma once

#include <vector>

#include "spa/spa_map.hpp"
#include "util/spinlock.hpp"

namespace cilkm::spa {

/// A worker's local pool of empty public pages.
struct LocalPagePool {
  static constexpr std::size_t kBatch = 4;
  static constexpr std::size_t kHighWater = 8;
  std::vector<SpaPage*> pages;
};

class PagePool {
 public:
  static PagePool& instance();

  /// Returns an all-empty page (freshly zeroed if newly allocated).
  SpaPage* acquire(LocalPagePool* local);

  /// Recycle a page. Enforces the only-empty-pages-are-recycled invariant.
  void release(SpaPage* page, LocalPagePool* local);

  /// Drain a worker's local pool into the global pool (worker teardown).
  void flush(LocalPagePool& local);

  std::size_t total_allocated() const noexcept { return total_allocated_; }

 private:
  SpinLock lock_;
  std::vector<SpaPage*> global_;
  std::size_t total_allocated_ = 0;
};

}  // namespace cilkm::spa
