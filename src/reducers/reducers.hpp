// Convenience reducer aliases in the style of the Cilk Plus reducer library
// headers (reducer_opadd.h etc.). The Policy parameter selects the runtime
// view store: mm_policy (memory-mapped, the paper's contribution, default),
// hypermap_policy (the Cilk Plus baseline), or flat_policy (dense-id array,
// the ablation upper bound) — see views/view_store.hpp for the contract.
#pragma once

#include "core/reducer.hpp"
#include "reducers/monoids.hpp"

namespace cilkm {

template <typename T, typename Policy = mm_policy>
using reducer_opadd = reducer<op_add<T>, Policy>;

template <typename T, typename Policy = mm_policy>
using reducer_opmul = reducer<op_mul<T>, Policy>;

template <typename T, typename Policy = mm_policy>
using reducer_min = reducer<op_min<T>, Policy>;

template <typename T, typename Policy = mm_policy>
using reducer_max = reducer<op_max<T>, Policy>;

template <typename T, typename Policy = mm_policy>
using reducer_opand = reducer<op_and<T>, Policy>;

template <typename T, typename Policy = mm_policy>
using reducer_opor = reducer<op_or<T>, Policy>;

template <typename T, typename Policy = mm_policy>
using reducer_opxor = reducer<op_xor<T>, Policy>;

/// The paper's Figure 2 type: list_append_reducer<Node*> l;
template <typename T, typename Policy = mm_policy>
using list_append_reducer = reducer<list_append<T>, Policy>;

template <typename T, typename Policy = mm_policy>
using vector_reducer = reducer<vector_concat<T>, Policy>;

template <typename Policy = mm_policy>
using string_reducer = reducer<string_concat, Policy>;

}  // namespace cilkm
