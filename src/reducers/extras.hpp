// Extended reducer library, completing the set shipped with Cilk Plus:
// min_index / max_index (argmin/argmax with deterministic first-occurrence
// tie-breaking), list_prepend, a holder, and an ostream reducer that makes
// parallel output appear in serial order.
#pragma once

#include <limits>
#include <list>
#include <ostream>
#include <string>
#include <utility>

#include "core/reducer.hpp"
#include "reducers/monoids.hpp"

namespace cilkm {

/// The value carried by min_index / max_index views.
template <typename Index, typename T>
struct indexed_value {
  Index index{};
  T value{};
  bool valid = false;

  friend bool operator==(const indexed_value&, const indexed_value&) = default;
};

/// Argmin over (index, value) updates. Ties keep the serially earliest
/// occurrence — a deterministic, associative, NON-commutative tie-break that
/// only a correctly ordered reducer runtime can provide.
template <typename Index, typename T>
struct op_min_index {
  using value_type = indexed_value<Index, T>;
  value_type identity() const { return {}; }
  void reduce(value_type& left, value_type& right) const {
    if (!left.valid || (right.valid && right.value < left.value)) {
      left = right;
    }
  }
  /// Update helper used through the view.
  static void update(value_type& view, Index index, const T& value) {
    if (!view.valid || value < view.value) view = {index, value, true};
  }
};

/// Argmax with first-occurrence tie-breaking.
template <typename Index, typename T>
struct op_max_index {
  using value_type = indexed_value<Index, T>;
  value_type identity() const { return {}; }
  void reduce(value_type& left, value_type& right) const {
    if (!left.valid || (right.valid && left.value < right.value)) {
      left = right;
    }
  }
  static void update(value_type& view, Index index, const T& value) {
    if (!view.valid || view.value < value) view = {index, value, true};
  }
};

/// List prepend: push_front order, i.e. the serial result is the reverse of
/// the update sequence. reduce is x ⊗ y = y · x on the underlying list.
template <typename T>
struct list_prepend {
  using value_type = std::list<T>;
  value_type identity() const { return {}; }
  void reduce(value_type& left, value_type& right) const {
    left.splice(left.begin(), right);
  }
};

/// A holder: strand-local scratch storage with no meaningful combination —
/// reduce keeps the left (serially earlier) view and discards the right.
/// Holders are for scratch space consumed *within* a strand; as in the Cilk
/// Plus holder, the value observed after a join is one view's value and code
/// must not rely on which.
template <typename T>
struct holder_keep_left {
  using value_type = T;
  T identity() const { return T{}; }
  void reduce(T&, T&) const { /* keep left, discard right */ }
};

template <typename Index, typename T, typename Policy = mm_policy>
using min_index_reducer = reducer<op_min_index<Index, T>, Policy>;

template <typename Index, typename T, typename Policy = mm_policy>
using max_index_reducer = reducer<op_max_index<Index, T>, Policy>;

template <typename T, typename Policy = mm_policy>
using list_prepend_reducer = reducer<list_prepend<T>, Policy>;

template <typename T, typename Policy = mm_policy>
using holder = reducer<holder_keep_left<T>, Policy>;

/// An ostream reducer: strands stream into worker-local string buffers; the
/// runtime concatenates buffers in serial order; flush() writes the fully
/// ordered output to the real stream. Parallel printing, serial transcript.
template <typename Policy = mm_policy>
class ostream_reducer {
 public:
  explicit ostream_reducer(std::ostream& sink) : sink_(&sink) {}

  /// Stream into the current strand's buffer.
  template <typename V>
  ostream_reducer& operator<<(const V& value) {
    buffer_.view() += to_chunk(value);
    return *this;
  }

  /// Write the accumulated (serially ordered) output to the sink and clear.
  /// Call after quiescence.
  void flush() {
    *sink_ << buffer_.get_value();
    sink_->flush();
    buffer_.set_value({});
  }

  const std::string& pending() { return buffer_.get_value(); }

 private:
  template <typename V>
  static std::string to_chunk(const V& value) {
    if constexpr (std::is_same_v<V, char>) {
      return std::string(1, value);
    } else if constexpr (std::is_convertible_v<V, std::string>) {
      return std::string(value);
    } else {
      return std::to_string(value);
    }
  }

  std::ostream* sink_;
  reducer<string_concat, Policy> buffer_;
};

}  // namespace cilkm
