// The monoid library: the building blocks of the reducer library shipped
// with Cilk Plus (paper Sections 2 and 8) plus a few extras. Every monoid
// satisfies cilkm::MonoidFor: identity() returns e and reduce(a, b) performs
// a = a ⊗ b (b may be pilfered; it is destroyed by the runtime afterwards).
#pragma once

#include <limits>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cilkm {

/// (T, +, 0)
template <typename T>
struct op_add {
  using value_type = T;
  T identity() const { return T{}; }
  void reduce(T& left, T& right) const { left += right; }
};

/// (T, *, 1)
template <typename T>
struct op_mul {
  using value_type = T;
  T identity() const { return T{1}; }
  void reduce(T& left, T& right) const { left *= right; }
};

/// (T, min, +inf). Matches the Cilk Plus reducer_min: the view holds the
/// smallest value seen on the strand.
template <typename T>
struct op_min {
  using value_type = T;
  T identity() const { return std::numeric_limits<T>::max(); }
  void reduce(T& left, T& right) const {
    if (right < left) left = right;
  }
};

/// (T, max, -inf)
template <typename T>
struct op_max {
  using value_type = T;
  T identity() const { return std::numeric_limits<T>::lowest(); }
  void reduce(T& left, T& right) const {
    if (left < right) left = right;
  }
};

/// (T, &, ~0) for unsigned integral T.
template <typename T>
struct op_and {
  using value_type = T;
  T identity() const { return static_cast<T>(~T{}); }
  void reduce(T& left, T& right) const { left &= right; }
};

/// (T, |, 0)
template <typename T>
struct op_or {
  using value_type = T;
  T identity() const { return T{}; }
  void reduce(T& left, T& right) const { left |= right; }
};

/// (T, ^, 0)
template <typename T>
struct op_xor {
  using value_type = T;
  T identity() const { return T{}; }
  void reduce(T& left, T& right) const { left ^= right; }
};

/// List append with the empty list as identity — the motivating example of
/// the paper's Figure 2. Non-commutative: the runtime's ordering guarantees
/// are what make the result deterministic. O(1) reduce via splice.
template <typename T>
struct list_append {
  using value_type = std::list<T>;
  value_type identity() const { return {}; }
  void reduce(value_type& left, value_type& right) const {
    left.splice(left.end(), right);
  }
};

/// Vector concatenation (non-commutative).
template <typename T>
struct vector_concat {
  using value_type = std::vector<T>;
  value_type identity() const { return {}; }
  void reduce(value_type& left, value_type& right) const {
    if (left.empty()) {
      left = std::move(right);
      return;
    }
    left.insert(left.end(), std::make_move_iterator(right.begin()),
                std::make_move_iterator(right.end()));
  }
};

/// String concatenation (non-commutative) — the classic associativity
/// stress test for reducer correctness.
struct string_concat {
  using value_type = std::string;
  value_type identity() const { return {}; }
  void reduce(value_type& left, value_type& right) const { left += right; }
};

/// Keyed aggregation: union of maps, combining values for equal keys with a
/// (commutative or not) combiner. Used by the wordcount example.
template <typename K, typename V, typename Combine>
struct map_union {
  using value_type = std::unordered_map<K, V>;
  Combine combine{};

  value_type identity() const { return {}; }
  void reduce(value_type& left, value_type& right) const {
    if (left.empty()) {
      left = std::move(right);
      return;
    }
    for (auto& [key, value] : right) {
      auto [it, inserted] = left.try_emplace(key, std::move(value));
      if (!inserted) combine(it->second, value);
    }
  }
};

}  // namespace cilkm
