// Shared support for the randomized tests: one process-wide base seed,
// fixed by default so every run is reproducible, overridable through the
// CILKM_TEST_SEED environment variable (any strtoull-parseable value).
// Tests derive their per-case seeds from base_seed() and wrap their bodies
// in SCOPED_TRACE(seed_trace()), so a failing run always prints the exact
// seed needed to replay it.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

#include "util/rng.hpp"

namespace cilkm::test {

/// The run's base seed: CILKM_TEST_SEED if set, else cilkm::kDefaultSeed —
/// the same constant the workload driver defaults to, so the ctest matrix
/// and a bare `cilkm_run` exercise identical inputs.
inline std::uint64_t base_seed() {
  static const std::uint64_t value = [] {
    if (const char* env = std::getenv("CILKM_TEST_SEED")) {
      char* end = nullptr;
      const std::uint64_t parsed = std::strtoull(env, &end, 0);
      if (end != env && *end == '\0') return parsed;
    }
    return kDefaultSeed;
  }();
  return value;
}

/// The i-th seed derived from the base (splitmix64 stream), so independent
/// test cases draw decorrelated but reproducible seeds.
inline std::uint64_t derived_seed(std::uint64_t i) {
  std::uint64_t state = base_seed() + i;
  return splitmix64(state);
}

/// For SCOPED_TRACE at the top of every randomized test body: on failure,
/// gtest prints this line, telling the developer how to replay the run.
inline std::string seed_trace() {
  return "replay with CILKM_TEST_SEED=" + std::to_string(base_seed());
}

}  // namespace cilkm::test
