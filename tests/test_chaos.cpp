// Deterministic fault injection (src/chaos/) and the graceful-degradation
// paths it exercises: refused deque pushes run the child serially in place,
// fiber-stack exhaustion falls back to the scheduler's own stack, injected
// allocator OOM propagates as std::bad_alloc through the SpawnFrame::eptr
// join protocol to Scheduler::run — and none of them abort the process or
// poison the pool. The pedigree-keyed decisions make the injected fault set
// a pure function of (seed, site, strand), which the cross-schedule digest
// test pins across worker counts and steal-batch settings.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <vector>

#include "chaos/chaos.hpp"
#include "mem/internal_alloc.hpp"
#include "obs/metrics.hpp"
#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "runtime/deque.hpp"
#include "runtime/frame.hpp"
#include "util/dprng.hpp"
#include "views/flat_registry.hpp"

namespace {

namespace chaos = cilkm::chaos;
using cilkm::StatCounter;

/// Disarm on scope exit even when an assertion fails mid-test: armed chaos
/// leaking into the next TEST would make its failures non-local.
struct ChaosGuard {
  explicit ChaosGuard(const chaos::Config& cfg) { chaos::arm(cfg); }
  ~ChaosGuard() { chaos::disarm(); }
};

/// Binary fork tree: 2^depth leaves, each adding 1 into the reducer.
template <typename Red>
std::uint64_t count_tree(Red& red, unsigned depth) {
  if (depth == 0) {
    red.view() += 1;
    return 1;
  }
  std::uint64_t l = 0, r = 0;
  cilkm::fork2join([&] { l = count_tree(red, depth - 1); },
                   [&] { r = count_tree(red, depth - 1); });
  return l + r;
}

// ---------------------------------------------------------------- site masks

TEST(ChaosSites, ParseSites) {
  std::uint32_t mask = 0;
  EXPECT_TRUE(chaos::parse_sites("alloc", &mask));
  EXPECT_EQ(mask, chaos::site_bit(chaos::Site::kAllocRefill));
  EXPECT_TRUE(chaos::parse_sites("push,fiber", &mask));
  EXPECT_EQ(mask, chaos::site_bit(chaos::Site::kDequePush) |
                      chaos::site_bit(chaos::Site::kFiberAcquire));
  EXPECT_TRUE(chaos::parse_sites("faults", &mask));
  EXPECT_EQ(mask, chaos::kFaultSites);
  EXPECT_TRUE(chaos::parse_sites("delays", &mask));
  EXPECT_EQ(mask, chaos::kDelaySites);
  EXPECT_TRUE(chaos::parse_sites("all", &mask));
  EXPECT_EQ(mask, chaos::kAllSites);
  EXPECT_TRUE(chaos::parse_sites("merge,deposit,install,steal", &mask));
  EXPECT_EQ(mask, chaos::kDelaySites);

  const std::uint32_t before = mask;
  EXPECT_FALSE(chaos::parse_sites("bogus", &mask));
  EXPECT_FALSE(chaos::parse_sites("push,bogus", &mask));
  EXPECT_FALSE(chaos::parse_sites("", &mask));
  EXPECT_EQ(mask, before);  // untouched on failure
}

TEST(ChaosSites, DisarmedConsultsAreFree) {
  chaos::disarm();
  EXPECT_FALSE(chaos::enabled());
  // Outside a worker (and disarmed), nothing fires and nothing counts.
  chaos::reset_stats();
  EXPECT_FALSE(chaos::should_fail(chaos::Site::kDequePush));
  chaos::maybe_delay(chaos::Site::kMergeDelay);
  EXPECT_EQ(chaos::site_stats(chaos::Site::kDequePush).consults, 0u);
  EXPECT_EQ(chaos::site_stats(chaos::Site::kMergeDelay).consults, 0u);
}

// --------------------------------------------------------- deque saturation

TEST(ChaosDegradation, DequePushReportsFullInsteadOfAborting) {
  // Deque is ~512 KiB of atomics; keep it off the test's stack.
  auto deque = std::make_unique<cilkm::rt::Deque>();
  cilkm::rt::SpawnFrame frame;
  for (std::size_t i = 0; i < cilkm::rt::Deque::kCapacity; ++i) {
    ASSERT_TRUE(deque->push(&frame));
  }
  // At capacity the push is refused, not fatal — fork2join runs the child
  // serially in place on this path.
  EXPECT_FALSE(deque->push(&frame));
  EXPECT_FALSE(deque->push(&frame));
  // Popping one frame makes room again.
  EXPECT_NE(deque->take_any(), nullptr);
  EXPECT_TRUE(deque->push(&frame));
}

TEST(ChaosDegradation, RefusedPushesDegradeToSerialAndRecover) {
  cilkm::Scheduler sched(2);
  chaos::Config cfg;
  cfg.p = 1.0;  // every push refused
  cfg.sites = chaos::site_bit(chaos::Site::kDequePush);
  cfg.seed = 0x1111;
  std::uint64_t sum = 0;
  {
    ChaosGuard guard(cfg);
    cilkm::reducer<cilkm::op_add<std::uint64_t>, cilkm::mm_policy> red;
    sched.run([&] { count_tree(red, 10); });
    sum = red.get_value();
  }
  EXPECT_EQ(sum, 1024u);
  // Nothing was ever pushed, so nothing could be stolen; every spawn took
  // the serial tail.
  const cilkm::WorkerStats stats = sched.aggregate_stats();
  EXPECT_EQ(stats[StatCounter::kSteals], 0u);
  EXPECT_GE(stats[StatCounter::kSerialDegrades], 1023u);
  EXPECT_GT(chaos::site_stats(chaos::Site::kDequePush).injected, 0u);

  // Disarmed, the same pool schedules normally again.
  cilkm::reducer<cilkm::op_add<std::uint64_t>, cilkm::mm_policy> red;
  sched.run([&] { count_tree(red, 10); });
  EXPECT_EQ(red.get_value(), 1024u);
}

// ------------------------------------------------------- fiber exhaustion

TEST(ChaosDegradation, FiberFaultsFallBackToTheSchedulerStack) {
  cilkm::Scheduler sched(4);
  // p = 1: every launch (including the root's) degrades to a stackless
  // serial run on the worker's own OS-thread stack.
  {
    chaos::Config cfg;
    cfg.p = 1.0;
    cfg.sites = chaos::site_bit(chaos::Site::kFiberAcquire);
    cfg.seed = 0x2222;
    ChaosGuard guard(cfg);
    cilkm::reducer<cilkm::op_add<std::uint64_t>, cilkm::hypermap_policy> red;
    sched.run([&] { count_tree(red, 10); });
    EXPECT_EQ(red.get_value(), 1024u);
    EXPECT_GE(sched.aggregate_stats()[StatCounter::kFiberFallbacks], 1u);
  }
  sched.reset_stats();
  // p = 0.5: a mix of fibered launches and degraded frames mid-run, with
  // real steals interleaving both kinds. The reduction must still be exact.
  {
    chaos::Config cfg;
    cfg.p = 0.5;
    cfg.sites = chaos::site_bit(chaos::Site::kFiberAcquire);
    cfg.seed = 0x2223;
    ChaosGuard guard(cfg);
    for (int round = 0; round < 5; ++round) {
      cilkm::reducer<cilkm::op_add<std::uint64_t>, cilkm::mm_policy> red;
      sched.run([&] { count_tree(red, 11); });
      EXPECT_EQ(red.get_value(), 2048u);
    }
  }
  // Clean run afterwards on the same pool.
  cilkm::reducer<cilkm::op_add<std::uint64_t>, cilkm::flat_policy> red;
  sched.run([&] { count_tree(red, 10); });
  EXPECT_EQ(red.get_value(), 1024u);
}

// -------------------------------------------------------- allocator OOM

TEST(ChaosDegradation, InjectedAllocOomPropagatesAsBadAlloc) {
  auto& alloc = cilkm::mem::InternalAlloc::instance();
  cilkm::Scheduler sched(1);
  sched.run([] {});  // warm the pool before arming
  chaos::Config cfg;
  cfg.p = 1.0;  // the first unsuppressed refill on a worker throws
  cfg.sites = chaos::site_bit(chaos::Site::kAllocRefill);
  cfg.seed = 0x3333;
  std::vector<void*> blocks;
  blocks.reserve(100000);
  {
    ChaosGuard guard(cfg);
    // Allocation pressure inside the run forces a magazine refill on the
    // worker thread; the injected bad_alloc unwinds through the root's
    // eptr slot and rethrows here — the process does NOT abort.
    EXPECT_THROW(
        sched.run([&] {
          for (int i = 0; i < 100000; ++i) {
            blocks.push_back(
                alloc.allocate(64, cilkm::mem::AllocTag::kGeneral));
          }
        }),
        std::bad_alloc);
    EXPECT_GT(chaos::site_stats(chaos::Site::kAllocRefill).injected, 0u);
  }
  for (void* p : blocks) {
    alloc.deallocate(p, 64, cilkm::mem::AllocTag::kGeneral, nullptr);
  }
  // The throwing run left the pool quiesced and reusable.
  cilkm::reducer<cilkm::op_add<std::uint64_t>, cilkm::mm_policy> red;
  sched.run([&] { count_tree(red, 8); });
  EXPECT_EQ(red.get_value(), 256u);
}

// ------------------------------------------------ flat-id exhaustion

TEST(FlatRegistryGraceful, IdExhaustionThrowsAndRecovers) {
  auto& allocator = cilkm::views::FlatIdAllocator::instance();
  const std::size_t live_before = allocator.live();
  std::vector<std::uint32_t> ids;
  ids.reserve(cilkm::views::kMaxFlatIds);
  // Exhaust the id space. Some ids may already be live elsewhere in this
  // process; allocate until the ceiling answers.
  try {
    for (std::uint64_t i = 0; i <= cilkm::views::kMaxFlatIds; ++i) {
      ids.push_back(allocator.allocate());
    }
    FAIL() << "id space never reported exhaustion";
  } catch (const std::bad_alloc&) {
  }
  // The failed allocation changed nothing: still exhausted, still throwing,
  // and live() reflects exactly the successful allocations.
  EXPECT_THROW(allocator.allocate(), std::bad_alloc);
  EXPECT_EQ(allocator.live(), live_before + ids.size());
  for (const std::uint32_t id : ids) allocator.free(id);
  EXPECT_EQ(allocator.live(), live_before);
  // Freed ids recycle normally after the exhaustion episode.
  const std::uint32_t id = allocator.allocate();
  EXPECT_LT(id, cilkm::views::kMaxFlatIds);
  allocator.free(id);
}

// ---------------------------------------------- deterministic fault sets

/// One run under push-site injection, returning the site's statistics.
/// Push consults happen once per spawn on the worker path, so both the
/// consult count and the injected (strand) set are schedule-independent.
chaos::SiteStats push_fault_run(unsigned workers, unsigned steal_batch) {
  cilkm::SchedulerOptions so;
  so.steal_batch = steal_batch;
  cilkm::Scheduler sched(workers, so);
  chaos::Config cfg;
  cfg.p = 0.05;
  cfg.seed = 0xfeedfacef00dULL;
  cfg.sites = chaos::site_bit(chaos::Site::kDequePush);
  ChaosGuard guard(cfg);
  cilkm::reducer<cilkm::op_add<std::uint64_t>, cilkm::mm_policy> red;
  sched.run([&] { count_tree(red, 11); });
  EXPECT_EQ(red.get_value(), 2048u);
  return chaos::site_stats(chaos::Site::kDequePush);
}

TEST(ChaosDeterminism, SameSeedSameFaultSetAcrossSchedules) {
  const chaos::SiteStats base = push_fault_run(1, 0);
  ASSERT_GT(base.consults, 0u);
  ASSERT_GT(base.injected, 0u);  // p=0.05 over 2047 spawns
  for (const unsigned p : {1u, 2u, 4u}) {
    for (const unsigned batch : {0u, 1u}) {
      const chaos::SiteStats got = push_fault_run(p, batch);
      // (injected, digest) equality == identical injected fault set: the
      // digest is an order-independent sum over the decision hashes of the
      // strands that fired, so no schedule can fake it.
      EXPECT_EQ(got.consults, base.consults) << "P=" << p << " batch=" << batch;
      EXPECT_EQ(got.injected, base.injected) << "P=" << p << " batch=" << batch;
      EXPECT_EQ(got.digest, base.digest) << "P=" << p << " batch=" << batch;
    }
  }
}

TEST(ChaosDeterminism, MetricsExposePerSiteRows) {
  (void)push_fault_run(2, 0);  // leaves nonzero stats behind (then disarms)
  const chaos::SiteStats st = chaos::site_stats(chaos::Site::kDequePush);
  ASSERT_GT(st.consults, 0u);
  const cilkm::obs::MetricsSnapshot snap = cilkm::obs::capture(nullptr);
  bool saw_consults = false, saw_injected = false;
  for (const cilkm::obs::Metric& m : snap.flatten()) {
    if (m.name == "chaos.push.consults") {
      saw_consults = true;
      EXPECT_EQ(m.value, static_cast<double>(st.consults));
    }
    if (m.name == "chaos.push.injected") {
      saw_injected = true;
      EXPECT_EQ(m.value, static_cast<double>(st.injected));
    }
  }
  EXPECT_TRUE(saw_consults);
  EXPECT_TRUE(saw_injected);
}

// ------------------------------------------- exception stress (satellite)

/// Count the throwing leaves of the deterministic tree: leaf (depth-first
/// index keyed) pedigree draws decide the throw, so the same leaves throw
/// under every policy, worker count, and steal schedule.
template <typename Policy>
void exception_stress(unsigned workers, unsigned steal_batch) {
  cilkm::SchedulerOptions so;
  so.steal_batch = steal_batch;
  cilkm::Scheduler sched(workers, so);
  // Injected protocol delays widen the THE/join race windows so steals and
  // parked joins actually interleave with the unwinds.
  chaos::Config cfg;
  cfg.p = 0.2;
  cfg.sites = chaos::kDelaySites;
  cfg.seed = 0x7007;
  cfg.delay_ns = 500;
  ChaosGuard guard(cfg);

  constexpr unsigned kDepth = 8;
  for (int round = 0; round < 3; ++round) {
    cilkm::reducer<cilkm::op_add<std::uint64_t>, Policy> red;
    auto tree = [&](auto&& self, unsigned depth) -> void {
      if (depth == 0) {
        // Pedigree-keyed draw: deterministic per strand, so at p=1/5 over
        // 256 leaves the run throws under EVERY schedule (or none — and a
        // no-throw seed would fail the EXPECT_THROW loudly).
        cilkm::Dprng rng(0xabcdabcd);
        if (rng.next() % 5 == 0) throw std::runtime_error("chaos-leaf");
        red.view() += 1;
        return;
      }
      cilkm::fork2join([&] { self(self, depth - 1); },
                       [&] { self(self, depth - 1); });
    };
    EXPECT_THROW(sched.run([&] { tree(tree, kDepth); }), std::runtime_error);
    // The join protocol completed before the rethrow: the pool is quiesced
    // and the very next run on it is healthy and exact.
    std::atomic<std::uint64_t> sum{0};
    sched.run([&] {
      cilkm::parallel_for(0, 200, 8, [&](std::int64_t i) {
        sum.fetch_add(static_cast<std::uint64_t>(i));
      });
    });
    EXPECT_EQ(sum.load(), 199u * 200 / 2);
  }
}

TEST(ChaosExceptionStress, DeepThrowsUnderForcedStealsMm) {
  for (const unsigned p : {1u, 2u, 4u}) {
    for (const unsigned batch : {0u, 1u}) {
      exception_stress<cilkm::mm_policy>(p, batch);
    }
  }
}

TEST(ChaosExceptionStress, DeepThrowsUnderForcedStealsHypermap) {
  for (const unsigned p : {2u, 4u}) {
    exception_stress<cilkm::hypermap_policy>(p, /*steal_batch=*/0);
  }
}

TEST(ChaosExceptionStress, DeepThrowsUnderForcedStealsFlat) {
  for (const unsigned p : {2u, 4u}) {
    exception_stress<cilkm::flat_policy>(p, /*steal_batch=*/1);
  }
}

// ----------------------------------------------------------- watchdog

TEST(ChaosWatchdog, HealthyRunsDoNotTripTheWatchdog) {
  cilkm::SchedulerOptions so;
  so.watchdog_ms = 200;
  cilkm::Scheduler sched(2, so);
  for (int round = 0; round < 3; ++round) {
    cilkm::reducer<cilkm::op_add<std::uint64_t>, cilkm::mm_policy> red;
    sched.run([&] { count_tree(red, 10); });
    EXPECT_EQ(red.get_value(), 1024u);
  }
}

}  // namespace
