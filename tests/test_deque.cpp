// Work-stealing deque tests: owner LIFO, thief FIFO, the conditional
// take_if used by the fork-join fast path, and a concurrent stress test.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "runtime/deque.hpp"
#include "runtime/frame.hpp"

namespace {

using cilkm::rt::Deque;
using cilkm::rt::SpawnFrame;

TEST(Deque, StartsEmpty) {
  Deque dq;
  EXPECT_TRUE(dq.empty());
  EXPECT_EQ(dq.take_any(), nullptr);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(Deque, OwnerTakesLifo) {
  Deque dq;
  SpawnFrame f1, f2, f3;
  dq.push(&f1);
  dq.push(&f2);
  dq.push(&f3);
  EXPECT_EQ(dq.take_any(), &f3);
  EXPECT_EQ(dq.take_any(), &f2);
  EXPECT_EQ(dq.take_any(), &f1);
  EXPECT_EQ(dq.take_any(), nullptr);
}

TEST(Deque, ThiefStealsFifo) {
  Deque dq;
  SpawnFrame f1, f2, f3;
  dq.push(&f1);
  dq.push(&f2);
  dq.push(&f3);
  EXPECT_EQ(dq.steal(), &f1);  // oldest (shallowest) first
  EXPECT_EQ(dq.steal(), &f2);
  EXPECT_EQ(dq.steal(), &f3);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(Deque, TakeIfMatchesOwnFrame) {
  Deque dq;
  SpawnFrame mine;
  dq.push(&mine);
  EXPECT_EQ(dq.take_if(&mine), &mine);
  EXPECT_TRUE(dq.empty());
}

TEST(Deque, TakeIfLeavesOlderEntryWhenOwnFrameWasStolen) {
  Deque dq;
  SpawnFrame outer, mine;
  dq.push(&outer);
  dq.push(&mine);
  EXPECT_EQ(dq.steal(), &outer);  // thief takes the old entry...
  SpawnFrame* thief2 = dq.steal();  // ...and another thief takes ours
  EXPECT_EQ(thief2, &mine);
  EXPECT_EQ(dq.take_if(&mine), nullptr);  // owner finds nothing
}

TEST(Deque, TakeIfRestoresOlderBottomEntry) {
  Deque dq;
  SpawnFrame outer, mine;
  dq.push(&outer);
  dq.push(&mine);
  ASSERT_EQ(dq.steal(), &outer);
  // Simulate: our frame got stolen, an even older frame... here instead we
  // re-push outer below and check take_if(&outer-mismatch) keeps it.
  SpawnFrame* stolen = dq.steal();
  ASSERT_EQ(stolen, &mine);
  dq.push(&outer);
  // Owner expected `mine` but bottom is `outer`: must return null and leave
  // outer available.
  EXPECT_EQ(dq.take_if(&mine), nullptr);
  EXPECT_EQ(dq.take_any(), &outer);
}

TEST(Deque, InterleavedPushTakeSteal) {
  Deque dq;
  std::vector<SpawnFrame> frames(100);
  for (int i = 0; i < 100; ++i) {
    dq.push(&frames[static_cast<std::size_t>(i)]);
    if (i % 3 == 0) EXPECT_NE(dq.take_any(), nullptr);
    if (i % 7 == 0) dq.steal();
  }
  int remaining = 0;
  while (dq.take_any() != nullptr) ++remaining;
  EXPECT_GT(remaining, 0);
}

TEST(DequeBatch, StealsHalfOldestFirst) {
  Deque dq;
  std::vector<SpawnFrame> frames(8);
  for (auto& f : frames) dq.push(&f);
  SpawnFrame* out[Deque::kMaxStealBatch];
  // ceil(8/2) = 4, oldest (shallowest) first.
  ASSERT_EQ(dq.steal_batch(out, Deque::kMaxStealBatch), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], &frames[static_cast<std::size_t>(i)]);
  // The younger half stays with the owner, still in LIFO order.
  EXPECT_EQ(dq.take_any(), &frames[7]);
  EXPECT_EQ(dq.take_any(), &frames[6]);
  EXPECT_EQ(dq.take_any(), &frames[5]);
  EXPECT_EQ(dq.take_any(), &frames[4]);
  EXPECT_EQ(dq.take_any(), nullptr);
}

TEST(DequeBatch, RoundsHalfUpOnOddCounts) {
  Deque dq;
  std::vector<SpawnFrame> frames(5);
  for (auto& f : frames) dq.push(&f);
  SpawnFrame* out[Deque::kMaxStealBatch];
  EXPECT_EQ(dq.steal_batch(out, Deque::kMaxStealBatch), 3u);  // ceil(5/2)
}

TEST(DequeBatch, RespectsCallerCap) {
  Deque dq;
  std::vector<SpawnFrame> frames(10);
  for (auto& f : frames) dq.push(&f);
  SpawnFrame* out[Deque::kMaxStealBatch];
  ASSERT_EQ(dq.steal_batch(out, 2), 2u);
  EXPECT_EQ(out[0], &frames[0]);
  EXPECT_EQ(out[1], &frames[1]);
}

TEST(DequeBatch, CapOneIsClassicSingleSteal) {
  Deque dq;
  std::vector<SpawnFrame> frames(6);
  for (auto& f : frames) dq.push(&f);
  SpawnFrame* out[1];
  ASSERT_EQ(dq.steal_batch(out, 1), 1u);
  EXPECT_EQ(out[0], &frames[0]);
}

TEST(DequeBatch, SingleEntryAndEmptyDeques) {
  Deque dq;
  SpawnFrame* out[Deque::kMaxStealBatch];
  EXPECT_EQ(dq.steal_batch(out, Deque::kMaxStealBatch), 0u);  // empty
  SpawnFrame f;
  dq.push(&f);
  ASSERT_EQ(dq.steal_batch(out, Deque::kMaxStealBatch), 1u);
  EXPECT_EQ(out[0], &f);
  EXPECT_TRUE(dq.empty());
}

TEST(DequeStress, ConcurrentStealersReceiveEachEntryExactlyOnce) {
  Deque dq;
  constexpr int kFrames = 20000;
  constexpr int kThieves = 4;
  std::vector<SpawnFrame> frames(kFrames);

  std::atomic<bool> start{false};
  std::atomic<int> taken_by_owner{0};
  std::vector<std::vector<SpawnFrame*>> stolen(kThieves);

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (true) {
        SpawnFrame* f = dq.steal();
        if (f != nullptr) {
          stolen[t].push_back(f);
          continue;
        }
        if (taken_by_owner.load(std::memory_order_acquire) < 0 && dq.empty()) {
          break;
        }
        std::this_thread::yield();
      }
    });
  }

  start.store(true, std::memory_order_release);
  int own = 0;
  for (int i = 0; i < kFrames; ++i) {
    dq.push(&frames[static_cast<std::size_t>(i)]);
    if (i % 2 == 1) {
      if (dq.take_any() != nullptr) ++own;
    }
  }
  while (dq.take_any() != nullptr) ++own;
  taken_by_owner.store(-1, std::memory_order_release);
  for (auto& th : thieves) th.join();

  std::set<SpawnFrame*> seen;
  int stolen_total = 0;
  for (const auto& v : stolen) {
    for (SpawnFrame* f : v) {
      EXPECT_TRUE(seen.insert(f).second) << "frame stolen twice";
      ++stolen_total;
    }
  }
  EXPECT_EQ(own + stolen_total, kFrames);
}

TEST(DequeStress, ConcurrentBatchStealersLoseNoFrameAndDuplicateNone) {
  // The steal-half torture chamber: the owner pushes and pops (both
  // unconditional take_any and the take_if conflict machinery) while four
  // thieves rip out batches of different sizes — single, pairs, and
  // unbounded halves — so the exc_/thief-lock protocol, the lock-free
  // single-steal fallback, and the owner's conflict path all interleave.
  // Every frame must surface exactly once across owner pops and thief
  // batches.
  Deque dq;
  constexpr int kFrames = 20000;
  constexpr int kThieves = 4;
  std::vector<SpawnFrame> frames(kFrames);

  std::atomic<bool> start{false};
  std::atomic<int> done{0};
  std::vector<std::vector<SpawnFrame*>> stolen(kThieves);

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      // Thief 0 steals singles; the rest use growing batch caps so single
      // CASes and locked batch transactions contend on the same victim.
      const unsigned cap = t == 0 ? 1u
                                  : (t == 1 ? 2u : Deque::kMaxStealBatch);
      SpawnFrame* buf[Deque::kMaxStealBatch];
      while (!start.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      while (true) {
        const unsigned got = dq.steal_batch(buf, cap);
        if (got > 0) {
          for (unsigned i = 0; i < got; ++i) stolen[t].push_back(buf[i]);
          continue;
        }
        if (done.load(std::memory_order_acquire) != 0 && dq.empty()) break;
        std::this_thread::yield();
      }
    });
  }

  start.store(true, std::memory_order_release);
  int own = 0;
  for (int i = 0; i < kFrames; ++i) {
    SpawnFrame* f = &frames[static_cast<std::size_t>(i)];
    dq.push(f);
    if (i % 2 == 1) {
      // Alternate the owner's two pop flavours; take_if exercises the
      // conditional path (mismatch re-push included) under batch fire.
      if (i % 4 == 1) {
        if (dq.take_any() != nullptr) ++own;
      } else {
        if (dq.take_if(f) != nullptr) ++own;
      }
    }
  }
  while (dq.take_any() != nullptr) ++own;
  done.store(1, std::memory_order_release);
  for (auto& th : thieves) th.join();

  std::set<SpawnFrame*> seen;
  int stolen_total = 0;
  for (const auto& v : stolen) {
    for (SpawnFrame* f : v) {
      EXPECT_TRUE(seen.insert(f).second) << "frame stolen twice";
      ++stolen_total;
    }
  }
  EXPECT_EQ(own + stolen_total, kFrames);
}

}  // namespace
