// Pedigree and DPRNG invariants: a strand's spawn pedigree — and therefore
// every DotMix draw — is a pure function of its serial position, identical
// across worker counts, steal-batch settings, forced-steal stress, and
// repeated runs of one seed. These are the guarantees the scenario fuzzer
// and the DPRNG-using workloads replay failures by.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/pedigree.hpp"
#include "runtime/scheduler.hpp"
#include "test_support.hpp"
#include "util/dprng.hpp"

namespace {

using cilkm::Dprng;
using cilkm::fork2join;
using cilkm::parallel_for;
using cilkm::rt::current_pedigree;
using cilkm::rt::PedigreeScope;
using cilkm::rt::Scheduler;
using cilkm::rt::SchedulerOptions;

// ---------------------------------------------------------------------------
// Harnesses. Every shape uses FIXED grains / fanouts so the spawn tree — and
// with it each leaf's pedigree — is independent of the worker count.
// ---------------------------------------------------------------------------

/// Flat loop: each index draws twice (value and a rank-advancing extra) into
/// index-addressed slots, so logs are comparable across any schedule.
/// `jitter` inserts yield points to provoke steals on oversubscribed pools.
std::vector<std::uint64_t> loop_draws(std::uint64_t seed, std::int64_t n,
                                      bool jitter) {
  Dprng rng(seed);
  std::vector<std::uint64_t> out(static_cast<std::size_t>(2 * n));
  parallel_for(0, n, 8, [&](std::int64_t i) {
    out[static_cast<std::size_t>(2 * i)] = rng.next();
    out[static_cast<std::size_t>(2 * i + 1)] = rng.next();
    if (jitter && i % 7 == 0) std::this_thread::yield();
  });
  return out;
}

/// Irregular tree whose SHAPE is itself chosen by DPRNG draws — the
/// strongest self-test: if any draw diverged under some schedule, the tree
/// (and the leaf log) would diverge with it. Leaves append to
/// index-unordered storage via per-leaf slots keyed by a path id.
void draw_tree(Dprng& rng, unsigned depth, std::uint64_t path,
               std::vector<std::pair<std::uint64_t, std::uint64_t>>* log,
               bool jitter) {
  const std::uint64_t r = rng.next();
  if (depth == 0 || r % 3 == 0) {
    const std::uint64_t tail = rng.next();
    // Pre-sized log indexed by path: no synchronization, order-free.
    (*log)[static_cast<std::size_t>(path)] = {r, tail};
    if (jitter) std::this_thread::yield();
    return;
  }
  fork2join([&] { draw_tree(rng, depth - 1, 2 * path + 1, log, jitter); },
            [&] { draw_tree(rng, depth - 1, 2 * path + 2, log, jitter); });
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> tree_draws(
    std::uint64_t seed, unsigned depth, bool jitter) {
  Dprng rng(seed);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> log(
      std::size_t{1} << (depth + 1), {0, 0});
  draw_tree(rng, depth, 0, &log, jitter);
  return log;
}

/// The serial elision of a harness: same calls, no scheduler, pedigree
/// reset to the root exactly as a run()'s root launch does.
template <typename F>
auto serial_elision(F&& body) {
  PedigreeScope scope;
  return body();
}

// ---------------------------------------------------------------------------
// Invariants.
// ---------------------------------------------------------------------------

TEST(Pedigree, SerialElisionMatchesP1AndPN) {
  SCOPED_TRACE(cilkm::test::seed_trace());
  const std::uint64_t seed = cilkm::test::derived_seed(10);
  const auto expect = serial_elision([&] { return loop_draws(seed, 512, false); });
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    Scheduler pool(workers);
    std::vector<std::uint64_t> got;
    pool.run([&] { got = loop_draws(seed, 512, false); });
    EXPECT_EQ(got, expect) << "P=" << workers;
  }
}

TEST(Pedigree, StealBatchHalfAndOneProduceIdenticalStreams) {
  SCOPED_TRACE(cilkm::test::seed_trace());
  const std::uint64_t seed = cilkm::test::derived_seed(11);
  const auto expect = serial_elision([&] { return tree_draws(seed, 9, true); });
  for (const unsigned steal_batch : {0u, 1u, 4u}) {  // 0 = "half"
    SchedulerOptions opts;
    opts.steal_batch = steal_batch;
    Scheduler pool(4, opts);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    pool.run([&] { got = tree_draws(seed, 9, true); });
    EXPECT_EQ(got, expect) << "steal_batch=" << steal_batch;
  }
}

// Forced-steal stress (the PR 5 discipline): oversubscribed pool, yield
// jitter at every leaf so preemption scrambles the schedule each round —
// repeated runs of one seed on one persistent pool must stay bit-identical.
TEST(PedigreeStress, RepeatedRunsUnderForcedStealsAreIdentical) {
  SCOPED_TRACE(cilkm::test::seed_trace());
  const std::uint64_t seed = cilkm::test::derived_seed(12);
  const auto expect = serial_elision([&] { return tree_draws(seed, 10, true); });
  Scheduler pool(8);
  for (int round = 0; round < 6; ++round) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> got;
    pool.run([&] { got = tree_draws(seed, 10, true); });
    ASSERT_EQ(got, expect) << "round " << round;
  }
}

TEST(Pedigree, UniformAndLocalityStealingAgree) {
  SCOPED_TRACE(cilkm::test::seed_trace());
  const std::uint64_t seed = cilkm::test::derived_seed(13);
  const auto expect = serial_elision([&] { return loop_draws(seed, 1024, true); });
  for (const bool locality : {true, false}) {
    SchedulerOptions opts;
    opts.locality_steal = locality;
    Scheduler pool(4, opts);
    std::vector<std::uint64_t> got;
    pool.run([&] { got = loop_draws(seed, 1024, true); });
    EXPECT_EQ(got, expect) << "locality=" << locality;
  }
}

TEST(Pedigree, DrawsWithinAndAcrossStrandsAreDistinct) {
  SCOPED_TRACE(cilkm::test::seed_trace());
  auto draws = serial_elision(
      [&] { return loop_draws(cilkm::test::derived_seed(14), 2048, false); });
  std::sort(draws.begin(), draws.end());
  EXPECT_EQ(std::adjacent_find(draws.begin(), draws.end()), draws.end())
      << "DotMix produced a colliding draw in a 4096-draw stream";
}

TEST(Pedigree, SeedsProduceDecorrelatedStreams) {
  const auto a = serial_elision([&] { return loop_draws(1, 64, false); });
  const auto b = serial_elision([&] { return loop_draws(2, 64, false); });
  EXPECT_NE(a, b);
}

// The rank discipline itself: child prefix+[r] / continuation r+1 / join
// r+2, in the serial elision (the scheduler paths are covered by the
// equality tests above — they'd diverge if any resume point mis-seated it).
TEST(Pedigree, RankDisciplineFollowsSpawnSyncTransitions) {
  PedigreeScope scope;
  EXPECT_EQ(current_pedigree().rank, 0u);
  EXPECT_EQ(cilkm::rt::pedigree_depth(), 1u);
  std::uint64_t child_rank = ~0ull, child_depth = 0;
  std::uint64_t cont_rank = ~0ull;
  fork2join(
      [&] {
        child_rank = current_pedigree().rank;
        child_depth = cilkm::rt::pedigree_depth();
        ASSERT_NE(current_pedigree().parent, nullptr);
        EXPECT_EQ(current_pedigree().parent->rank, 0u);
      },
      [&] { cont_rank = current_pedigree().rank; });
  EXPECT_EQ(child_rank, 0u);
  EXPECT_EQ(child_depth, 2u);
  EXPECT_EQ(cont_rank, 1u);
  EXPECT_EQ(current_pedigree().rank, 2u);
  EXPECT_EQ(cilkm::rt::pedigree_depth(), 1u);

  // A draw consumes one rank, interleaving with spawn ranks.
  Dprng rng(7);
  rng.next();
  EXPECT_EQ(current_pedigree().rank, 3u);
  fork2join([] {}, [] {});
  EXPECT_EQ(current_pedigree().rank, 5u);
}

TEST(Pedigree, HashIsAPureFunctionOfSeedAndPedigree) {
  PedigreeScope scope;
  Dprng a(42), b(42), c(43);
  const auto& ped = current_pedigree();
  EXPECT_EQ(a.hash(ped), b.hash(ped));
  EXPECT_NE(a.hash(ped), c.hash(ped));
  // hash() does not bump; next() returns the same value then bumps.
  const std::uint64_t h = a.hash(ped);
  EXPECT_EQ(a.hash(ped), h);
  EXPECT_EQ(a.next(), h);
  EXPECT_NE(a.hash(ped), h);  // rank advanced
}

// parallel_invoke and SpawnGroup desugar into fork2join, so their draw
// streams inherit the same schedule independence.
TEST(Pedigree, ParallelInvokeAndSpawnGroupAreDeterministic) {
  SCOPED_TRACE(cilkm::test::seed_trace());
  const std::uint64_t seed = cilkm::test::derived_seed(15);
  auto shape = [&] {
    Dprng rng(seed);
    std::vector<std::uint64_t> out(6, 0);
    cilkm::parallel_invoke([&] { out[0] = rng.next(); },
                           [&] { out[1] = rng.next(); },
                           [&] { out[2] = rng.next(); });
    cilkm::SpawnGroup group;
    for (int i = 3; i < 6; ++i) {
      group.spawn([&, i] { out[static_cast<std::size_t>(i)] = rng.next(); });
    }
    group.sync();
    return out;
  };
  const auto expect = serial_elision(shape);
  for (const unsigned workers : {1u, 4u}) {
    Scheduler pool(workers);
    std::vector<std::uint64_t> got;
    pool.run([&] { got = shape(); });
    EXPECT_EQ(got, expect) << "P=" << workers;
  }
}

}  // namespace
