// Reducer semantics tests, run against ALL view-store policies
// (memory-mapped, hypermap, flat) via typed tests: serial equivalence,
// identity/merge behaviour, non-commutative determinism, lifetime, and
// multi-reducer interactions. This is the shared policy-parameterised suite
// every ViewStore implementation must pass.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"

namespace {

using cilkm::fork2join;
using cilkm::parallel_for;

template <typename Policy>
struct ReducerMechanism : ::testing::Test {
  using policy = Policy;
};
using Policies = ::testing::Types<cilkm::mm_policy, cilkm::hypermap_policy,
                                  cilkm::flat_policy>;
TYPED_TEST_SUITE(ReducerMechanism, Policies);

TYPED_TEST(ReducerMechanism, SumOutsideSchedulerIsSerial) {
  cilkm::reducer_opadd<long, TypeParam> sum;
  for (int i = 0; i < 100; ++i) *sum += i;
  EXPECT_EQ(sum.get_value(), 99L * 100 / 2);
}

TYPED_TEST(ReducerMechanism, SumSingleWorker) {
  cilkm::reducer_opadd<long, TypeParam> sum;
  cilkm::run(1, [&] {
    parallel_for(0, 1000, 16, [&](std::int64_t i) { *sum += i; });
  });
  EXPECT_EQ(sum.get_value(), 999L * 1000 / 2);
}

TYPED_TEST(ReducerMechanism, SumManyWorkersWithContention) {
  cilkm::reducer_opadd<long, TypeParam> sum;
  cilkm::run(8, [&] {
    parallel_for(0, 100000, 8, [&](std::int64_t i) { *sum += i; });
  });
  EXPECT_EQ(sum.get_value(), 99999L * 100000 / 2);
}

TYPED_TEST(ReducerMechanism, InitialValueIsPreserved) {
  cilkm::reducer_opadd<long, TypeParam> sum(cilkm::op_add<long>{}, 1000);
  cilkm::run(4, [&] {
    parallel_for(0, 100, 4, [&](std::int64_t) { *sum += 1; });
  });
  EXPECT_EQ(sum.get_value(), 1100);
}

TYPED_TEST(ReducerMechanism, MinMaxReducers) {
  cilkm::reducer_min<int, TypeParam> lo;
  cilkm::reducer_max<int, TypeParam> hi;
  cilkm::run(4, [&] {
    parallel_for(0, 10000, 32, [&](std::int64_t i) {
      const int v = static_cast<int>((i * 2654435761u) % 100000);
      if (v < *lo) *lo = v;
      if (v > *hi) *hi = v;
    });
  });
  int expect_lo = std::numeric_limits<int>::max();
  int expect_hi = std::numeric_limits<int>::lowest();
  for (int i = 0; i < 10000; ++i) {
    const int v = static_cast<int>((static_cast<std::int64_t>(i) * 2654435761u) % 100000);
    expect_lo = std::min(expect_lo, v);
    expect_hi = std::max(expect_hi, v);
  }
  EXPECT_EQ(lo.get_value(), expect_lo);
  EXPECT_EQ(hi.get_value(), expect_hi);
}

TYPED_TEST(ReducerMechanism, BitwiseReducers) {
  cilkm::reducer_opor<std::uint64_t, TypeParam> all_bits;
  cilkm::reducer_opxor<std::uint64_t, TypeParam> parity;
  cilkm::run(4, [&] {
    parallel_for(0, 64, 1, [&](std::int64_t i) {
      *all_bits |= (1ull << i);
      *parity ^= (1ull << i);
    });
  });
  EXPECT_EQ(all_bits.get_value(), ~0ull);
  EXPECT_EQ(parity.get_value(), ~0ull);
}

// The key property the paper's reducers guarantee: for an associative but
// NON-commutative monoid, the parallel result is identical to the serial
// one. String concatenation over an index range makes any ordering bug
// visible.
TYPED_TEST(ReducerMechanism, NonCommutativeDeterminism) {
  std::string expected;
  for (int i = 0; i < 2000; ++i) expected += std::to_string(i) + ",";

  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    cilkm::string_reducer<TypeParam> cat;
    cilkm::run(workers, [&] {
      parallel_for(0, 2000, 8, [&](std::int64_t i) {
        *cat += std::to_string(i) + ",";
      });
    });
    EXPECT_EQ(cat.get_value(), expected) << "workers=" << workers;
  }
}

TYPED_TEST(ReducerMechanism, NonCommutativeDeterminismUnderForcedSteals) {
  // Jittered work makes steal points vary run to run; the output must not.
  std::string expected;
  for (int i = 0; i < 256; ++i) expected += static_cast<char>('a' + i % 26);

  for (int round = 0; round < 5; ++round) {
    cilkm::string_reducer<TypeParam> cat;
    cilkm::run(4, [&] {
      parallel_for(0, 256, 1, [&](std::int64_t i) {
        if ((i * 7 + round) % 11 == 0) std::this_thread::yield();
        *cat += static_cast<char>('a' + i % 26);
      });
    });
    EXPECT_EQ(cat.get_value(), expected) << "round " << round;
  }
}

TYPED_TEST(ReducerMechanism, ListAppendMatchesSerial) {
  // The paper's Figure 2 use case.
  cilkm::list_append_reducer<int, TypeParam> list;
  cilkm::run(4, [&] {
    parallel_for(0, 5000, 16, [&](std::int64_t i) {
      list->push_back(static_cast<int>(i));
    });
  });
  const auto& result = list.get_value();
  ASSERT_EQ(result.size(), 5000u);
  int expect = 0;
  for (const int v : result) EXPECT_EQ(v, expect++);
}

TYPED_TEST(ReducerMechanism, VectorConcatMatchesSerial) {
  cilkm::vector_reducer<int, TypeParam> vec;
  cilkm::run(8, [&] {
    parallel_for(0, 20000, 64, [&](std::int64_t i) {
      vec->push_back(static_cast<int>(i));
    });
  });
  const auto& v = vec.get_value();
  ASSERT_EQ(v.size(), 20000u);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
  EXPECT_EQ(v.front(), 0);
  EXPECT_EQ(v.back(), 19999);
}

TYPED_TEST(ReducerMechanism, ManyReducersSimultaneously) {
  constexpr int kReducers = 300;  // spans multiple SPA pages
  std::vector<std::unique_ptr<cilkm::reducer_opadd<long, TypeParam>>> sums;
  sums.reserve(kReducers);
  for (int r = 0; r < kReducers; ++r) {
    sums.push_back(std::make_unique<cilkm::reducer_opadd<long, TypeParam>>());
  }
  cilkm::run(4, [&] {
    parallel_for(0, 30000, 64, [&](std::int64_t i) {
      *(*sums[static_cast<std::size_t>(i) % kReducers]) += 1;
    });
  });
  long total = 0;
  for (auto& s : sums) total += s->get_value();
  EXPECT_EQ(total, 30000);
}

TYPED_TEST(ReducerMechanism, ReducerCreatedAndDestroyedInsideRun) {
  long outer_total = 0;
  cilkm::run(4, [&] {
    for (int round = 0; round < 10; ++round) {
      cilkm::reducer_opadd<long, TypeParam> sum;
      parallel_for(0, 1000, 8, [&](std::int64_t) { *sum += 1; });
      outer_total += sum.get_value();
    }
  });
  EXPECT_EQ(outer_total, 10000);
}

TYPED_TEST(ReducerMechanism, ReducerReusedAcrossRuns) {
  cilkm::reducer_opadd<long, TypeParam> sum;
  for (int round = 0; round < 3; ++round) {
    cilkm::run(4, [&] {
      parallel_for(0, 1000, 8, [&](std::int64_t) { *sum += 1; });
    });
  }
  EXPECT_EQ(sum.get_value(), 3000);
}

TYPED_TEST(ReducerMechanism, SetAndMoveValue) {
  cilkm::reducer_opadd<long, TypeParam> sum;
  sum.set_value(7);
  cilkm::run(2, [&] {
    parallel_for(0, 10, 1, [&](std::int64_t) { *sum += 1; });
  });
  EXPECT_EQ(sum.move_value(), 17);
}

TYPED_TEST(ReducerMechanism, NestedParallelismSharingOneReducer) {
  cilkm::reducer_opadd<long, TypeParam> sum;
  cilkm::run(4, [&] {
    parallel_for(0, 50, 1, [&](std::int64_t) {
      parallel_for(0, 50, 4, [&](std::int64_t) { *sum += 1; });
    });
  });
  EXPECT_EQ(sum.get_value(), 2500);
}

TYPED_TEST(ReducerMechanism, GetValueMidRunSeesLocalView) {
  // Inside a run get_value() returns the strand's local view, as in Cilk
  // Plus; after the run the folded total is exact.
  cilkm::reducer_opadd<long, TypeParam> sum;
  cilkm::run(2, [&] {
    *sum += 5;
    EXPECT_GE(sum.get_value(), 5);
  });
  EXPECT_EQ(sum.get_value(), 5);
}

// Regression test for a join-protocol race: the thief must deposit its
// views *before* announcing its join arrival, or the victim's "thief
// already done" fast path can merge a half-built deposit (observed as heap
// corruption). Oversubscribed workers + frequent yields recreate the high
// steal rate that exposed it.
TYPED_TEST(ReducerMechanism, HighStealRateJoinDepositRace) {
  for (int round = 0; round < 3; ++round) {
    std::vector<std::unique_ptr<cilkm::reducer_opadd<long, TypeParam>>> sums;
    for (int r = 0; r < 64; ++r) {
      sums.push_back(std::make_unique<cilkm::reducer_opadd<long, TypeParam>>());
    }
    cilkm::run(16, [&] {
      parallel_for(0, 20000, 64, [&](std::int64_t i) {
        *(*sums[static_cast<std::size_t>(i) & 63]) += 1;
        if (i % 256 == 0) std::this_thread::yield();
      });
    });
    long total = 0;
    for (auto& s : sums) total += s->get_value();
    EXPECT_EQ(total, 20000) << "round " << round;
  }
}

// Mixing all mechanisms in one computation must work (the benchmarks rely
// on it).
TEST(MixedMechanisms, AllPoliciesCoexist) {
  cilkm::reducer_opadd<long, cilkm::mm_policy> a;
  cilkm::reducer_opadd<long, cilkm::hypermap_policy> b;
  cilkm::reducer_opadd<long, cilkm::flat_policy> c;
  cilkm::run(4, [&] {
    parallel_for(0, 10000, 16, [&](std::int64_t) {
      *a += 1;
      *b += 2;
      *c += 3;
    });
  });
  EXPECT_EQ(a.get_value(), 10000);
  EXPECT_EQ(b.get_value(), 20000);
  EXPECT_EQ(c.get_value(), 30000);
}

TEST(FlatReducer, FlatIdIsDenseAndRecycled) {
  cilkm::reducer_opadd<int, cilkm::flat_policy> r1;
  cilkm::reducer_opadd<int, cilkm::flat_policy> r2;
  EXPECT_NE(r1.flat_id(), r2.flat_id());
  std::uint32_t recycled;
  {
    cilkm::reducer_opadd<int, cilkm::flat_policy> r3;
    recycled = r3.flat_id();
  }
  cilkm::reducer_opadd<int, cilkm::flat_policy> r4;
  EXPECT_EQ(r4.flat_id(), recycled);  // LIFO reuse keeps the id space dense
}

TEST(MmReducer, TlmmAddrIsStableAndSlotShaped) {
  cilkm::reducer_opadd<int> r1;
  cilkm::reducer_opadd<int> r2;
  EXPECT_NE(r1.tlmm_addr(), r2.tlmm_addr());
  EXPECT_EQ(r1.tlmm_addr() % 16, 0u);  // 16-byte slots
  EXPECT_EQ(r2.tlmm_addr() % 16, 0u);
}

TEST(MmReducer, SlotIsRecycledAfterDestruction) {
  std::uint64_t addr1;
  {
    cilkm::reducer_opadd<int> r;
    addr1 = r.tlmm_addr();
  }
  cilkm::reducer_opadd<int> r2;
  EXPECT_EQ(r2.tlmm_addr(), addr1);  // LIFO reuse from the global pool
}

}  // namespace
