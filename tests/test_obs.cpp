// The observability layer: work/span profiler semantics (a fork-free root
// has parallelism exactly 1; fib's measured parallelism grows with input;
// span <= work and burdened span >= span always), the metrics registry's
// aggregation and flattened naming, and the Chrome-trace exporter's output
// shape.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/trace_export.hpp"
#include "runtime/api.hpp"
#include "runtime/trace.hpp"

namespace {

using cilkm::obs::MetricsSnapshot;
using cilkm::obs::Profiler;
using cilkm::obs::RunProfile;
using cilkm::rt::Tracer;

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::instance().reset();
    Profiler::instance().enable();
  }
  void TearDown() override {
    Profiler::instance().disable();
    Profiler::instance().reset();
  }
};

/// ~`iters` of un-elidable serial work.
std::uint64_t spin_work(std::uint64_t iters) {
  volatile std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < iters; ++i) acc = acc + i;
  return acc;
}

std::uint64_t fib_spawn(unsigned n) {
  if (n < 2) return n;
  std::uint64_t a = 0, b = 0;
  cilkm::fork2join([&] { a = fib_spawn(n - 1); },
                   [&] { b = fib_spawn(n - 2); });
  return a + b;
}

TEST_F(ProfilerTest, ForkFreeRootHasParallelismExactlyOne) {
  // A root strand that never spawns is one strand: work and span accumulate
  // identically, so T1/T-inf is 1 by construction — the P=1 sanity anchor.
  cilkm::run(1, [] { spin_work(2'000'000); });
  const RunProfile prof = Profiler::instance().totals();
  ASSERT_EQ(prof.runs, 1u);
  ASSERT_GT(prof.work_ns, 0u);
  EXPECT_EQ(prof.work_ns, prof.span_ns);
  EXPECT_NEAR(prof.parallelism(), 1.0, 1e-9);
  EXPECT_NEAR(prof.burdened_parallelism(), 1.0, 1e-9);
}

TEST_F(ProfilerTest, FibParallelismGrowsWithInputSize) {
  // fib's DAG parallelism is ~fib(n)/n, so the measured T1/T-inf must climb
  // steeply with n — and the measurement is schedule-independent, so P=1
  // (every frame self-popped, none stolen) must show it too.
  cilkm::run(1, [] { fib_spawn(10); });
  const RunProfile small = Profiler::instance().totals();
  Profiler::instance().reset();
  cilkm::run(1, [] { fib_spawn(20); });
  const RunProfile large = Profiler::instance().totals();

  ASSERT_EQ(small.runs, 1u);
  ASSERT_EQ(large.runs, 1u);
  EXPECT_GT(large.parallelism(), 2.0);
  EXPECT_GT(large.parallelism(), small.parallelism() * 1.5)
      << "fib(10) parallelism " << small.parallelism() << ", fib(20) "
      << large.parallelism();
}

TEST_F(ProfilerTest, SpanBoundsHoldUnderParallelRuns) {
  for (const unsigned p : {1u, 4u}) {
    Profiler::instance().reset();
    cilkm::run(p, [] {
      cilkm::parallel_for(0, 2000, 16, [](std::int64_t) { spin_work(200); });
    });
    const RunProfile prof = Profiler::instance().totals();
    ASSERT_EQ(prof.runs, 1u);
    EXPECT_GT(prof.span_ns, 0u);
    EXPECT_LE(prof.span_ns, prof.work_ns) << "P=" << p;
    EXPECT_GE(prof.burdened_span_ns, prof.span_ns) << "P=" << p;
    EXPECT_GE(prof.parallelism(), prof.burdened_parallelism()) << "P=" << p;
  }
}

TEST_F(ProfilerTest, ForcedStealChargesBurden) {
  // The classic forced-steal shape: a() spins until b ran on a thief. The
  // steal latency and join protocol costs must land in the burdened span,
  // never in the plain span.
  std::atomic<bool> right_ran{false};
  cilkm::run(2, [&] {
    cilkm::fork2join(
        [&] {
          while (!right_ran.load()) std::this_thread::yield();
        },
        [&] { right_ran.store(true); });
  });
  const RunProfile prof = Profiler::instance().totals();
  ASSERT_EQ(prof.runs, 1u);
  EXPECT_LE(prof.span_ns, prof.work_ns);
  EXPECT_GE(prof.burdened_span_ns, prof.span_ns);
}

TEST_F(ProfilerTest, TotalsSumAcrossRunsAndResetClears) {
  cilkm::run(1, [] { spin_work(100'000); });
  cilkm::run(1, [] { spin_work(100'000); });
  EXPECT_EQ(Profiler::instance().totals().runs, 2u);
  Profiler::instance().reset();
  EXPECT_EQ(Profiler::instance().totals().runs, 0u);
  EXPECT_EQ(Profiler::instance().totals().work_ns, 0u);
}

TEST_F(ProfilerTest, DisabledProfilerRecordsNothing) {
  Profiler::instance().disable();
  cilkm::run(2, [] { fib_spawn(12); });
  EXPECT_EQ(Profiler::instance().totals().runs, 0u);
}

TEST(SerialElision, ProfilesOutsideTheScheduler) {
  // fork2join outside any scheduler (the serial elision) must keep the same
  // accounting: spawning strands still split, so parallelism > 1.
  Profiler::instance().reset();
  Profiler::instance().enable();
  auto& ps = cilkm::obs::current_profile();
  ps = {};
  cilkm::obs::strand_begin(ps);
  fib_spawn(15);
  auto& ps2 = cilkm::obs::current_profile();
  cilkm::obs::strand_end(ps2);
  EXPECT_LT(ps2.span, ps2.work);
  Profiler::instance().disable();
}

TEST(MetricsRegistry, CaptureAggregatesPerWorkerStats) {
  cilkm::rt::Scheduler sched(2);
  sched.run([] {
    cilkm::parallel_for(0, 2000, 8, [](std::int64_t) { spin_work(100); });
  });
  const MetricsSnapshot snap = cilkm::obs::capture(&sched);
  EXPECT_EQ(snap.workers, 2u);
  ASSERT_EQ(snap.per_worker.size(), 2u);
  for (unsigned c = 0; c < static_cast<unsigned>(cilkm::StatCounter::kCount);
       ++c) {
    const auto counter = static_cast<cilkm::StatCounter>(c);
    EXPECT_EQ(snap.aggregate[counter],
              snap.per_worker[0][counter] + snap.per_worker[1][counter])
        << cilkm::to_string(counter);
  }
  // The pool did real work: at least the root launch allocated a fiber.
  EXPECT_GT(snap.aggregate[cilkm::StatCounter::kFibersAllocated], 0u);
}

TEST(MetricsRegistry, FlattenUsesStableNames) {
  const MetricsSnapshot snap = cilkm::obs::capture(nullptr);
  EXPECT_EQ(snap.workers, 0u);
  std::vector<std::string> names;
  for (const auto& m : snap.flatten()) names.push_back(m.name);
  for (const char* expected :
       {"workers", "steals", "stolen_frames", "hypermerge_ns",
        "view_transfer_ns", "steal_ns_t0", "steal_count_t2",
        "steal_hist_t0_b0", "steal_hist_t2_b7", "mem.views.live_bytes",
        "mem.frames.peak_blocks", "mem.general.refills",
        "trace_dropped_records"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing metric " << expected;
  }
}

TEST(TraceExport, ChromeTraceHasExpectedShape) {
  auto& tracer = Tracer::instance();
  tracer.reset();
  tracer.enable();
  std::atomic<bool> right_ran{false};
  cilkm::run(2, [&] {
    cilkm::fork2join(
        [&] {
          while (!right_ran.load()) std::this_thread::yield();
        },
        [&] { right_ran.store(true); });
  });
  tracer.disable();

  std::ostringstream out;
  cilkm::obs::write_chrome_trace(tracer.snapshot(),
                                 cilkm::obs::capture(nullptr), out);
  const std::string json = out.str();
  tracer.reset();

  for (const char* expected :
       {"\"schema\":\"cilkm-trace-v1\"", "\"displayTimeUnit\":\"ms\"",
        "\"otherData\":{", "\"ring_wrapped\":0", "\"traceEvents\":[",
        "\"ph\":\"M\"", "\"ph\":\"X\"", "\"ph\":\"i\"", "\"ph\":\"C\"",
        "\"name\":\"process_name\"", "\"name\":\"worker 0\"",
        "\"name\":\"root_done\"", "\"name\":\"steal\"", "\"name\":\"sched\"",
        "\"steals\":", "\"frame\":\"0x"}) {
    EXPECT_NE(json.find(expected), std::string::npos)
        << "missing " << expected;
  }
  // Balanced brackets at the gross level: one object, one event list.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json[json.size() - 2], '}');  // trailing newline after the brace
}

TEST(TraceExport, EmptyTraceStillValidJsonShape) {
  std::ostringstream out;
  cilkm::obs::write_chrome_trace({}, cilkm::obs::capture(nullptr), out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
}

}  // namespace
