// Context-switch and stack-pool tests: the fiber substrate under the
// scheduler (Cilk-M's cactus stack stand-in).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/context.hpp"
#include "runtime/stack_pool.hpp"

namespace {

using cilkm::rt::Context;
using cilkm::rt::Fiber;
using cilkm::rt::StackPool;

struct PingPong {
  Context main_ctx;
  Context fiber_ctx;
  std::vector<int> trace;
};

void pingpong_fn(void* arg) {
  auto* pp = static_cast<PingPong*>(arg);
  pp->trace.push_back(1);
  cilkm_ctx_switch(&pp->fiber_ctx, &pp->main_ctx);
  pp->trace.push_back(3);
  cilkm_ctx_switch(&pp->fiber_ctx, &pp->main_ctx);
  // never reached
}

TEST(Context, SwitchRoundTripPreservesControlFlow) {
  PingPong pp;
  Fiber* fiber = StackPool::instance().acquire();
  pp.trace.push_back(0);
  cilkm_ctx_start(&pp.main_ctx, fiber->stack_top, &pingpong_fn, &pp);
  pp.trace.push_back(2);
  cilkm_ctx_switch(&pp.main_ctx, &pp.fiber_ctx);
  pp.trace.push_back(4);
  EXPECT_EQ(pp.trace, (std::vector<int>{0, 1, 2, 3, 4}));
  StackPool::instance().release(fiber);
}

struct DeepState {
  Context main_ctx;
  Context fiber_ctx;
  std::uint64_t result = 0;
};

std::uint64_t deep_sum(int n) {
  if (n == 0) return 0;
  // Prevent tail-call elision so the fiber stack is really exercised.
  volatile std::uint64_t v = static_cast<std::uint64_t>(n);
  return v + deep_sum(n - 1);
}

void deep_fn(void* arg) {
  auto* state = static_cast<DeepState*>(arg);
  state->result = deep_sum(4000);  // a few hundred KB of frames
  cilkm_ctx_switch(&state->fiber_ctx, &state->main_ctx);
}

TEST(Context, FiberStackSupportsDeepRecursion) {
  DeepState state;
  Fiber* fiber = StackPool::instance().acquire();
  cilkm_ctx_start(&state.main_ctx, fiber->stack_top, &deep_fn, &state);
  EXPECT_EQ(state.result, 4000ull * 4001 / 2);
  StackPool::instance().release(fiber);
}

struct ArgCheck {
  Context main_ctx;
  Context dummy_save;  // save slot for the dying fiber; never resumed
  void* seen = nullptr;
};

void arg_fn(void* arg) {
  auto* check = static_cast<ArgCheck*>(arg);
  check->seen = arg;
  cilkm_ctx_switch(&check->dummy_save, &check->main_ctx);
}

TEST(Context, ArgumentIsDeliveredToEntryFunction) {
  ArgCheck check;
  Fiber* fiber = StackPool::instance().acquire();
  cilkm_ctx_start(&check.main_ctx, fiber->stack_top, &arg_fn, &check);
  EXPECT_EQ(check.seen, &check);
  StackPool::instance().release(fiber);
}

TEST(StackPool, RecyclesFibers) {
  // Recycle through an explicit per-worker cache: the shard path is only
  // LIFO per node, and an unpinned test thread may migrate between the
  // release and the re-acquire, so the local cache is the deterministic way
  // to observe reuse.
  auto& pool = StackPool::instance();
  cilkm::rt::LocalFiberCache cache;
  Fiber* f1 = pool.acquire(&cache);
  pool.release(f1, &cache);
  Fiber* f2 = pool.acquire(&cache);
  EXPECT_EQ(f1, f2);  // LIFO reuse
  pool.release(f2, &cache);
  pool.flush(cache);
}

TEST(StackPool, StacksAreDistinctAndSized) {
  auto& pool = StackPool::instance();
  Fiber* f1 = pool.acquire();
  Fiber* f2 = pool.acquire();
  EXPECT_NE(f1->alloc_base, f2->alloc_base);
  EXPECT_EQ(f1->alloc_size, StackPool::kDefaultStackBytes);
  EXPECT_EQ(static_cast<std::byte*>(f1->stack_top) - f1->alloc_base,
            static_cast<std::ptrdiff_t>(f1->alloc_size));
  pool.release(f1);
  pool.release(f2);
}

}  // namespace
