// Golden test for bench/harness.hpp's JsonReport: the BENCH_*.json files
// are consumed by cross-PR perf tracking, so the emitted bytes — figure
// name, schema tag, series/x rows, median/stddev metric fields, null for
// non-finite values — are pinned here character for character. Plus unit
// coverage for the median used by RunStat.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "bench/harness.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(JsonReport, GoldenOutputIsByteExact) {
  const std::string path = "BENCH_golden.json";
  {
    bench::JsonReport report("golden");
    report.add("sum_loop/mm", 1,
               {{"median_s", 0.5}, {"stddev_s", 0.25}, {"verified", 1}});
    report.add("pbfs/flat", 2,
               {{"median_s", 0.125}, {"stddev_s", 0}, {"verified", 1}});
    report.add("nonfinite", 3, {{"median_s", std::nan("")}});
    // Destructor flushes.
  }

  const std::string expected =
      "{\n"
      "  \"figure\": \"golden\",\n"
      "  \"schema\": \"cilkm-bench-v1\",\n"
      "  \"rows\": [\n"
      "    {\"series\": \"sum_loop/mm\", \"x\": 1, \"metrics\": "
      "{\"median_s\": 0.5, \"stddev_s\": 0.25, \"verified\": 1}},\n"
      "    {\"series\": \"pbfs/flat\", \"x\": 2, \"metrics\": "
      "{\"median_s\": 0.125, \"stddev_s\": 0, \"verified\": 1}},\n"
      "    {\"series\": \"nonfinite\", \"x\": 3, \"metrics\": "
      "{\"median_s\": null}}\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(slurp(path), expected);
  std::remove(path.c_str());
}

TEST(JsonReport, EmptyReportStillWellFormed) {
  const std::string path = "BENCH_golden_empty.json";
  { bench::JsonReport report("golden_empty"); }
  const std::string expected =
      "{\n"
      "  \"figure\": \"golden_empty\",\n"
      "  \"schema\": \"cilkm-bench-v1\",\n"
      "  \"rows\": [\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(slurp(path), expected);
  std::remove(path.c_str());
}

TEST(JsonReport, FlushIsIdempotent) {
  const std::string path = "BENCH_golden_once.json";
  bench::JsonReport report("golden_once");
  report.add("s", 1, {{"m", 2}});
  report.flush();
  const std::string first = slurp(path);
  report.flush();  // must not rewrite or duplicate
  EXPECT_EQ(slurp(path), first);
  std::remove(path.c_str());
}

TEST(RunStat, MedianOddEvenEmpty) {
  EXPECT_EQ(bench::median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_EQ(bench::median({4.0, 1.0, 3.0, 2.0}), 2.5);
  EXPECT_EQ(bench::median({7.0}), 7.0);
  EXPECT_EQ(bench::median({}), 0.0);
}

TEST(RunStat, RepeatFillsAllFields) {
  const bench::RunStat stat = bench::repeat(5, [] {});
  EXPECT_GE(stat.mean_s, 0.0);
  EXPECT_GE(stat.median_s, 0.0);
  EXPECT_GE(stat.stddev_s, 0.0);
}

}  // namespace
