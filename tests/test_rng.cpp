// Golden-value pins for the random-number generators. Recorded fuzz seeds,
// canned replay CTest cases, and every "replay with --seed X" diagnostic
// assume that (seed → stream) never changes: a platform quirk or a
// well-meaning refactor of util/rng.hpp or util/dprng.hpp that shifts any
// stream would silently invalidate all recorded seeds. These tests turn
// such a drift into a loud failure with the exact constants to investigate.
#include <gtest/gtest.h>

#include <cstdint>

#include "runtime/pedigree.hpp"
#include "util/dprng.hpp"
#include "util/rng.hpp"

namespace {

// The splitmix64 sequence from kDefaultSeed — the stream Xoshiro256 seeds
// its state words from, and the derivation base of test_support.hpp's
// derived_seed().
TEST(RngGolden, SplitMix64SequenceFromDefaultSeed) {
  std::uint64_t state = cilkm::kDefaultSeed;
  EXPECT_EQ(cilkm::splitmix64(state), 0xfbfd33b4b6e4d3f7ULL);
  EXPECT_EQ(cilkm::splitmix64(state), 0xe32b9bc4598b0c68ULL);
  EXPECT_EQ(cilkm::splitmix64(state), 0x272a85352b21bfcfULL);
  EXPECT_EQ(cilkm::splitmix64(state), 0xac591be38eacdfe9ULL);
}

TEST(RngGolden, Xoshiro256FirstOutputsForDefaultSeed) {
  cilkm::Xoshiro256 rng;  // default-constructs with kDefaultSeed
  EXPECT_EQ(rng(), 0x5530c1deb89725efULL);
  EXPECT_EQ(rng(), 0xa9faa1c0e3770917ULL);
  EXPECT_EQ(rng(), 0xeba5395d5d10a6f0ULL);
  EXPECT_EQ(rng(), 0x33a8dbb7a385d6cbULL);
}

// A second seed pins the seeding path itself (state = splitmix64 stream of
// the seed), not just the default-seed state.
TEST(RngGolden, Xoshiro256FirstOutputsForSeedOne) {
  cilkm::Xoshiro256 rng(1);
  EXPECT_EQ(rng(), 0xb3f2af6d0fc710c5ULL);
  EXPECT_EQ(rng(), 0x853b559647364ceaULL);
}

TEST(RngGolden, ExplicitDefaultSeedMatchesDefaultConstruction) {
  cilkm::Xoshiro256 a;
  cilkm::Xoshiro256 b(cilkm::kDefaultSeed);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a(), b());
}

// The DotMix stream at the root pedigree: pins the Γ-table derivation, the
// compression prime, and the mixer, so recorded fuzz seeds stay replayable.
TEST(RngGolden, DprngFirstDrawsAtRootPedigreeForDefaultSeed) {
  cilkm::rt::PedigreeScope scope;
  cilkm::Dprng rng(cilkm::kDefaultSeed);
  EXPECT_EQ(rng.next(), 0x0b403e48e20daf67ULL);
  EXPECT_EQ(rng.next(), 0xa98ec1caae4e3207ULL);
  EXPECT_EQ(rng.next(), 0xc0686fd5342f0228ULL);
  EXPECT_EQ(rng.next(), 0x3f6467eb12e12d15ULL);
}

}  // namespace
