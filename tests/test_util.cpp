// Utility-layer tests: RNG determinism and distribution, cache padding,
// spinlock mutual exclusion, timers, stats counters.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "util/cache.hpp"
#include "util/rng.hpp"
#include "util/spinlock.hpp"
#include "util/stats.hpp"
#include "util/timing.hpp"

namespace {

using namespace cilkm;

TEST(Rng, DeterministicForEqualSeeds) {
  Xoshiro256 a(42), b(42), c(43);
  bool any_differ = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    any_differ |= (va != c());
  }
  EXPECT_TRUE(any_differ);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 10ull, 1000000007ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256 rng(1234);
  constexpr int kBuckets = 16, kSamples = 160000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets / 5);
  }
}

TEST(Rng, Uniform01InUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitMixAdvancesState) {
  std::uint64_t s = 0;
  const auto v1 = splitmix64(s);
  const auto v2 = splitmix64(s);
  EXPECT_NE(v1, v2);
  EXPECT_NE(s, 0u);
}

TEST(CachePadded, ElementsDoNotShareCacheLines) {
  CachePadded<int> arr[4];
  for (int i = 0; i < 3; ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&arr[i].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1].value);
    EXPECT_GE(b - a, kCacheLineSize);
  }
  arr[0].value = 5;
  EXPECT_EQ(*arr[0], 5);
  EXPECT_EQ(arr[1].value, 0);
}

TEST(SpinLock, ProvidesMutualExclusion) {
  SpinLock lock;
  long counter = 0;
  constexpr int kThreads = 4, kIters = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        std::lock_guard guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(SpinLock, TryLockReflectsState) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Timing, NowNsIsMonotonic) {
  const auto t1 = now_ns();
  const auto t2 = now_ns();
  EXPECT_LE(t1, t2);
}

TEST(Timing, ScopedTimerAccumulates) {
  std::uint64_t sink = 0;
  {
    ScopedTimerNs timer(sink);
    volatile int x = 0;
    for (int i = 0; i < 10000; ++i) x = x + 1;
  }
  EXPECT_GT(sink, 0u);
  const std::uint64_t first = sink;
  {
    ScopedTimerNs timer(sink);
    volatile int x = 0;
    for (int i = 0; i < 10000; ++i) x = x + 1;
  }
  EXPECT_GT(sink, first);
}

TEST(Stats, CountersIndexAndAggregate) {
  WorkerStats a, b;
  a[StatCounter::kSteals] = 3;
  b[StatCounter::kSteals] = 4;
  b[StatCounter::kViewsCreated] = 9;
  a += b;
  EXPECT_EQ(a[StatCounter::kSteals], 7u);
  EXPECT_EQ(a[StatCounter::kViewsCreated], 9u);
  a.reset();
  EXPECT_EQ(a[StatCounter::kSteals], 0u);
}

TEST(Stats, EveryCounterHasAName) {
  for (unsigned i = 0; i < static_cast<unsigned>(StatCounter::kCount); ++i) {
    EXPECT_NE(to_string(static_cast<StatCounter>(i)), "?");
  }
}

}  // namespace
