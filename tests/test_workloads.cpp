// The scenario matrix as the regression suite: every registered workload ×
// every view-store policy (mm/spa, hypermap, flat) × P ∈ {1, 2,
// hardware_concurrency}, each cell self-verifying against its serial
// reference. The parameter list is generated from the workload registry, so
// registering a new workload automatically grows this sweep (and CTest,
// via gtest_discover_tests). Cells run on one shared persistent Scheduler
// per worker count (see shared_pool), mirroring cilkm_run's pool reuse.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "test_support.hpp"
#include "workloads/driver.hpp"
#include "workloads/workload.hpp"

namespace {

using cilkm::workloads::PolicyKind;
using cilkm::workloads::Registry;
using cilkm::workloads::RunConfig;
using cilkm::workloads::RunResult;
using cilkm::workloads::Workload;

struct Cell {
  const Workload* workload;
  PolicyKind policy;
  unsigned workers;
};

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  return info.param.workload->name + "_" +
         cilkm::workloads::policy_name(info.param.policy) + "_P" +
         std::to_string(info.param.workers);
}

std::vector<Cell> matrix() {
  std::vector<Cell> cells;
  for (const Workload& w : Registry::instance().all()) {
    for (const PolicyKind policy : cilkm::workloads::kAllPolicies) {
      for (const unsigned p : cilkm::workloads::default_worker_counts()) {
        cells.push_back({&w, policy, p});
      }
    }
  }
  return cells;
}

/// One persistent Scheduler per worker count, shared by every cell in this
/// process — the same pool-reuse discipline cilkm_run's run_matrix uses, so
/// the sweep exercises warm workers instead of rebuilding a thread pool per
/// cell. Intentionally leaked: the pools must outlive every test, and a
/// static destructor joining threads during process teardown buys nothing.
cilkm::rt::Scheduler* shared_pool(unsigned workers) {
  static auto* pools =
      new std::map<unsigned, std::unique_ptr<cilkm::rt::Scheduler>>;
  auto& pool = (*pools)[workers];
  if (pool == nullptr) pool = std::make_unique<cilkm::rt::Scheduler>(workers);
  return pool.get();
}

class WorkloadMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(WorkloadMatrix, CellVerifiesAgainstSerialReference) {
  SCOPED_TRACE(cilkm::test::seed_trace());
  const Cell& cell = GetParam();
  RunConfig cfg;
  cfg.workers = cell.workers;
  cfg.scale = 1;
  cfg.seed = cilkm::test::base_seed();
  cfg.scheduler = shared_pool(cell.workers);
  const RunResult result = cell.workload->run_policy(cell.policy, cfg);
  EXPECT_TRUE(result.verified)
      << cell.workload->name << " under "
      << cilkm::workloads::policy_name(cell.policy) << " with P="
      << cell.workers << ": " << result.detail;
  EXPECT_GT(result.items, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllCells, WorkloadMatrix,
                         ::testing::ValuesIn(matrix()), cell_name);

// The registry itself: the acceptance floor of nine workloads, uniqueness,
// and a populated run table for every policy.
TEST(WorkloadRegistry, AtLeastNineWorkloadsAllComplete) {
  const auto& all = Registry::instance().all();
  EXPECT_GE(all.size(), 9u);
  for (const Workload& w : all) {
    EXPECT_FALSE(w.name.empty());
    EXPECT_FALSE(w.summary.empty());
    for (int p = 0; p < cilkm::workloads::kNumPolicies; ++p) {
      EXPECT_NE(w.run[p], nullptr) << w.name;
    }
    EXPECT_EQ(Registry::instance().find(w.name), &w);
  }
}

TEST(WorkloadRegistry, FindUnknownReturnsNull) {
  EXPECT_EQ(Registry::instance().find("no_such_workload"), nullptr);
}

// Driver plumbing: flag parsing and policy names round-trip.
TEST(WorkloadDriver, ParsesFlagsAndRejectsGarbage) {
  using cilkm::workloads::DriverOptions;
  const char* argv_ok[] = {"cilkm_run", "--workload", "pbfs",    "--policy",
                           "flat",      "--workers",  "1,2,4",   "--scale",
                           "2",         "--seed",     "0x12345", "--reps",
                           "3"};
  DriverOptions opts;
  ASSERT_TRUE(cilkm::workloads::parse_driver_options(
      static_cast<int>(std::size(argv_ok)), const_cast<char**>(argv_ok),
      &opts));
  EXPECT_EQ(opts.workload_names, std::vector<std::string>{"pbfs"});
  ASSERT_EQ(opts.policies.size(), 1u);
  EXPECT_EQ(opts.policies[0], PolicyKind::kFlat);
  EXPECT_EQ(opts.workers, (std::vector<unsigned>{1, 2, 4}));
  EXPECT_EQ(opts.scale, 2u);
  EXPECT_EQ(opts.seed, 0x12345u);
  EXPECT_EQ(opts.reps, 3);

  const char* argv_bad[] = {"cilkm_run", "--policy", "spaghetti"};
  DriverOptions bad;
  EXPECT_FALSE(cilkm::workloads::parse_driver_options(
      3, const_cast<char**>(argv_bad), &bad));

  const char* argv_bad2[] = {"cilkm_run", "--workers", "0"};
  DriverOptions bad2;
  EXPECT_FALSE(cilkm::workloads::parse_driver_options(
      3, const_cast<char**>(argv_bad2), &bad2));
}

TEST(WorkloadDriver, PolicyNamesRoundTrip) {
  for (const PolicyKind kind : cilkm::workloads::kAllPolicies) {
    PolicyKind parsed;
    ASSERT_TRUE(cilkm::workloads::parse_policy(
        cilkm::workloads::policy_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  PolicyKind ignored;
  EXPECT_FALSE(cilkm::workloads::parse_policy("spa_map", &ignored));
}

}  // namespace
