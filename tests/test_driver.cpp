// The cilkm_run driver CLI and run_matrix behaviour: --help exits cleanly
// without running the matrix, bad numeric values are rejected instead of
// silently defaulted, no BENCH_*.json is written unless a figure is
// requested, and the example shims reject garbage argv.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "workloads/driver.hpp"

namespace {

using cilkm::workloads::DriverOptions;
using cilkm::workloads::example_main;
using cilkm::workloads::parse_driver_options;
using cilkm::workloads::run_matrix;

bool parse(std::vector<const char*> args, DriverOptions* out) {
  args.insert(args.begin(), "cilkm_run");
  return parse_driver_options(static_cast<int>(args.size()),
                              const_cast<char**>(args.data()), out);
}

/// Files in `dir` whose name starts with BENCH_.
std::vector<std::string> bench_files_in(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* e = readdir(d)) {
    if (std::strncmp(e->d_name, "BENCH_", 6) == 0) out.emplace_back(e->d_name);
  }
  closedir(d);
  return out;
}

/// Runs `fn` with the working directory switched to a fresh temp dir, then
/// restores it; returns the BENCH_* files the callback left behind.
template <typename Fn>
std::vector<std::string> bench_files_created_by(Fn&& fn) {
  char old_cwd[4096];
  EXPECT_NE(getcwd(old_cwd, sizeof old_cwd), nullptr);
  char tmpl[] = "/tmp/cilkm_driver_test_XXXXXX";
  char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  EXPECT_EQ(chdir(dir), 0);
  fn();
  std::vector<std::string> files = bench_files_in(".");
  for (const std::string& f : files) unlink(f.c_str());
  EXPECT_EQ(chdir(old_cwd), 0);
  rmdir(dir);
  return files;
}

DriverOptions small_matrix() {
  DriverOptions opts;
  opts.workload_names.push_back("sum_loop");
  opts.policies.push_back(cilkm::workloads::PolicyKind::kMm);
  opts.workers.push_back(2);
  return opts;
}

TEST(DriverCli, HelpExitsCleanlyWithoutListing) {
  DriverOptions opts;
  ASSERT_TRUE(parse({"--help"}, &opts));
  EXPECT_TRUE(opts.help);
  // The pre-fix driver set list_only, so --help printed usage AND the
  // workload listing; now run_matrix has nothing to do.
  EXPECT_FALSE(opts.list_only);
  EXPECT_EQ(run_matrix(opts), 0);
}

TEST(DriverCli, RejectsNonNumericScale) {
  DriverOptions opts;
  EXPECT_FALSE(parse({"--scale", "abc"}, &opts));
}

TEST(DriverCli, RejectsPartiallyNumericValues) {
  // std::atol would have silently parsed these as 12 / 3.
  DriverOptions opts;
  EXPECT_FALSE(parse({"--scale", "12abc"}, &opts));
  DriverOptions opts2;
  EXPECT_FALSE(parse({"--reps", "3x"}, &opts2));
  DriverOptions opts3;
  EXPECT_FALSE(parse({"--seed", "0xZZ"}, &opts3));
}

TEST(DriverCli, RejectsNegativeSeed) {
  // strtoull would silently wrap "-1" to 2^64-1.
  DriverOptions opts;
  EXPECT_FALSE(parse({"--seed", "-1"}, &opts));
}

TEST(DriverCli, TopologyFlagsParse) {
  DriverOptions opts;
  ASSERT_TRUE(parse({"--pin", "--placement", "compact", "--wake-batch", "4",
                     "--steal", "uniform"},
                    &opts));
  EXPECT_TRUE(opts.sched.pin);
  EXPECT_EQ(opts.sched.placement, cilkm::topo::Placement::kCompact);
  EXPECT_EQ(opts.sched.wake_batch, 4u);
  EXPECT_FALSE(opts.sched.locality_steal);

  // Defaults: locality stealing and batched wakes on, no pinning.
  DriverOptions defaults;
  ASSERT_TRUE(parse({}, &defaults));
  EXPECT_FALSE(defaults.sched.pin);
  EXPECT_EQ(defaults.sched.placement, cilkm::topo::Placement::kSpread);
  EXPECT_TRUE(defaults.sched.locality_steal);
  EXPECT_GE(defaults.sched.wake_batch, 2u);
}

TEST(DriverCli, StealBatchFlagParses) {
  DriverOptions opts;
  ASSERT_TRUE(parse({"--steal-batch", "1"}, &opts));
  EXPECT_EQ(opts.sched.steal_batch, 1u);
  DriverOptions opts2;
  ASSERT_TRUE(parse({"--steal-batch", "half"}, &opts2));
  EXPECT_EQ(opts2.sched.steal_batch, 0u);  // 0 encodes "half"
  DriverOptions opts3;
  ASSERT_TRUE(parse({"--steal-batch", "64"}, &opts3));
  EXPECT_EQ(opts3.sched.steal_batch, 64u);
  // Default: steal-half on.
  DriverOptions defaults;
  ASSERT_TRUE(parse({}, &defaults));
  EXPECT_EQ(defaults.sched.steal_batch, 0u);
}

TEST(DriverCli, StealBatchFlagRejectsGarbage) {
  DriverOptions opts;
  EXPECT_FALSE(parse({"--steal-batch", "0"}, &opts));  // spell it "half"
  DriverOptions opts2;
  EXPECT_FALSE(parse({"--steal-batch", "65"}, &opts2));  // above the cap
  DriverOptions opts3;
  EXPECT_FALSE(parse({"--steal-batch", "-1"}, &opts3));
  DriverOptions opts4;
  EXPECT_FALSE(parse({"--steal-batch", "2x"}, &opts4));
  DriverOptions opts5;
  EXPECT_FALSE(parse({"--steal-batch", "halfish"}, &opts5));
  DriverOptions opts6;
  EXPECT_FALSE(parse({"--steal-batch"}, &opts6));  // trailing, no value
}

TEST(DriverCli, TopologyFlagsRejectGarbage) {
  DriverOptions opts;
  EXPECT_FALSE(parse({"--placement", "scatter"}, &opts));
  DriverOptions opts2;
  EXPECT_FALSE(parse({"--placement"}, &opts2));  // trailing, no value
  DriverOptions opts3;
  EXPECT_FALSE(parse({"--wake-batch", "0"}, &opts3));
  DriverOptions opts4;
  EXPECT_FALSE(parse({"--wake-batch", "-2"}, &opts4));
  DriverOptions opts5;
  EXPECT_FALSE(parse({"--wake-batch", "3x"}, &opts5));
  DriverOptions opts5b;
  EXPECT_FALSE(parse({"--wake-batch", "17"}, &opts5b));  // above kMaxBatch
  DriverOptions opts6;
  EXPECT_FALSE(parse({"--steal", "sometimes"}, &opts6));
  DriverOptions opts7;
  EXPECT_FALSE(parse({"--wake-batch"}, &opts7));
  DriverOptions opts8;
  EXPECT_FALSE(parse({"--steal"}, &opts8));
}

TEST(DriverCli, PinnedRestrictedMatrixRunsClean) {
  // The taskset-restricted CI job's configuration in miniature: pinning plus
  // locality stealing on whatever (possibly 1-CPU) mask this process has.
  DriverOptions opts = small_matrix();
  opts.sched.pin = true;
  opts.figure.clear();
  EXPECT_EQ(run_matrix(opts), 0);
}

TEST(DriverCli, RejectsTrailingFlagWithNoValue) {
  DriverOptions opts;
  EXPECT_FALSE(parse({"--workers"}, &opts));
  DriverOptions opts2;
  EXPECT_FALSE(parse({"--workload", "fib", "--reps"}, &opts2));
}

TEST(DriverCli, ParsesAValidCommandLine) {
  DriverOptions opts;
  ASSERT_TRUE(parse({"--workload", "fib", "--policy", "mm", "--workers",
                     "1,2", "--scale", "2", "--reps", "3", "--figure", "none"},
                    &opts));
  EXPECT_EQ(opts.workload_names, std::vector<std::string>{"fib"});
  ASSERT_EQ(opts.workers.size(), 2u);
  EXPECT_EQ(opts.scale, 2u);
  EXPECT_EQ(opts.reps, 3);
  EXPECT_TRUE(opts.figure.empty());
}

TEST(DriverMatrix, NoJsonWrittenWithoutFigure) {
  const auto files = bench_files_created_by([] {
    DriverOptions opts = small_matrix();
    opts.figure.clear();  // what --figure none produces
    EXPECT_EQ(run_matrix(opts), 0);
  });
  // The pre-fix driver unconditionally constructed JsonReport("unused") and
  // its destructor flushed BENCH_unused.json into the CWD.
  EXPECT_TRUE(files.empty()) << "stray file: " << files.front();
}

TEST(DriverMatrix, JsonWrittenWhenFigureRequested) {
  const auto files = bench_files_created_by([] {
    DriverOptions opts = small_matrix();
    opts.figure = "drvtest";
    EXPECT_EQ(run_matrix(opts), 0);
  });
  ASSERT_EQ(files.size(), 1u);
  EXPECT_EQ(files.front(), "BENCH_drvtest.json");
}

TEST(DriverCli, ObservabilityFlagsParse) {
  DriverOptions opts;
  ASSERT_TRUE(parse({"--profile", "--trace-out", "t.json", "--trace-csv",
                     "t.csv"},
                    &opts));
  EXPECT_TRUE(opts.profile);
  EXPECT_EQ(opts.trace_out, "t.json");
  EXPECT_EQ(opts.trace_csv, "t.csv");

  // Defaults: everything off.
  DriverOptions defaults;
  ASSERT_TRUE(parse({}, &defaults));
  EXPECT_FALSE(defaults.profile);
  EXPECT_TRUE(defaults.trace_out.empty());
  EXPECT_TRUE(defaults.trace_csv.empty());

  DriverOptions opts2;
  EXPECT_FALSE(parse({"--trace-out"}, &opts2));  // trailing, no value
  DriverOptions opts3;
  EXPECT_FALSE(parse({"--trace-csv"}, &opts3));
}

TEST(DriverMatrix, ProfileRowsEmittedInReport) {
  bench_files_created_by([] {
    DriverOptions opts = small_matrix();
    opts.profile = true;
    opts.figure = "proftest";
    EXPECT_EQ(run_matrix(opts), 0);
    std::ifstream in("BENCH_proftest.json");
    ASSERT_TRUE(in.is_open());
    const std::string json((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    // One profile row per cell, with the full work/span metric set.
    EXPECT_NE(json.find("profile:sum_loop/mm"), std::string::npos);
    for (const char* key :
         {"\"work_ns\"", "\"span_ns\"", "\"parallelism\"",
          "\"burdened_span_ns\"", "\"burdened_parallelism\"", "\"runs\""}) {
      EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
    }
  });
}

TEST(DriverMatrix, TraceOutWritesChromeTraceJson) {
  bench_files_created_by([] {
    DriverOptions opts = small_matrix();
    opts.figure.clear();
    opts.trace_out = "trace_test.json";
    opts.trace_csv = "trace_test.csv";
    EXPECT_EQ(run_matrix(opts), 0);

    std::ifstream in("trace_test.json");
    ASSERT_TRUE(in.is_open());
    const std::string json((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    EXPECT_NE(json.find("\"schema\":\"cilkm-trace-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("root_done"), std::string::npos);

    std::ifstream csv_in("trace_test.csv");
    ASSERT_TRUE(csv_in.is_open());
    std::string header;
    std::getline(csv_in, header);
    EXPECT_EQ(header, "time_ns,worker,event,frame");
    csv_in.close();
    in.close();
    unlink("trace_test.json");
    unlink("trace_test.csv");
  });
}

TEST(DriverMatrix, ListOnlyWritesNoJson) {
  const auto files = bench_files_created_by([] {
    DriverOptions opts;
    opts.list_only = true;
    EXPECT_EQ(run_matrix(opts), 0);
  });
  EXPECT_TRUE(files.empty());
}

TEST(ExampleMain, RejectsGarbageWorkerCount) {
  const char* argv[] = {"shim", "abc"};
  EXPECT_EQ(example_main("sum_loop", 2, const_cast<char**>(argv)), 2);
}

TEST(ExampleMain, RejectsZeroAndNegativeValues) {
  const char* argv0[] = {"shim", "0"};
  EXPECT_EQ(example_main("sum_loop", 2, const_cast<char**>(argv0)), 2);
  const char* argv1[] = {"shim", "2", "-5"};
  EXPECT_EQ(example_main("sum_loop", 3, const_cast<char**>(argv1)), 2);
}

TEST(ExampleMain, RejectsExtraArguments) {
  const char* argv[] = {"shim", "2", "1", "bogus"};
  EXPECT_EQ(example_main("sum_loop", 4, const_cast<char**>(argv)), 2);
}

TEST(ExampleMain, RunsWithValidArgsAndWritesNoJson) {
  const auto files = bench_files_created_by([] {
    const char* argv[] = {"shim", "2", "1"};
    EXPECT_EQ(example_main("sum_loop", 3, const_cast<char**>(argv)), 0);
  });
  EXPECT_TRUE(files.empty());
}

TEST(FlagInt, ReturnsDefaultWhenAbsent) {
  const char* argv[] = {"bench"};
  EXPECT_EQ(bench::flag_int(1, const_cast<char**>(argv), "--reps", 7), 7);
}

TEST(FlagInt, ParsesPresentValue) {
  const char* argv[] = {"bench", "--reps", "12"};
  EXPECT_EQ(bench::flag_int(3, const_cast<char**>(argv), "--reps", 7), 12);
}

TEST(FlagInt, MissingValueIsAHardError) {
  // The pre-fix loop condition (i + 1 < argc) silently skipped a trailing
  // flag and returned the default.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"bench", "--reps"};
  EXPECT_EXIT(bench::flag_int(2, const_cast<char**>(argv), "--reps", 7),
              ::testing::ExitedWithCode(2), "missing value for --reps");
}

TEST(FlagInt, GarbageValueIsAHardError) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"bench", "--reps", "3x"};
  EXPECT_EXIT(bench::flag_int(3, const_cast<char**>(argv), "--reps", 7),
              ::testing::ExitedWithCode(2), "bad value '3x' for --reps");
}

TEST(FlagInt, NegativeValueIsAHardError) {
  // A negative rep/size count would reach repeat() as a huge size_t (e.g.
  // vector::reserve(size_t(-1))) — reject it at the CLI boundary.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const char* argv[] = {"bench", "--reps", "-1"};
  EXPECT_EXIT(bench::flag_int(3, const_cast<char**>(argv), "--reps", 7),
              ::testing::ExitedWithCode(2), "bad value '-1' for --reps");
}

}  // namespace
