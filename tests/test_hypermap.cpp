// Hypermap (Cilk Plus baseline) unit tests: open-addressing behaviour,
// growth, deletion with probe-chain repair, iteration, move semantics.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "hypermap/hypermap.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace {

using cilkm::hypermap::HyperMap;

int key_storage[4096];
const void* key(int i) { return &key_storage[i]; }

TEST(HyperMap, StartsEmptyWithNoTable) {
  HyperMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.capacity(), 0u);  // empty maps cost nothing (thief startup)
  EXPECT_EQ(map.lookup(key(0)), nullptr);
}

TEST(HyperMap, InsertLookup) {
  HyperMap map;
  int view = 42;
  map.insert(key(1), &view, nullptr);
  auto* entry = map.lookup(key(1));
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->view, &view);
  EXPECT_EQ(map.lookup(key(2)), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(HyperMap, GrowthPreservesAllEntries) {
  HyperMap map;
  std::vector<int> views(1000);
  for (int i = 0; i < 1000; ++i) map.insert(key(i), &views[i], nullptr);
  EXPECT_EQ(map.size(), 1000u);
  EXPECT_GE(map.capacity(), 1024u);
  for (int i = 0; i < 1000; ++i) {
    auto* entry = map.lookup(key(i));
    ASSERT_NE(entry, nullptr) << i;
    EXPECT_EQ(entry->view, &views[i]);
  }
}

TEST(HyperMap, EraseRepairsProbeChains) {
  HyperMap map;
  std::vector<int> views(300);
  for (int i = 0; i < 300; ++i) map.insert(key(i), &views[i], nullptr);
  // Erase every third key, then every remaining key must still be found.
  for (int i = 0; i < 300; i += 3) map.erase(key(i));
  EXPECT_EQ(map.size(), 200u);
  for (int i = 0; i < 300; ++i) {
    auto* entry = map.lookup(key(i));
    if (i % 3 == 0) {
      EXPECT_EQ(entry, nullptr) << i;
    } else {
      ASSERT_NE(entry, nullptr) << i;
      EXPECT_EQ(entry->view, &views[i]);
    }
  }
}

TEST(HyperMap, EraseAbsentKeyIsNoop) {
  HyperMap map;
  int v = 0;
  map.insert(key(1), &v, nullptr);
  map.erase(key(2));
  EXPECT_EQ(map.size(), 1u);
}

TEST(HyperMap, ForEachVisitsEveryEntryOnce) {
  HyperMap map;
  std::vector<int> views(64);
  for (int i = 0; i < 64; ++i) map.insert(key(i), &views[i], nullptr);
  std::set<const void*> seen;
  map.for_each([&](cilkm::hypermap::Entry& e) {
    EXPECT_TRUE(seen.insert(e.key).second);
  });
  EXPECT_EQ(seen.size(), 64u);
}

TEST(HyperMap, MoveTransfersOwnership) {
  // View transferal in the hypermap scheme is a pointer switch.
  HyperMap a;
  int v = 7;
  a.insert(key(5), &v, nullptr);
  HyperMap b = std::move(a);
  EXPECT_TRUE(a.empty());
  ASSERT_NE(b.lookup(key(5)), nullptr);
  HyperMap c;
  c = std::move(b);
  ASSERT_NE(c.lookup(key(5)), nullptr);
  EXPECT_TRUE(b.empty());
}

TEST(HyperMap, SwapExchangesContents) {
  HyperMap a, b;
  int va = 1, vb = 2;
  a.insert(key(1), &va, nullptr);
  b.insert(key(2), &vb, nullptr);
  b.insert(key(3), &vb, nullptr);
  a.swap(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_NE(a.lookup(key(2)), nullptr);
  EXPECT_NE(b.lookup(key(1)), nullptr);
}

TEST(HyperMap, ClearRemovesEverythingKeepsCapacity) {
  HyperMap map;
  int v = 0;
  for (int i = 0; i < 50; ++i) map.insert(key(i), &v, nullptr);
  const std::size_t cap = map.capacity();
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.capacity(), cap);
  EXPECT_EQ(map.lookup(key(10)), nullptr);
}

TEST(HyperMapDeathTest, DuplicateInsertIsRejectedInAllBuildModes) {
  // A duplicate insert used to be caught only by a debug-only DCHECK inside
  // the probe loop; in release builds it silently corrupted size_ and
  // leaked the old view. The precondition is now enforced unconditionally.
  HyperMap map;
  int v1 = 1, v2 = 2;
  map.insert(key(1), &v1, nullptr);
  EXPECT_DEATH(map.insert(key(1), &v2, nullptr),
               "duplicate hypermap insertion");
}

TEST(HyperMap, InsertOrAssignReplacesInPlace) {
  HyperMap map;
  int v1 = 1, v2 = 2;
  EXPECT_EQ(map.insert_or_assign(key(1), &v1, nullptr), nullptr);
  EXPECT_EQ(map.size(), 1u);
  // Replacement returns the old view (caller owns it) and keeps size_.
  void* old = map.insert_or_assign(key(1), &v2, nullptr);
  EXPECT_EQ(old, &v1);
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.lookup(key(1)), nullptr);
  EXPECT_EQ(map.lookup(key(1))->view, &v2);
}

TEST(HyperMap, EraseRepairsWrappedProbeChain) {
  // Build a probe chain that wraps around the end of the table: pick keys
  // whose home slot is the LAST slot of the initial capacity-16 table, so
  // the second and third collide past the wrap point, then erase the head
  // of the chain. Backward-shift deletion must move the wrapped entries
  // back across the boundary or they become unreachable.
  HyperMap map;
  const std::size_t cap = HyperMap::kInitialCapacity;
  std::vector<const void*> tail_home_keys;
  for (int i = 0; i < 4096 && tail_home_keys.size() < 3; ++i) {
    if ((HyperMap::hash(key(i)) & (cap - 1)) == cap - 1) {
      tail_home_keys.push_back(key(i));
    }
  }
  ASSERT_EQ(tail_home_keys.size(), 3u) << "need 3 keys homing to slot 15";

  int v = 0;
  for (const void* k : tail_home_keys) map.insert(k, &v, nullptr);
  ASSERT_EQ(map.capacity(), cap);  // no growth: the chain really wraps

  map.erase(tail_home_keys[0]);  // head of the chain, at the home slot
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.lookup(tail_home_keys[0]), nullptr);
  // The wrapped entries must have shifted back and still be reachable.
  EXPECT_NE(map.lookup(tail_home_keys[1]), nullptr);
  EXPECT_NE(map.lookup(tail_home_keys[2]), nullptr);

  // Erase from the middle of the (now shorter) wrapped chain too.
  map.erase(tail_home_keys[1]);
  EXPECT_EQ(map.lookup(tail_home_keys[1]), nullptr);
  EXPECT_NE(map.lookup(tail_home_keys[2]), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(HyperMap, RandomizedOpsMirrorUnorderedMap) {
  // Seeded fuzz (CILKM_TEST_SEED overridable): a random insert / erase /
  // lookup stream must track std::unordered_map exactly, across growth and
  // backward-shift deletions.
  SCOPED_TRACE(cilkm::test::seed_trace());
  cilkm::Xoshiro256 rng(cilkm::test::derived_seed(0x9a5));
  HyperMap map;
  std::unordered_map<const void*, void*> mirror;
  int views[4096];
  for (int step = 0; step < 20000; ++step) {
    const int i = static_cast<int>(rng.below(4096));
    switch (rng.below(3)) {
      case 0: {  // insert if absent
        if (mirror.find(key(i)) == mirror.end()) {
          map.insert(key(i), &views[i], nullptr);
          mirror.emplace(key(i), &views[i]);
        }
        break;
      }
      case 1: {  // erase
        map.erase(key(i));
        mirror.erase(key(i));
        break;
      }
      default: {  // lookup
        auto* entry = map.lookup(key(i));
        const auto it = mirror.find(key(i));
        if (it == mirror.end()) {
          ASSERT_EQ(entry, nullptr) << "step " << step << " key " << i;
        } else {
          ASSERT_NE(entry, nullptr) << "step " << step << " key " << i;
          ASSERT_EQ(entry->view, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), mirror.size()) << "step " << step;
  }
  // Full sweep at the end: every surviving key, and only those, present.
  for (int i = 0; i < 4096; ++i) {
    const bool expect_present = mirror.find(key(i)) != mirror.end();
    EXPECT_EQ(map.lookup(key(i)) != nullptr, expect_present) << i;
  }
}

TEST(HyperMap, AdversarialCollidingKeysStillWork) {
  // Keys 4096 bytes apart often share low bits; make sure probing resolves.
  HyperMap map;
  std::vector<std::unique_ptr<int[]>> blocks;
  std::vector<const void*> keys;
  for (int i = 0; i < 200; ++i) {
    blocks.push_back(std::make_unique<int[]>(1024));
    keys.push_back(blocks.back().get());
  }
  int v = 0;
  for (const void* k : keys) map.insert(k, &v, nullptr);
  for (const void* k : keys) EXPECT_NE(map.lookup(k), nullptr);
}

}  // namespace
