// SPA-map, slot-allocator and page-pool tests (paper Sections 5–7): exact
// page layout, log semantics incl. the 120-entry overflow rule, slot
// allocation with Hoard-style local pools, and the only-empty-pages-recycled
// invariant.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "spa/page_pool.hpp"
#include "spa/slot_alloc.hpp"
#include "spa/spa_map.hpp"

namespace {

using namespace cilkm::spa;

TEST(SpaLayout, MatchesPaperExactly) {
  // Paper Section 6: 248 view-pair elements, 120 one-byte logs, two 4-byte
  // counters, in one 4096-byte page; 16-byte slots; 2:1 view:log ratio.
  static_assert(sizeof(SpaPage) == 4096);
  static_assert(sizeof(ViewSlot) == 16);
  static_assert(kViewsPerPage == 248);
  static_assert(kLogCapacity == 120);
  EXPECT_EQ(offsetof(SpaPage, log), 248u * 16u);
  EXPECT_EQ(offsetof(SpaPage, num_valid), 4088u);
  EXPECT_EQ(offsetof(SpaPage, num_logs), 4092u);
}

TEST(SpaOffsets, RoundTrip) {
  for (std::uint32_t page : {0u, 1u, 77u, 65535u}) {
    for (std::uint32_t idx : {0u, 1u, 247u}) {
      const std::uint64_t off = slot_offset(page, idx);
      EXPECT_EQ(offset_page(off), page);
      EXPECT_EQ(offset_index(off), idx);
    }
  }
}

TEST(SpaPageBasics, InsertTracksLogAndCounts) {
  SpaPage page;
  page.clear();
  EXPECT_TRUE(page.all_empty());

  int v1 = 0, v2 = 0;
  page.views[5] = {&v1, nullptr};
  page.note_insert(5);
  page.views[200] = {&v2, nullptr};
  page.note_insert(200);

  EXPECT_EQ(page.num_valid, 2u);
  EXPECT_EQ(page.num_logs, 2u);

  std::vector<std::uint32_t> seen;
  page.for_each_valid([&](std::uint32_t idx, ViewSlot&) { seen.push_back(idx); });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{5, 200}));
}

TEST(SpaPageBasics, VisitorSkipsZeroedSlots) {
  SpaPage page;
  page.clear();
  int v = 0;
  page.views[3] = {&v, nullptr};
  page.note_insert(3);
  // Zero the slot without touching the log — stale log entries must be
  // skipped (this happens after reducer destruction mid-scope).
  page.views[3] = {nullptr, nullptr};
  page.num_valid = 0;
  int visits = 0;
  page.for_each_valid([&](std::uint32_t, ViewSlot&) { ++visits; });
  EXPECT_EQ(visits, 0);
}

TEST(SpaPageBasics, LogOverflowSwitchesToFullWalk) {
  SpaPage page;
  page.clear();
  static int dummy;
  // Insert more than kLogCapacity entries.
  for (std::uint32_t i = 0; i < kLogCapacity + 10; ++i) {
    page.views[i] = {&dummy, nullptr};
    page.note_insert(i);
  }
  EXPECT_EQ(page.num_logs, kLogsOverflowed);
  EXPECT_EQ(page.num_valid, kLogCapacity + 10);
  // Sequencing still visits every valid entry (full-array walk).
  std::set<std::uint32_t> seen;
  page.for_each_valid([&](std::uint32_t idx, ViewSlot&) { seen.insert(idx); });
  EXPECT_EQ(seen.size(), kLogCapacity + 10);
}

TEST(SpaPageBasics, DuplicateLogEntriesAreDeduplicatedByZeroing) {
  // A slot can appear twice in a log (freed and re-allocated reducer). The
  // transferal pattern zeroes the slot at the first visit, so the second
  // log hit is skipped.
  SpaPage page;
  page.clear();
  static int dummy;
  page.views[9] = {&dummy, nullptr};
  page.note_insert(9);
  page.views[9] = {nullptr, nullptr};  // reducer destroyed
  --page.num_valid;
  page.views[9] = {&dummy, nullptr};  // slot re-used by a new reducer
  page.note_insert(9);

  int visits = 0;
  page.for_each_valid([&](std::uint32_t, ViewSlot& slot) {
    ++visits;
    slot = ViewSlot{nullptr, nullptr};  // transferal zeroes as it copies
  });
  EXPECT_EQ(visits, 1);
}

TEST(SlotAllocator, OffsetsAreUniqueAnd16ByteAligned) {
  auto& alloc = SlotAllocator::instance();
  std::set<std::uint64_t> offsets;
  std::vector<std::uint64_t> got;
  for (int i = 0; i < 600; ++i) {  // spans > 2 pages
    const std::uint64_t off = alloc.allocate(nullptr);
    EXPECT_EQ(off % 16, 0u);
    EXPECT_LT(offset_index(off), kViewsPerPage);  // never in the header area
    EXPECT_TRUE(offsets.insert(off).second) << "duplicate offset";
    got.push_back(off);
  }
  for (const auto off : got) alloc.free(off, nullptr);
}

TEST(SlotAllocator, LocalCacheRefillsAndRebalances) {
  auto& alloc = SlotAllocator::instance();
  LocalSlotCache cache;
  std::vector<std::uint64_t> got;
  for (int i = 0; i < 100; ++i) got.push_back(alloc.allocate(&cache));
  // After the first miss the cache was batch-refilled.
  EXPECT_FALSE(cache.slots.empty());
  for (const auto off : got) alloc.free(off, &cache);
  // Rebalancing caps the local pool near the high-water mark.
  EXPECT_LE(cache.slots.size(), LocalSlotCache::kHighWater + LocalSlotCache::kBatch);
  alloc.flush(cache);
  EXPECT_TRUE(cache.slots.empty());
}

TEST(SlotAllocator, ConcurrentAllocationYieldsDistinctSlots) {
  auto& alloc = SlotAllocator::instance();
  constexpr int kThreads = 8, kPer = 300;
  std::vector<std::vector<std::uint64_t>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      LocalSlotCache cache;
      for (int i = 0; i < kPer; ++i) got[t].push_back(alloc.allocate(&cache));
      alloc.flush(cache);
    });
  }
  for (auto& th : threads) th.join();
  std::set<std::uint64_t> all;
  for (auto& v : got) {
    for (const auto off : v) {
      EXPECT_TRUE(all.insert(off).second) << "duplicate slot across threads";
    }
  }
  for (const auto off : all) alloc.free(off, nullptr);
}

TEST(PagePool, RecyclesOnlyEmptyPagesAndReusesThem) {
  auto& pool = PagePool::instance();
  SpaPage* page = pool.acquire();
  ASSERT_NE(page, nullptr);
  EXPECT_TRUE(page->all_empty());

  static int dummy;
  page->views[0] = {&dummy, nullptr};
  page->note_insert(0);
  // Must empty the page before recycling (the paper's invariant).
  page->views[0] = {nullptr, nullptr};
  page->num_valid = 0;
  pool.release(page);

  SpaPage* again = pool.acquire();
  EXPECT_TRUE(again->all_empty());
  pool.release(again);
}

TEST(PagePool, OverflowedLogStateIsResetOnRelease) {
  auto& pool = PagePool::instance();
  SpaPage* page = pool.acquire();
  static int dummy;
  for (std::uint32_t i = 0; i < kLogCapacity + 1; ++i) {
    page->views[i] = {&dummy, nullptr};
    page->note_insert(i);
  }
  page->for_each_valid([](std::uint32_t, ViewSlot& s) { s = {nullptr, nullptr}; });
  page->num_valid = 0;
  pool.release(page);
  SpaPage* again = pool.acquire();
  EXPECT_NE(again->num_logs, kLogsOverflowed);
  pool.release(again);
}

TEST(PagePool, ReleasedPagesAreRecycledNotRecarved) {
  // The per-worker caching moved into the internal allocator's magazines:
  // releasing pages and re-acquiring the same number must be served entirely
  // from recycled blocks, without carving new backing store.
  auto& pool = PagePool::instance();
  std::vector<SpaPage*> pages;
  for (int i = 0; i < 12; ++i) pages.push_back(pool.acquire());
  for (SpaPage* p : pages) pool.release(p);
  const std::size_t carved_before = pool.total_allocated();
  pages.clear();
  for (int i = 0; i < 12; ++i) {
    SpaPage* p = pool.acquire();
    EXPECT_TRUE(p->all_empty());
    pages.push_back(p);
  }
  EXPECT_EQ(pool.total_allocated(), carved_before);
  for (SpaPage* p : pages) pool.release(p);
}

TEST(PagePoolDeath, ReleasingNonEmptyPageAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto& pool = PagePool::instance();
  SpaPage* page = pool.acquire();
  static int dummy;
  page->views[1] = {&dummy, nullptr};
  page->note_insert(1);
  EXPECT_DEATH(pool.release(page), "only empty SPA maps");
  page->views[1] = {nullptr, nullptr};
  page->num_valid = 0;
  pool.release(page);
}

}  // namespace
