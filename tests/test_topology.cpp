// The topo/ subsystem: sysfs discovery against canned golden trees (SMT
// on/off, multi-package, NUMA, cpuset-restricted masks, missing sysfs →
// flat fallback), placement policies, thread pinning, the ParkingLot's
// batched/LIFO targeted wake-ups, and the scheduler's locality-aware
// victim ordering (including the dedup-within-a-round regression fix).
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <deque>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/parking.hpp"
#include "test_support.hpp"
#include "topo/placement.hpp"
#include "topo/topology.hpp"

#if defined(__linux__)
#include <sched.h>
#endif

namespace {

namespace fs = std::filesystem;
using cilkm::StatCounter;
using cilkm::rt::ParkingLot;
using cilkm::topo::CpuInfo;
using cilkm::topo::Placement;
using cilkm::topo::Topology;

using Proximity = Topology::Proximity;

// ---------------------------------------------------------------------------
// Canned sysfs trees. A SysfsTree owns a temp directory mimicking
// /sys/devices/system with cpu/ (and optionally node/) subtrees.
// ---------------------------------------------------------------------------

class SysfsTree {
 public:
  SysfsTree() {
    static std::atomic<unsigned> counter{0};
    root_ = fs::temp_directory_path() /
            ("cilkm_topo_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    fs::create_directories(root_ / "cpu");
  }
  ~SysfsTree() {
    if (root_.empty()) return;  // moved-from
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  // Movable (factories return by value and NRVO is not guaranteed for named
  // returns); never copyable — two owners would remove_all the same tree.
  SysfsTree(SysfsTree&& other) noexcept : root_(std::move(other.root_)) {
    other.root_.clear();
  }
  SysfsTree& operator=(SysfsTree&&) = delete;
  SysfsTree(const SysfsTree&) = delete;
  SysfsTree& operator=(const SysfsTree&) = delete;

  std::string path() const { return root_.string(); }

  void set_online(const std::string& cpulist) {
    write(root_ / "cpu" / "online", cpulist);
  }

  void add_cpu(unsigned cpu, long package, long core) {
    const fs::path topo = root_ / "cpu" / ("cpu" + std::to_string(cpu)) /
                          "topology";
    fs::create_directories(topo);
    write(topo / "physical_package_id", std::to_string(package));
    write(topo / "core_id", std::to_string(core));
  }

  void add_node(unsigned node, const std::string& cpulist) {
    const fs::path dir = root_ / "node" / ("node" + std::to_string(node));
    fs::create_directories(dir);
    write(dir / "cpulist", cpulist);
  }

 private:
  static void write(const fs::path& file, const std::string& content) {
    std::ofstream out(file);
    out << content << "\n";
  }
  fs::path root_;
};

/// The reference machine of most tests: 2 packages × 2 cores × 2 SMT
/// threads, siblings adjacent (cpu0/1 share pkg0-core0, …), NUMA node per
/// package.
SysfsTree make_two_package_smt_tree() {
  SysfsTree tree;
  tree.set_online("0-7");
  for (unsigned cpu = 0; cpu < 8; ++cpu) {
    tree.add_cpu(cpu, /*package=*/cpu / 4, /*core=*/(cpu % 4) / 2);
  }
  tree.add_node(0, "0-3");
  tree.add_node(1, "4-7");
  return tree;
}

// ---------------------------------------------------------------------------
// cpulist parsing
// ---------------------------------------------------------------------------

TEST(CpuList, ParsesRangesSinglesAndMixes) {
  EXPECT_EQ(cilkm::topo::parse_cpulist("0-3"),
            (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_EQ(cilkm::topo::parse_cpulist("5"), (std::vector<unsigned>{5}));
  EXPECT_EQ(cilkm::topo::parse_cpulist("0-2,8,10-11"),
            (std::vector<unsigned>{0, 1, 2, 8, 10, 11}));
  EXPECT_EQ(cilkm::topo::parse_cpulist(""), (std::vector<unsigned>{}));
  // Longest valid prefix on garbage; inverted ranges stop the parse.
  EXPECT_EQ(cilkm::topo::parse_cpulist("0-1,zzz"),
            (std::vector<unsigned>{0, 1}));
  EXPECT_EQ(cilkm::topo::parse_cpulist("3-1"), (std::vector<unsigned>{}));
}

// ---------------------------------------------------------------------------
// Golden-tree discovery
// ---------------------------------------------------------------------------

TEST(TopologyDiscovery, SmtTreeGroupsSiblingsCoresPackagesAndNodes) {
  SysfsTree tree = make_two_package_smt_tree();
  const Topology topo = Topology::discover_at(tree.path());
  EXPECT_TRUE(topo.from_sysfs());
  EXPECT_EQ(topo.num_cpus(), 8u);
  EXPECT_EQ(topo.num_cores(), 4u);
  EXPECT_EQ(topo.num_packages(), 2u);
  EXPECT_EQ(topo.num_nodes(), 2u);

  EXPECT_EQ(topo.proximity(0, 1), Proximity::kSameCore);   // SMT siblings
  EXPECT_EQ(topo.proximity(0, 2), Proximity::kSamePackage);
  EXPECT_EQ(topo.proximity(0, 4), Proximity::kRemote);     // cross package
  EXPECT_EQ(topo.proximity(0, 0), Proximity::kSameCore);
  EXPECT_EQ(topo.proximity(6, 7), Proximity::kSameCore);

  const CpuInfo* cpu5 = topo.find(5);
  ASSERT_NE(cpu5, nullptr);
  EXPECT_EQ(cpu5->package, 1u);
  EXPECT_EQ(cpu5->node, 1u);
  EXPECT_EQ(topo.find(12), nullptr);
}

TEST(TopologyDiscovery, SmtOffTreeHasOneCpuPerCore) {
  SysfsTree tree;
  tree.set_online("0-3");
  for (unsigned cpu = 0; cpu < 4; ++cpu) {
    tree.add_cpu(cpu, /*package=*/0, /*core=*/cpu);
  }
  const Topology topo = Topology::discover_at(tree.path());
  EXPECT_TRUE(topo.from_sysfs());
  EXPECT_EQ(topo.num_cpus(), 4u);
  EXPECT_EQ(topo.num_cores(), 4u);
  EXPECT_EQ(topo.num_packages(), 1u);
  EXPECT_EQ(topo.proximity(0, 1), Proximity::kSamePackage);
  EXPECT_EQ(topo.proximity(0, 3), Proximity::kSamePackage);
}

TEST(TopologyDiscovery, CpusetRestrictedMaskIntersectsOnline) {
  SysfsTree tree = make_two_package_smt_tree();
  const std::vector<unsigned> mask{0, 2, 5};
  const Topology topo = Topology::discover_at(tree.path(), &mask);
  EXPECT_TRUE(topo.from_sysfs());
  EXPECT_EQ(topo.num_cpus(), 3u);
  EXPECT_EQ(topo.num_packages(), 2u);
  EXPECT_EQ(topo.proximity(0, 2), Proximity::kSamePackage);
  EXPECT_EQ(topo.proximity(0, 5), Proximity::kRemote);
  EXPECT_EQ(topo.find(1), nullptr);  // masked out
}

TEST(TopologyDiscovery, OnlineListWithHolesSkipsOfflineCpus) {
  SysfsTree tree = make_two_package_smt_tree();
  tree.set_online("0-2,4");  // cpu3 and cpus 5-7 offline
  const Topology topo = Topology::discover_at(tree.path());
  EXPECT_EQ(topo.num_cpus(), 4u);
  EXPECT_EQ(topo.find(3), nullptr);
  EXPECT_NE(topo.find(4), nullptr);
}

TEST(TopologyDiscovery, MissingSysfsFallsBackFlatOverMask) {
  const std::vector<unsigned> mask{0, 1};
  const Topology topo =
      Topology::discover_at("/nonexistent/cilkm/sysfs", &mask);
  EXPECT_FALSE(topo.from_sysfs());
  EXPECT_EQ(topo.num_cpus(), 2u);
  EXPECT_EQ(topo.num_packages(), 1u);
  // Flat: no false SMT siblings, everything one package.
  EXPECT_EQ(topo.proximity(0, 1), Proximity::kSamePackage);
}

TEST(TopologyDiscovery, MaskOutsideOnlineListFallsBackFlat) {
  SysfsTree tree = make_two_package_smt_tree();
  const std::vector<unsigned> mask{32, 33};
  const Topology topo = Topology::discover_at(tree.path(), &mask);
  EXPECT_FALSE(topo.from_sysfs());
  EXPECT_EQ(topo.num_cpus(), 2u);
  EXPECT_NE(topo.find(32), nullptr);
}

TEST(TopologyDiscovery, OnlineWithoutPerCpuTopologyFallsBackFlat) {
  SysfsTree tree;
  tree.set_online("0-3");  // no cpuN/topology directories at all
  const Topology topo = Topology::discover_at(tree.path());
  EXPECT_FALSE(topo.from_sysfs());
  EXPECT_EQ(topo.num_cpus(), 4u);
  EXPECT_EQ(topo.num_cores(), 4u);
}

TEST(TopologyDiscovery, NodelessTreeMirrorsPackagesAsNodes) {
  SysfsTree tree;
  tree.set_online("0-3");
  for (unsigned cpu = 0; cpu < 4; ++cpu) {
    tree.add_cpu(cpu, /*package=*/cpu / 2, /*core=*/cpu % 2);
  }
  const Topology topo = Topology::discover_at(tree.path());
  EXPECT_TRUE(topo.from_sysfs());
  EXPECT_EQ(topo.num_nodes(), topo.num_packages());
  ASSERT_NE(topo.find(3), nullptr);
  EXPECT_EQ(topo.find(3)->node, 1u);
}

TEST(TopologyDiscovery, NonContiguousNodeIdsAreDiscovered) {
  // Node ids with a hole (node1 offlined/hotplugged away): discovery must
  // enumerate the node directories, not count from zero and stop at a gap.
  SysfsTree holes;
  holes.set_online("0-7");
  for (unsigned cpu = 0; cpu < 8; ++cpu) {
    holes.add_cpu(cpu, /*package=*/cpu / 4, /*core=*/(cpu % 4) / 2);
  }
  holes.add_node(0, "0-3");
  holes.add_node(2, "4-7");
  const Topology topo = Topology::discover_at(holes.path());
  EXPECT_EQ(topo.num_nodes(), 2u);
  ASSERT_NE(topo.find(5), nullptr);
  EXPECT_EQ(topo.find(5)->node, 2u);
  EXPECT_EQ(topo.proximity(0, 5), Proximity::kRemote);
}

TEST(TopologyDiscovery, LiveMachineDiscoveryIsSane) {
  const Topology& topo = Topology::machine();
  EXPECT_GE(topo.num_cpus(), 1u);
  EXPECT_GE(topo.num_cores(), 1u);
  EXPECT_GE(topo.num_packages(), 1u);
  EXPECT_FALSE(topo.describe().empty());
  // Every usable CPU classifies against itself as same-core.
  for (const CpuInfo& info : topo.cpus()) {
    EXPECT_EQ(topo.proximity(info.cpu, info.cpu), Proximity::kSameCore);
  }
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

TEST(Placement, SpreadUsesDistinctCoresAcrossPackagesFirst) {
  SysfsTree tree = make_two_package_smt_tree();
  const Topology topo = Topology::discover_at(tree.path());
  const std::vector<unsigned> cpus =
      cilkm::topo::assign_cpus(topo, 4, Placement::kSpread);
  ASSERT_EQ(cpus.size(), 4u);
  // Four workers on four distinct cores, alternating packages.
  std::set<unsigned> cores, packages;
  for (const unsigned cpu : cpus) {
    ASSERT_NE(topo.find(cpu), nullptr);
    cores.insert(topo.find(cpu)->core);
    packages.insert(topo.find(cpu)->package);
  }
  EXPECT_EQ(cores.size(), 4u);
  EXPECT_EQ(packages.size(), 2u);
  EXPECT_NE(topo.find(cpus[0])->package, topo.find(cpus[1])->package);
}

TEST(Placement, CompactFillsSiblingsAndCoresInOrder) {
  SysfsTree tree = make_two_package_smt_tree();
  const Topology topo = Topology::discover_at(tree.path());
  const std::vector<unsigned> cpus =
      cilkm::topo::assign_cpus(topo, 4, Placement::kCompact);
  ASSERT_EQ(cpus.size(), 4u);
  // First two workers share a core (SMT siblings); all four stay on one
  // package.
  EXPECT_EQ(topo.proximity(cpus[0], cpus[1]), Proximity::kSameCore);
  std::set<unsigned> packages;
  for (const unsigned cpu : cpus) packages.insert(topo.find(cpu)->package);
  EXPECT_EQ(packages.size(), 1u);
}

TEST(Placement, OversubscriptionWrapsModuloTheCpuOrder) {
  SysfsTree tree = make_two_package_smt_tree();
  const Topology topo = Topology::discover_at(tree.path());
  for (const Placement policy : {Placement::kSpread, Placement::kCompact}) {
    const std::vector<unsigned> cpus = cilkm::topo::assign_cpus(topo, 19, policy);
    ASSERT_EQ(cpus.size(), 19u);
    for (const unsigned cpu : cpus) EXPECT_NE(topo.find(cpu), nullptr);
    EXPECT_EQ(cpus[8], cpus[0]);  // wrapped
  }
}

TEST(Placement, NamesRoundTripAndGarbageIsRejected) {
  for (const Placement p : {Placement::kSpread, Placement::kCompact}) {
    Placement parsed;
    ASSERT_TRUE(cilkm::topo::parse_placement(cilkm::topo::placement_name(p),
                                             &parsed));
    EXPECT_EQ(parsed, p);
  }
  Placement ignored;
  EXPECT_FALSE(cilkm::topo::parse_placement("scatter", &ignored));
  EXPECT_FALSE(cilkm::topo::parse_placement("", &ignored));
}

#if defined(__linux__)
TEST(Placement, PinCurrentThreadRestrictsAffinity) {
  cpu_set_t original;
  CPU_ZERO(&original);
  ASSERT_EQ(sched_getaffinity(0, sizeof original, &original), 0);
  unsigned first = 0;
  while (first < CPU_SETSIZE && !CPU_ISSET(first, &original)) ++first;
  ASSERT_LT(first, static_cast<unsigned>(CPU_SETSIZE));

  EXPECT_TRUE(cilkm::topo::pin_current_thread(first));
  cpu_set_t pinned;
  CPU_ZERO(&pinned);
  ASSERT_EQ(sched_getaffinity(0, sizeof pinned, &pinned), 0);
  EXPECT_EQ(CPU_COUNT(&pinned), 1);
  EXPECT_TRUE(CPU_ISSET(first, &pinned));

  // Restore so later tests see the original mask.
  ASSERT_EQ(sched_setaffinity(0, sizeof original, &original), 0);
}
#endif

// ---------------------------------------------------------------------------
// ParkingLot: batched and targeted wake-ups
// ---------------------------------------------------------------------------

/// Park `who` on `lot` in a thread; records the order in which sleepers
/// wake.
struct Sleepers {
  explicit Sleepers(ParkingLot& lot) : lot(&lot) {}

  void park_one(unsigned who) {
    ready.emplace_back(false);
    auto& flag = ready.back();
    threads.emplace_back([this, who, &flag] {
      const std::uint32_t ticket = lot->prepare_park(who);
      flag.store(true, std::memory_order_release);
      lot->park(who, ticket, std::chrono::milliseconds(10000));
      const std::size_t slot = woken_count.fetch_add(1);
      woken_order[slot].store(static_cast<int>(who), std::memory_order_release);
    });
    // The sleeper must be REGISTERED before the test proceeds (parked_count
    // includes it); the block itself may lag but targeted wakes only need
    // registration.
    while (!flag.load(std::memory_order_acquire)) std::this_thread::yield();
  }

  void join_all() {
    for (auto& t : threads) t.join();
    threads.clear();
  }

  ParkingLot* lot;
  std::deque<std::atomic<bool>> ready;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> woken_count{0};
  std::array<std::atomic<int>, 16> woken_order{};
};

TEST(ParkingLot, WakeRousesUpToKSleepersMostRecentFirst) {
  ParkingLot lot(4);
  Sleepers sleepers(lot);
  for (unsigned who : {0u, 1u, 2u}) sleepers.park_one(who);
  while (lot.parked_count() != 3) std::this_thread::yield();

  // Batch of 2, no proximity ranking: LIFO, so workers 2 and 1 wake.
  EXPECT_EQ(lot.wake(2, nullptr), 2u);
  while (sleepers.woken_count.load() != 2) std::this_thread::yield();
  std::set<int> woken{sleepers.woken_order[0].load(),
                      sleepers.woken_order[1].load()};
  EXPECT_EQ(woken, (std::set<int>{1, 2}));
  EXPECT_EQ(lot.parked_count(), 1u);

  EXPECT_EQ(lot.wake_all(), 1u);
  sleepers.join_all();
  EXPECT_EQ(sleepers.woken_order[2].load(), 0);
}

TEST(ParkingLot, WakePrefersNearestTierOverRecency) {
  ParkingLot lot(4);
  Sleepers sleepers(lot);
  for (unsigned who : {1u, 2u, 3u}) sleepers.park_one(who);
  while (lot.parked_count() != 3) std::this_thread::yield();

  // From worker 0's perspective: worker 1 is same-core, 2 same-package,
  // 3 remote. A single wake must pick worker 1 even though 3 parked last.
  const std::uint8_t tiers[4] = {0, 0, 1, 2};
  EXPECT_EQ(lot.wake(1, tiers), 1u);
  while (sleepers.woken_count.load() != 1) std::this_thread::yield();
  EXPECT_EQ(sleepers.woken_order[0].load(), 1);

  lot.wake_all();
  sleepers.join_all();
}

TEST(ParkingLot, CancelAfterTargetedWakeForwardsTheCredit) {
  ParkingLot lot(2);
  Sleepers sleepers(lot);
  sleepers.park_one(0);  // worker 0 fully parked
  while (lot.parked_count() != 1) std::this_thread::yield();

  // Worker 1 registers but never blocks (its re-check "found work"). A
  // producer targets worker 1 (top of the LIFO stack); the cancel must
  // forward the wake to worker 0 rather than swallow it.
  const std::uint32_t ticket = lot.prepare_park(1);
  (void)ticket;
  EXPECT_EQ(lot.wake(1, nullptr), 1u);   // pops worker 1
  EXPECT_EQ(lot.cancel_park(1), 1u);     // forwards to worker 0
  sleepers.join_all();
  EXPECT_EQ(sleepers.woken_order[0].load(), 0);
}

TEST(ParkingLot, CancelOfStillRegisteredWorkerForwardsNothing) {
  ParkingLot lot(2);
  const std::uint32_t ticket = lot.prepare_park(0);
  (void)ticket;
  EXPECT_EQ(lot.parked_count(), 1u);
  EXPECT_EQ(lot.cancel_park(0), 0u);
  EXPECT_EQ(lot.parked_count(), 0u);
  EXPECT_EQ(lot.wake(1, nullptr), 0u);  // nobody left to wake
}

TEST(ParkingLot, BackstopExpiryDeregisters) {
  ParkingLot lot(1);
  const std::uint32_t ticket = lot.prepare_park(0);
  const auto t0 = std::chrono::steady_clock::now();
  lot.park(0, ticket, std::chrono::milliseconds(5));
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(4));
  EXPECT_EQ(lot.parked_count(), 0u);
}

TEST(ParkingLot, WakeBeforeParkCommitsIsNotLost) {
  // The Dekker handshake: once prepare_park returns, a producer's wake (it
  // pops us and bumps our epoch past the ticket) must make the subsequent
  // park() fall through instead of sleeping to the backstop.
  ParkingLot lot(1);
  const std::uint32_t ticket = lot.prepare_park(0);
  EXPECT_EQ(lot.wake(1, nullptr), 1u);
  const auto t0 = std::chrono::steady_clock::now();
  lot.park(0, ticket, std::chrono::milliseconds(10000));
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));
}

// ---------------------------------------------------------------------------
// Scheduler integration: victim ordering, steal classification, pinning
// ---------------------------------------------------------------------------

TEST(LocalitySteal, VictimOrderIsAPermutationSortedByTier) {
  cilkm::Scheduler sched(6);
  for (unsigned thief = 0; thief < 6; ++thief) {
    const std::vector<unsigned>& order = sched.victim_order(thief);
    ASSERT_EQ(order.size(), 5u);
    std::set<unsigned> seen(order.begin(), order.end());
    EXPECT_EQ(seen.size(), 5u);                 // no duplicates
    EXPECT_EQ(seen.count(thief), 0u);           // never self
    for (std::size_t i = 1; i < order.size(); ++i) {
      EXPECT_LE(sched.victim_tier(thief, order[i - 1]),
                sched.victim_tier(thief, order[i]));
    }
  }
}

TEST(LocalitySteal, StealRoundProbesEachVictimAtMostOnce) {
  // Regression for the sample-with-replacement steal loop: one round could
  // probe the same victim repeatedly (inflating kStealAttempts without
  // widening coverage). A built round must be a permutation in both modes.
  for (const bool locality : {true, false}) {
    cilkm::rt::SchedulerOptions options;
    options.locality_steal = locality;
    cilkm::Scheduler sched(5, options);
    std::vector<unsigned> round;
    for (unsigned thief = 0; thief < 5; ++thief) {
      for (int rep = 0; rep < 32; ++rep) {
        sched.build_victim_round(thief, &round);
        ASSERT_EQ(round.size(), 4u);
        const std::set<unsigned> seen(round.begin(), round.end());
        EXPECT_EQ(seen.size(), 4u) << "duplicate victim in a round";
        EXPECT_EQ(seen.count(thief), 0u);
      }
    }
  }
}

TEST(LocalitySteal, RoundsVaryButRespectTiersModuloEscapeHatch) {
  cilkm::Scheduler sched(8);
  std::vector<unsigned> first, round;
  sched.build_victim_round(0, &first);
  bool varied = false;
  for (int rep = 0; rep < 64 && !varied; ++rep) {
    sched.build_victim_round(0, &round);
    varied = round != first;
  }
  EXPECT_TRUE(varied) << "64 rounds identical: shuffle is not happening";
}

TEST(LocalitySteal, StealsClassifyAsLocalPlusRemote) {
  cilkm::Scheduler sched(4);
  sched.reset_stats();
  sched.run([] {
    cilkm::parallel_for(0, 20000, 16, [](std::int64_t i) {
      if (i % 512 == 0) std::this_thread::yield();
    });
  });
  const auto stats = sched.aggregate_stats();
  EXPECT_EQ(stats[StatCounter::kLocalSteals] + stats[StatCounter::kRemoteSteals],
            stats[StatCounter::kSteals]);
}

TEST(LocalitySteal, UniformModeStillComputesCorrectly) {
  cilkm::rt::SchedulerOptions options;
  options.locality_steal = false;
  options.wake_batch = 1;
  cilkm::Scheduler sched(4, options);
  std::atomic<long> sum{0};
  sched.run([&] {
    cilkm::parallel_for(0, 4000, 8, [&](std::int64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(sum.load(), 3999L * 4000 / 2);
  const auto stats = sched.aggregate_stats();
  EXPECT_EQ(stats[StatCounter::kLocalSteals] + stats[StatCounter::kRemoteSteals],
            stats[StatCounter::kSteals]);
}

TEST(LocalitySteal, PinnedPoolRunsAndAssignsCpusFromTheMachine) {
  cilkm::rt::SchedulerOptions options;
  options.pin = true;
  options.placement = cilkm::topo::Placement::kCompact;
  cilkm::Scheduler sched(4, options);
  const Topology& topo = Topology::machine();
  for (unsigned w = 0; w < 4; ++w) {
    EXPECT_NE(topo.find(sched.worker_cpu(w)), nullptr);
  }
  std::atomic<long> sum{0};
  for (int round = 0; round < 3; ++round) {
    sum.store(0);
    sched.run([&] {
      cilkm::parallel_for(0, 2000, 8, [&](std::int64_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
    });
    EXPECT_EQ(sum.load(), 1999L * 2000 / 2);
  }
}

TEST(LocalitySteal, WakeBatchConfigRoundTrips) {
  cilkm::rt::SchedulerOptions options;
  options.wake_batch = 7;
  cilkm::Scheduler sched(2, options);
  EXPECT_EQ(sched.options().wake_batch, 7u);
  cilkm::rt::SchedulerOptions zero;
  zero.wake_batch = 0;  // clamped to the 1:1 discipline, not a crash
  cilkm::Scheduler clamped(2, zero);
  EXPECT_EQ(clamped.options().wake_batch, 1u);
  cilkm::rt::SchedulerOptions big;
  big.wake_batch = 99;  // clamped to what one wake() can actually deliver
  cilkm::Scheduler capped(2, big);
  EXPECT_EQ(capped.options().wake_batch, ParkingLot::kMaxBatch);
}

}  // namespace
