// Tests for the extended reducer library (min_index/max_index, list
// prepend, holder, ostream reducer) and the SpawnGroup API.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "reducers/extras.hpp"
#include "runtime/api.hpp"

namespace {

using cilkm::parallel_for;

template <typename Policy>
struct ExtrasMechanism : ::testing::Test {};
using Policies = ::testing::Types<cilkm::mm_policy, cilkm::hypermap_policy,
                                  cilkm::flat_policy>;
TYPED_TEST_SUITE(ExtrasMechanism, Policies);

std::uint64_t keyed(std::int64_t i) {
  std::uint64_t x = static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
  x ^= x >> 31;
  return x % 100000;
}

TYPED_TEST(ExtrasMechanism, MinIndexFindsArgmin) {
  cilkm::min_index_reducer<std::int64_t, std::uint64_t, TypeParam> best;
  cilkm::run(4, [&] {
    parallel_for(0, 50000, 128, [&](std::int64_t i) {
      decltype(best)::monoid_type::update(best.view(), i, keyed(i));
    });
  });
  // Serial oracle with first-occurrence tie-break.
  std::int64_t expect_idx = -1;
  std::uint64_t expect_val = ~0ull;
  for (std::int64_t i = 0; i < 50000; ++i) {
    if (keyed(i) < expect_val) {
      expect_val = keyed(i);
      expect_idx = i;
    }
  }
  ASSERT_TRUE(best.get_value().valid);
  EXPECT_EQ(best.get_value().value, expect_val);
  EXPECT_EQ(best.get_value().index, expect_idx);
}

TYPED_TEST(ExtrasMechanism, MaxIndexTieBreaksToEarliestIndex) {
  // Many duplicates of the maximum: the reported index must be the serially
  // first one regardless of scheduling, for every worker count.
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    cilkm::max_index_reducer<std::int64_t, int, TypeParam> best;
    cilkm::run(workers, [&] {
      parallel_for(0, 10000, 16, [&](std::int64_t i) {
        const int v = (i % 100 == 37) ? 999 : static_cast<int>(i % 100);
        decltype(best)::monoid_type::update(best.view(), i, v);
      });
    });
    ASSERT_TRUE(best.get_value().valid);
    EXPECT_EQ(best.get_value().value, 999);
    EXPECT_EQ(best.get_value().index, 37) << "workers=" << workers;
  }
}

TYPED_TEST(ExtrasMechanism, ListPrependReversesSerialOrder) {
  cilkm::list_prepend_reducer<int, TypeParam> list;
  cilkm::run(4, [&] {
    parallel_for(0, 2000, 8, [&](std::int64_t i) {
      list->push_front(static_cast<int>(i));
    });
  });
  ASSERT_EQ(list.get_value().size(), 2000u);
  int expect = 1999;
  for (const int v : list.get_value()) EXPECT_EQ(v, expect--);
}

TYPED_TEST(ExtrasMechanism, HolderProvidesScratchSpace) {
  // Use a holder as per-strand scratch: correctness = no interference
  // between parallel strands (each sees a private buffer).
  cilkm::holder<std::vector<int>, TypeParam> scratch;
  std::atomic<int> violations{0};
  cilkm::run(4, [&] {
    parallel_for(0, 2000, 4, [&](std::int64_t i) {
      auto& buf = scratch.view();
      buf.clear();
      for (int k = 0; k < 8; ++k) buf.push_back(static_cast<int>(i));
      for (const int v : buf) {
        if (v != i) violations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  });
  EXPECT_EQ(violations.load(), 0);
}

TYPED_TEST(ExtrasMechanism, OstreamReducerProducesSerialTranscript) {
  std::ostringstream sink;
  cilkm::ostream_reducer<TypeParam> out(sink);
  cilkm::run(4, [&] {
    parallel_for(0, 500, 2, [&](std::int64_t i) {
      out << "line " << i << "\n";
    });
  });
  out.flush();
  std::string expect;
  for (int i = 0; i < 500; ++i) {
    expect += "line " + std::to_string(i) + "\n";
  }
  EXPECT_EQ(sink.str(), expect);
}

TEST(OstreamReducer, FlushClearsPending) {
  std::ostringstream sink;
  cilkm::ostream_reducer<> out(sink);
  out << "abc" << 42;
  EXPECT_EQ(out.pending(), "abc42");
  out.flush();
  EXPECT_EQ(sink.str(), "abc42");
  EXPECT_TRUE(out.pending().empty());
}

TEST(SpawnGroup, RunsAllTasksInSerialOrder) {
  cilkm::reducer<cilkm::string_concat> cat;
  cilkm::run(4, [&] {
    cilkm::SpawnGroup group;
    for (int i = 0; i < 26; ++i) {
      group.spawn([&cat, i] { *cat += static_cast<char>('a' + i); });
    }
    group.sync();
  });
  EXPECT_EQ(cat.get_value(), "abcdefghijklmnopqrstuvwxyz");
}

TEST(SpawnGroup, SyncOnEmptyGroupIsNoop) {
  cilkm::run(2, [] {
    cilkm::SpawnGroup group;
    group.sync();
    EXPECT_TRUE(group.empty());
  });
}

TEST(SpawnGroup, DestructorSyncsPendingTasks) {
  std::atomic<int> ran{0};
  cilkm::run(2, [&] {
    {
      cilkm::SpawnGroup group;
      for (int i = 0; i < 10; ++i) group.spawn([&] { ran.fetch_add(1); });
      // no explicit sync
    }
  });
  EXPECT_EQ(ran.load(), 10);
}

TEST(SpawnGroup, ReusableAfterSync) {
  std::atomic<int> ran{0};
  cilkm::run(2, [&] {
    cilkm::SpawnGroup group;
    group.spawn([&] { ran.fetch_add(1); });
    group.sync();
    group.spawn([&] { ran.fetch_add(10); });
    group.spawn([&] { ran.fetch_add(10); });
    group.sync();
  });
  EXPECT_EQ(ran.load(), 21);
}

TEST(ParallelForAutoGrain, CoversRange) {
  std::atomic<long> sum{0};
  cilkm::run(4, [&] {
    cilkm::parallel_for(0, 100000, [&](std::int64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(sum.load(), 99999L * 100000 / 2);
}

}  // namespace
