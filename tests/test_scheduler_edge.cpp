// Scheduler edge cases and failure injection: precondition enforcement,
// resource stability across many runs, wide oversubscription, exceptions
// thrown from monoid callbacks, and fiber-pool behaviour under churn.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "runtime/stack_pool.hpp"

namespace {

using cilkm::parallel_for;

TEST(SchedulerEdge, NestedRunIsRejected) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(cilkm::run(2, [] { cilkm::run(2, [] {}); }),
               "may not be called from inside a run");
}

TEST(SchedulerEdge, ZeroWorkRunsAreCheap) {
  // 200 empty runs: fiber stacks must be recycled, not accumulated.
  cilkm::Scheduler sched(2);
  const std::size_t created_before = cilkm::rt::StackPool::instance().total_created();
  for (int i = 0; i < 200; ++i) sched.run([] {});
  const std::size_t created_after = cilkm::rt::StackPool::instance().total_created();
  // Each run needs at most a handful of fresh stacks beyond the pool.
  EXPECT_LE(created_after - created_before, 16u);
}

TEST(SchedulerEdge, WideOversubscription) {
  // 32 workers on one core: still correct, still terminates.
  std::atomic<long> sum{0};
  cilkm::run(32, [&] {
    parallel_for(0, 20000, 64, [&](std::int64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(sum.load(), 19999L * 20000 / 2);
}

TEST(SchedulerEdge, ManySmallRunsInterleavedWithReducers) {
  cilkm::Scheduler sched(4);
  long total = 0;
  for (int round = 0; round < 50; ++round) {
    cilkm::reducer_opadd<long> sum;
    sched.run([&] {
      parallel_for(0, 200, 8, [&](std::int64_t) { *sum += 1; });
    });
    total += sum.get_value();
  }
  EXPECT_EQ(total, 50 * 200);
}

// A monoid whose identity() throws on demand: the miss path must propagate
// the exception to the strand performing the lookup and leak nothing.
struct ThrowingMonoid {
  using value_type = long;
  static inline std::atomic<bool> armed{false};
  long identity() const {
    if (armed.load()) throw std::runtime_error("identity failed");
    return 0;
  }
  void reduce(long& l, long& r) const { l += r; }
};

TEST(SchedulerEdge, ExceptionFromIdentityPropagatesToLookup) {
  ThrowingMonoid::armed.store(false);
  cilkm::reducer<ThrowingMonoid> r;  // leftmost identity created un-armed
  ThrowingMonoid::armed.store(true);
  bool caught = false;
  cilkm::run(2, [&] {
    try {
      *r += 1;  // first lookup -> identity view creation -> throw
    } catch (const std::runtime_error&) {
      caught = true;
    }
  });
  EXPECT_TRUE(caught);
  ThrowingMonoid::armed.store(false);
  // The reducer remains usable after the failure.
  cilkm::run(2, [&] { *r += 5; });
  EXPECT_EQ(r.get_value(), 5);
}

TEST(SchedulerEdge, UnbalancedForkTreesTerminate) {
  // A pathologically right-deep spawn chain: every fork defers a long
  // continuation chain; exercises deque depth and fiber parking.
  std::atomic<int> leaves{0};
  std::function<void(int)> chain = [&](int n) {
    if (n == 0) {
      leaves.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    cilkm::fork2join([&] { leaves.fetch_add(1, std::memory_order_relaxed); },
                     [&] { chain(n - 1); });
  };
  cilkm::run(4, [&] { chain(3000); });
  EXPECT_EQ(leaves.load(), 3001);
}

TEST(SchedulerEdge, LeftDeepForkTreesTerminate) {
  std::atomic<int> leaves{0};
  std::function<void(int)> chain = [&](int n) {
    if (n == 0) {
      leaves.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    cilkm::fork2join([&] { chain(n - 1); },
                     [&] { leaves.fetch_add(1, std::memory_order_relaxed); });
  };
  // Left-deep chains consume fiber stack (each level is a real call frame),
  // so the depth is bounded by the fiber stack size — stay well below it
  // even for fat unoptimised frames.
  cilkm::run(4, [&] { chain(2000); });
  EXPECT_EQ(leaves.load(), 2001);
}

TEST(SchedulerEdge, RunFromSecondOsThread) {
  // Schedulers can be driven from any quiescent thread, not just main.
  long result = 0;
  std::thread driver([&] {
    cilkm::reducer_opadd<long> sum;
    cilkm::run(3, [&] {
      parallel_for(0, 1000, 16, [&](std::int64_t) { *sum += 1; });
    });
    result = sum.get_value();
  });
  driver.join();
  EXPECT_EQ(result, 1000);
}

TEST(SchedulerEdge, StatsResetBetweenRuns) {
  cilkm::Scheduler sched(2);
  sched.run([] { cilkm::parallel_for(0, 100, 1, [](std::int64_t) {}); });
  sched.reset_stats();
  const auto stats = sched.aggregate_stats();
  for (unsigned i = 0; i < static_cast<unsigned>(cilkm::StatCounter::kCount); ++i) {
    EXPECT_EQ(stats.counters[i], 0u);
  }
}

}  // namespace
