// Scheduler-tracing tests: the recorded event stream must obey the join
// protocol's invariants (every park is resumed exactly once; deposits
// pair with merges; a root_done terminates every run).
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <thread>

#include "runtime/api.hpp"
#include "runtime/trace.hpp"

namespace {

using cilkm::rt::TraceEvent;
using cilkm::rt::Tracer;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().reset();
    Tracer::instance().enable();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().reset();
  }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::instance().disable();
  cilkm::run(2, [] {});
  EXPECT_TRUE(Tracer::instance().snapshot().empty());
}

TEST_F(TraceTest, RootRunProducesLaunchAndRootDone) {
  cilkm::run(1, [] {});
  const auto records = Tracer::instance().snapshot();
  ASSERT_FALSE(records.empty());
  int launches = 0, root_dones = 0;
  for (const auto& rec : records) {
    launches += rec.event == TraceEvent::kLaunch;
    root_dones += rec.event == TraceEvent::kRootDone;
  }
  EXPECT_EQ(launches, 1);  // only the root fiber on a steal-free run
  EXPECT_EQ(root_dones, 1);
}

TEST_F(TraceTest, ForcedStealProducesProtocolEvents) {
  std::atomic<bool> right_ran{false};
  cilkm::run(2, [&] {
    cilkm::fork2join(
        [&] {
          while (!right_ran.load()) std::this_thread::yield();
        },
        [&] { right_ran.store(true); });
  });
  std::map<TraceEvent, int> counts;
  for (const auto& rec : Tracer::instance().snapshot()) ++counts[rec.event];
  EXPECT_GE(counts[TraceEvent::kSteal], 1);
  EXPECT_GE(counts[TraceEvent::kLaunch], 2);  // root + stolen branch
  // The victim spins until the thief runs, so the victim parks and the
  // thief performs a joining steal (or the victim resumes itself in the
  // double-deposit race) — either way, parks match resumes.
  const int resumes = counts[TraceEvent::kResumeByThief] +
                      counts[TraceEvent::kResumeSelf];
  EXPECT_EQ(counts[TraceEvent::kPark], resumes);
}

TEST_F(TraceTest, ParksAndResumesBalanceUnderLoad) {
  cilkm::run(8, [&] {
    cilkm::parallel_for(0, 5000, 16, [&](std::int64_t i) {
      if (i % 64 == 0) std::this_thread::yield();
    });
  });
  std::map<TraceEvent, int> counts;
  for (const auto& rec : Tracer::instance().snapshot()) ++counts[rec.event];
  const int resumes = counts[TraceEvent::kResumeByThief] +
                      counts[TraceEvent::kResumeSelf];
  EXPECT_EQ(counts[TraceEvent::kPark], resumes);
  EXPECT_EQ(counts[TraceEvent::kRootDone], 1);
}

TEST_F(TraceTest, CsvDumpIsWellFormed) {
  cilkm::run(2, [] {
    cilkm::parallel_for(0, 100, 4, [](std::int64_t) {});
  });
  std::ostringstream out;
  Tracer::instance().dump_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("time_ns,worker,event,frame"), std::string::npos);
  EXPECT_NE(csv.find("root_done"), std::string::npos);
  // Every line has 3 commas.
  std::istringstream lines(csv);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 3) << line;
  }
}

TEST_F(TraceTest, SnapshotIsTimeOrdered) {
  cilkm::run(4, [] {
    cilkm::parallel_for(0, 2000, 8, [](std::int64_t i) {
      if (i % 32 == 0) std::this_thread::yield();
    });
  });
  const auto records = Tracer::instance().snapshot();
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].time_ns, records[i].time_ns);
  }
}

TEST(TraceEventNames, AllNamed) {
  for (int e = 0; e <= static_cast<int>(TraceEvent::kRootDone); ++e) {
    EXPECT_NE(cilkm::rt::to_string(static_cast<TraceEvent>(e)), "?");
  }
}

}  // namespace
