// Scheduler-tracing tests: the recorded event stream must obey the join
// protocol's invariants (every park is resumed exactly once; deposits
// pair with merges; a root_done terminates every run).
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <thread>

#include "runtime/api.hpp"
#include "runtime/trace.hpp"

namespace {

using cilkm::rt::TraceEvent;
using cilkm::rt::Tracer;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().reset();
    Tracer::instance().enable();
  }
  void TearDown() override {
    Tracer::instance().disable();
    Tracer::instance().reset();
  }
};

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::instance().disable();
  cilkm::run(2, [] {});
  EXPECT_TRUE(Tracer::instance().snapshot().empty());
}

TEST_F(TraceTest, RootRunProducesLaunchAndRootDone) {
  cilkm::run(1, [] {});
  const auto records = Tracer::instance().snapshot();
  ASSERT_FALSE(records.empty());
  int launches = 0, root_dones = 0;
  for (const auto& rec : records) {
    launches += rec.event == TraceEvent::kLaunch;
    root_dones += rec.event == TraceEvent::kRootDone;
  }
  EXPECT_EQ(launches, 1);  // only the root fiber on a steal-free run
  EXPECT_EQ(root_dones, 1);
}

TEST_F(TraceTest, ForcedStealProducesProtocolEvents) {
  std::atomic<bool> right_ran{false};
  cilkm::run(2, [&] {
    cilkm::fork2join(
        [&] {
          while (!right_ran.load()) std::this_thread::yield();
        },
        [&] { right_ran.store(true); });
  });
  std::map<TraceEvent, int> counts;
  for (const auto& rec : Tracer::instance().snapshot()) ++counts[rec.event];
  EXPECT_GE(counts[TraceEvent::kSteal], 1);
  EXPECT_GE(counts[TraceEvent::kLaunch], 2);  // root + stolen branch
  // The victim spins until the thief runs, so the victim parks and the
  // thief performs a joining steal (or the victim resumes itself in the
  // double-deposit race) — either way, parks match resumes.
  const int resumes = counts[TraceEvent::kResumeByThief] +
                      counts[TraceEvent::kResumeSelf];
  EXPECT_EQ(counts[TraceEvent::kPark], resumes);
}

TEST_F(TraceTest, ParksAndResumesBalanceUnderLoad) {
  cilkm::run(8, [&] {
    cilkm::parallel_for(0, 5000, 16, [&](std::int64_t i) {
      if (i % 64 == 0) std::this_thread::yield();
    });
  });
  std::map<TraceEvent, int> counts;
  for (const auto& rec : Tracer::instance().snapshot()) ++counts[rec.event];
  const int resumes = counts[TraceEvent::kResumeByThief] +
                      counts[TraceEvent::kResumeSelf];
  EXPECT_EQ(counts[TraceEvent::kPark], resumes);
  EXPECT_EQ(counts[TraceEvent::kRootDone], 1);
}

TEST_F(TraceTest, CsvDumpIsWellFormed) {
  cilkm::run(2, [] {
    cilkm::parallel_for(0, 100, 4, [](std::int64_t) {});
  });
  std::ostringstream out;
  Tracer::instance().dump_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("time_ns,worker,event,frame"), std::string::npos);
  EXPECT_NE(csv.find("root_done"), std::string::npos);
  // Every line has 3 commas.
  std::istringstream lines(csv);
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 3) << line;
  }
}

TEST_F(TraceTest, SnapshotIsTimeOrdered) {
  cilkm::run(4, [] {
    cilkm::parallel_for(0, 2000, 8, [](std::int64_t i) {
      if (i % 32 == 0) std::this_thread::yield();
    });
  });
  const auto records = Tracer::instance().snapshot();
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].time_ns, records[i].time_ns);
  }
}

TEST(TraceEventNames, AllNamed) {
  for (int e = 0; e <= static_cast<int>(TraceEvent::kRootDone); ++e) {
    EXPECT_NE(cilkm::rt::to_string(static_cast<TraceEvent>(e)), "?");
  }
}

TEST_F(TraceTest, EventGrammarHoldsUnderLoad) {
  cilkm::run(4, [&] {
    cilkm::parallel_for(0, 4000, 8, [&](std::int64_t i) {
      if (i % 32 == 0) std::this_thread::yield();
    });
  });
  const auto records = Tracer::instance().snapshot();
  ASSERT_FALSE(records.empty());

  // Every steal or self-pop is immediately followed, on the same worker, by
  // the launch of the promoted frame — nothing is recorded in between.
  std::map<unsigned, TraceEvent> last_event;
  std::map<unsigned, std::uint64_t> last_time;
  std::map<const void*, int> park_balance;
  for (const auto& rec : records) {
    const auto it = last_event.find(rec.worker);
    if (it != last_event.end() && (it->second == TraceEvent::kSteal ||
                                   it->second == TraceEvent::kSelfPop)) {
      EXPECT_EQ(rec.event, TraceEvent::kLaunch)
          << "worker " << static_cast<unsigned>(rec.worker) << ": "
          << cilkm::rt::to_string(it->second) << " followed by "
          << cilkm::rt::to_string(rec.event);
    }
    // Per-worker timestamps never go backwards (each ring is written by one
    // thread reading a monotonic clock).
    const auto lt = last_time.find(rec.worker);
    if (lt != last_time.end()) EXPECT_GE(rec.time_ns, lt->second);
    last_event[rec.worker] = rec.event;
    last_time[rec.worker] = rec.time_ns;

    if (rec.event == TraceEvent::kPark) ++park_balance[rec.frame];
    if (rec.event == TraceEvent::kResumeByThief ||
        rec.event == TraceEvent::kResumeSelf) {
      --park_balance[rec.frame];
    }
  }
  // kPark pairs with exactly one resume per frame (parks land on the
  // victim's worker, resumes on whoever arrived last — balance is global
  // per frame, not per worker).
  for (const auto& [frame, balance] : park_balance) {
    EXPECT_EQ(balance, 0) << "frame " << frame;
  }
}

TEST_F(TraceTest, RingOverflowKeepsNewestInOrder) {
  // Regression: on a wrapped ring, snapshot() must return exactly the last
  // kRingCapacity records, oldest retained entry first — not a stream that
  // starts mid-ring at index 0 of the buffer.
  constexpr std::uint64_t kExtra = 100;
  auto& tracer = Tracer::instance();
  for (std::uint64_t i = 0; i < Tracer::kRingCapacity + kExtra; ++i) {
    tracer.record(0, TraceEvent::kMerge,
                  reinterpret_cast<const void*>(static_cast<std::uintptr_t>(i)));
  }
  const auto records = tracer.snapshot();
  ASSERT_EQ(records.size(), Tracer::kRingCapacity);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].frame,
              reinterpret_cast<const void*>(
                  static_cast<std::uintptr_t>(kExtra + i)))
        << "at snapshot index " << i;
  }
}

TEST_F(TraceTest, EventsBeyondMaxWorkersAreCountedNotSilentlyDropped) {
  auto& tracer = Tracer::instance();
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.record(Tracer::kMaxWorkers, TraceEvent::kSteal, nullptr);
  tracer.record(Tracer::kMaxWorkers + 7, TraceEvent::kPark, nullptr);
  EXPECT_EQ(tracer.dropped(), 2u);
  EXPECT_TRUE(tracer.snapshot().empty());  // nothing retained for them
  tracer.record(0, TraceEvent::kMerge, nullptr);  // in-range still records
  EXPECT_EQ(tracer.snapshot().size(), 1u);
  EXPECT_EQ(tracer.dropped(), 2u);
  tracer.reset();
  EXPECT_EQ(tracer.dropped(), 0u);
  // Disabled tracers count nothing.
  tracer.disable();
  tracer.record(Tracer::kMaxWorkers, TraceEvent::kSteal, nullptr);
  EXPECT_EQ(tracer.dropped(), 0u);
}

}  // namespace
