// The persistent worker pool: threads are created once and survive across
// run() calls, idle workers park on the scheduler's idle gate instead of
// spinning, stats separate genuine thefts from own-deque promotions, and a
// run that throws leaves the pool quiesced and reusable.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"

namespace {

using cilkm::StatCounter;
using cilkm::parallel_for;

/// Threads of this process, from /proc/self/status (Linux-only, like the
/// runtime's context switch).
int count_os_threads() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int threads = -1;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::sscanf(line, "Threads: %d", &threads) == 1) break;
  }
  std::fclose(f);
  return threads;
}

TEST(SchedulerPool, ThreadsPersistAcrossRuns) {
  cilkm::Scheduler sched(4);
  sched.run([] {});
  const int after_first = count_os_threads();
  ASSERT_GE(after_first, 4);
  for (int round = 0; round < 25; ++round) {
    std::atomic<long> sum{0};
    sched.run([&] {
      parallel_for(0, 500, 8, [&](std::int64_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
    });
    EXPECT_EQ(sum.load(), 499L * 500 / 2);
  }
  // A per-run thread pool would have churned through dozens of threads here;
  // the persistent pool's population is unchanged.
  EXPECT_EQ(count_os_threads(), after_first);
}

TEST(SchedulerPool, WarmUpStartsThreadsWithoutRunning) {
  const int before = count_os_threads();
  cilkm::Scheduler sched(3);
  sched.warm_up();
  EXPECT_GE(count_os_threads(), before + 3);
  // warm_up is idempotent and the warmed pool runs normally.
  sched.warm_up();
  std::atomic<int> ran{0};
  sched.run([&] { ran.store(1); });
  EXPECT_EQ(ran.load(), 1);
}

TEST(SchedulerPool, IdleWorkersParkInsteadOfSpinning) {
  // Oversubscribed pool, serial root: every worker except the one running
  // the root is idle for the whole run and must end up parked on the idle
  // gate (spin → yield → park), observable via the new kParks counter.
  cilkm::Scheduler sched(8);
  sched.run([] {});  // create threads; don't count warm-up parking
  sched.reset_stats();
  sched.run([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  const auto stats = sched.aggregate_stats();
  EXPECT_GE(stats[StatCounter::kParks], 1u);
  // The root-done broadcast (and any pushes) must have delivered wake-ups to
  // the parked workers.
  EXPECT_GE(stats[StatCounter::kWakes], 1u);
}

TEST(SchedulerPool, StatsAccumulateUntilReset) {
  cilkm::Scheduler sched(2);
  sched.run([] { parallel_for(0, 200, 4, [](std::int64_t) {}); });
  const auto first = sched.aggregate_stats();
  EXPECT_GE(first[StatCounter::kFibersAllocated], 1u);

  sched.run([] { parallel_for(0, 200, 4, [](std::int64_t) {}); });
  const auto second = sched.aggregate_stats();
  EXPECT_GE(second[StatCounter::kFibersAllocated],
            first[StatCounter::kFibersAllocated] + 1);

  sched.reset_stats();
  const auto cleared = sched.aggregate_stats();
  for (unsigned i = 0; i < static_cast<unsigned>(StatCounter::kCount); ++i) {
    EXPECT_EQ(cleared.counters[i], 0u) << "counter " << i;
  }

  // The pool still works and records fresh stats after the reset.
  sched.run([] { parallel_for(0, 200, 4, [](std::int64_t) {}); });
  EXPECT_GE(sched.aggregate_stats()[StatCounter::kFibersAllocated], 1u);
}

TEST(SchedulerPool, ExceptionDoesNotPoisonThePool) {
  cilkm::Scheduler sched(4);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(sched.run([] { throw std::runtime_error("boom"); }),
                 std::runtime_error);
    // The very next run on the same pool is healthy.
    std::atomic<long> sum{0};
    sched.run([&] {
      parallel_for(0, 300, 8, [&](std::int64_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
    });
    EXPECT_EQ(sum.load(), 299L * 300 / 2);
  }
}

TEST(SchedulerPool, ExceptionIsNotRedeliveredToTheNextRun) {
  cilkm::Scheduler sched(2);
  EXPECT_THROW(sched.run([] { throw std::logic_error("first"); }),
               std::logic_error);
  EXPECT_NO_THROW(sched.run([] {}));
}

TEST(SchedulerPool, SingleWorkerRunHasNoStealsOrAttempts) {
  // With one worker there are no victims: the fork fast path services every
  // spawn, so both the theft counter and the attempt counter stay at zero
  // (the pre-fix code could count own-deque promotions as steals).
  cilkm::Scheduler sched(1);
  sched.reset_stats();
  long total = 0;
  cilkm::reducer_opadd<long> sum;
  sched.run([&] {
    parallel_for(0, 2000, 16, [&](std::int64_t) { *sum += 1; });
  });
  total = sum.get_value();
  EXPECT_EQ(total, 2000);
  const auto stats = sched.aggregate_stats();
  EXPECT_EQ(stats[StatCounter::kSteals], 0u);
  EXPECT_EQ(stats[StatCounter::kStealAttempts], 0u);
  EXPECT_EQ(stats[StatCounter::kSelfPops], 0u);
}

TEST(SchedulerPool, GenuineTheftIsCountedWithItsAttempts) {
  // The left branch cannot finish until the right branch runs, so a second
  // worker MUST steal the continuation: total_steals() counts it, and every
  // steal implies at least one recorded attempt.
  std::atomic<bool> right_ran{false};
  cilkm::Scheduler sched(2);
  sched.reset_stats();
  sched.run([&] {
    cilkm::fork2join(
        [&] {
          while (!right_ran.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        },
        [&] { right_ran.store(true, std::memory_order_release); });
  });
  const auto stats = sched.aggregate_stats();
  EXPECT_GE(stats[StatCounter::kSteals], 1u);
  EXPECT_GE(stats[StatCounter::kStealAttempts], stats[StatCounter::kSteals]);
  EXPECT_EQ(sched.total_steals(), stats[StatCounter::kSteals]);
}

TEST(SchedulerPool, StealAccountingInvariantsHold) {
  // Under steal-half (the default), every theft transaction acquires >= 1
  // frame, every theft is classified into exactly one proximity bucket, and
  // every theft contributes exactly one latency sample to its tier.
  cilkm::Scheduler sched(4);
  sched.reset_stats();
  for (int round = 0; round < 10; ++round) {
    std::atomic<long> sum{0};
    sched.run([&] {
      parallel_for(0, 4000, 4, [&](std::int64_t i) {
        sum.fetch_add(i, std::memory_order_relaxed);
      });
    });
    EXPECT_EQ(sum.load(), 3999L * 4000 / 2);
  }
  const auto stats = sched.aggregate_stats();
  EXPECT_EQ(stats[StatCounter::kLocalSteals] + stats[StatCounter::kRemoteSteals],
            stats[StatCounter::kSteals]);
  EXPECT_GE(stats[StatCounter::kStolenFrames], stats[StatCounter::kSteals]);
  std::uint64_t lat_samples = 0;
  for (std::size_t t = 0; t < cilkm::WorkerStats::kStealTiers; ++t) {
    std::uint64_t in_buckets = 0;
    for (std::size_t b = 0; b < cilkm::WorkerStats::kStealLatBuckets; ++b) {
      in_buckets += stats.steal_lat_hist[t][b];
    }
    EXPECT_EQ(in_buckets, stats.steal_lat_count[t]) << "tier " << t;
    lat_samples += stats.steal_lat_count[t];
  }
  EXPECT_EQ(lat_samples, stats[StatCounter::kSteals]);
}

TEST(SchedulerPool, SingleFrameStealBatchMatchesClassicAccounting) {
  // steal_batch = 1 restores classic Chase-Lev stealing: every theft nets
  // exactly one frame, so the two counters must agree exactly.
  cilkm::SchedulerOptions options;
  options.steal_batch = 1;
  cilkm::Scheduler sched(4, options);
  sched.reset_stats();
  std::atomic<bool> right_ran{false};
  sched.run([&] {
    cilkm::fork2join(
        [&] {
          while (!right_ran.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        },
        [&] { right_ran.store(true, std::memory_order_release); });
    parallel_for(0, 4000, 4, [](std::int64_t) {});
  });
  const auto stats = sched.aggregate_stats();
  EXPECT_GE(stats[StatCounter::kSteals], 1u);
  EXPECT_EQ(stats[StatCounter::kStolenFrames], stats[StatCounter::kSteals]);
  EXPECT_EQ(stats[StatCounter::kLocalSteals] + stats[StatCounter::kRemoteSteals],
            stats[StatCounter::kSteals]);
}

TEST(SchedulerPool, StealHalfForcedTheftAcquiresFrames) {
  // The forced-steal shape from GenuineTheftIsCountedWithItsAttempts, under
  // the default steal-half config: the theft happens, and stolen-frame
  // accounting covers it.
  std::atomic<bool> right_ran{false};
  cilkm::Scheduler sched(2);
  sched.reset_stats();
  sched.run([&] {
    cilkm::fork2join(
        [&] {
          while (!right_ran.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        },
        [&] { right_ran.store(true, std::memory_order_release); });
  });
  const auto stats = sched.aggregate_stats();
  EXPECT_GE(stats[StatCounter::kSteals], 1u);
  EXPECT_GE(stats[StatCounter::kStolenFrames], stats[StatCounter::kSteals]);
}

TEST(SchedulerPool, ParkedWorkersWakeForNewWork) {
  // Phase 1 idles everyone long enough to park; phase 2 (same run) then
  // spawns real work, which must wake the parked workers via Deque::push and
  // still compute the right answer.
  cilkm::Scheduler sched(4);
  sched.reset_stats();
  std::atomic<long> sum{0};
  sched.run([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    parallel_for(0, 4000, 8, [&](std::int64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(sum.load(), 3999L * 4000 / 2);
  const auto stats = sched.aggregate_stats();
  EXPECT_GE(stats[StatCounter::kParks], 1u);
}

TEST(SchedulerPool, ReducersCorrectAcrossReusedRuns) {
  // Reducer state (view stores, slot offsets) stays warm in the persistent
  // workers; values must still be exact run after run.
  cilkm::Scheduler sched(4);
  for (int round = 0; round < 10; ++round) {
    cilkm::reducer_opadd<long> sum;
    sched.run([&] {
      parallel_for(0, 1000, 4, [&](std::int64_t) { *sum += 1; });
    });
    EXPECT_EQ(sum.get_value(), 1000);
  }
}

TEST(SchedulerPool, ManySequentialRunsAreFast) {
  // 500 empty runs through the persistent pool: mostly a wake/quiesce
  // handshake each. This is a liveness test (no lost wake-up between runs),
  // not a timing assertion.
  cilkm::Scheduler sched(4);
  for (int i = 0; i < 500; ++i) sched.run([] {});
}

}  // namespace
