// Cross-module integration tests: realistic combined workloads exercising
// the scheduler, both reducer mechanisms, the SPA machinery, the pools, and
// PBFS together — plus lifecycle edge cases (sequential schedulers, slot
// churn across runs, fiber reuse across many runs).
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "pbfs/pbfs.hpp"
#include "reducers/extras.hpp"
#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "spa/slot_alloc.hpp"

namespace {

using cilkm::fork2join;
using cilkm::parallel_for;

TEST(Integration, PipelineOfHeterogeneousStages) {
  // Stage 1: generate data into a vector reducer. Stage 2: BFS over a graph
  // derived from it. Stage 3: aggregate with add/min/max reducers. All in
  // one run, sharing the scheduler and the SPA region.
  using namespace cilkm::pbfs;
  cilkm::vector_reducer<std::pair<Vertex, Vertex>> edges;
  cilkm::reducer_opadd<long> checksum;
  cilkm::reducer_min<std::uint32_t> min_dist_sum;

  Graph g;
  BfsResult bfs;
  cilkm::run(4, [&] {
    parallel_for(0, 30000, 64, [&](std::int64_t i) {
      const auto u = static_cast<Vertex>((i * 2654435761u) % 5000);
      const auto v = static_cast<Vertex>((i * 40503u + 7) % 5000);
      edges->emplace_back(u, v);
    });
    g = Graph::from_edges(5000, edges.view());
    bfs = pbfs<cilkm::mm_policy>(g, 0);
    parallel_for(0, 5000, 16, [&](std::int64_t v) {
      const Vertex d = bfs.dist[static_cast<std::size_t>(v)];
      if (d != kUnreached) {
        *checksum += d;
        if (d < *min_dist_sum) *min_dist_sum = d;
      }
    });
  });

  const auto serial = serial_bfs(g, 0);
  EXPECT_EQ(bfs.dist, serial.dist);
  long expect_sum = 0;
  for (const Vertex d : serial.dist) {
    if (d != kUnreached) expect_sum += d;
  }
  EXPECT_EQ(checksum.get_value(), expect_sum);
  EXPECT_EQ(min_dist_sum.get_value(), 0u);  // the source itself
}

TEST(Integration, SequentialSchedulersShareGlobalPools) {
  // Slot offsets, SPA pages, fiber stacks, and pooled views all flow back
  // to global pools when a scheduler dies; fresh schedulers reuse them.
  const std::size_t live_before = cilkm::spa::SlotAllocator::instance().live_slots();
  for (int round = 0; round < 4; ++round) {
    cilkm::reducer_opadd<long> sum;
    cilkm::run(3, [&] {
      parallel_for(0, 5000, 32, [&](std::int64_t) { *sum += 1; });
    });
    EXPECT_EQ(sum.get_value(), 5000);
  }
  EXPECT_EQ(cilkm::spa::SlotAllocator::instance().live_slots(), live_before);
}

TEST(Integration, SlotChurnAcrossRuns) {
  // Thousands of reducers created and destroyed across runs: slots recycle,
  // stale SPA log entries stay harmless.
  for (int round = 0; round < 3; ++round) {
    std::vector<std::unique_ptr<cilkm::reducer_opadd<int>>> reducers;
    for (int i = 0; i < 500; ++i) {
      reducers.push_back(std::make_unique<cilkm::reducer_opadd<int>>());
    }
    cilkm::run(2, [&] {
      parallel_for(0, 500, 8, [&](std::int64_t i) {
        *(*reducers[static_cast<std::size_t>(i)]) += static_cast<int>(i);
      });
    });
    for (int i = 0; i < 500; ++i) {
      EXPECT_EQ(reducers[static_cast<std::size_t>(i)]->get_value(), i);
    }
  }
}

TEST(Integration, MixedMechanismsAndTypesUnderLoad) {
  cilkm::reducer_opadd<double, cilkm::mm_policy> sum_d;
  cilkm::reducer_opadd<long, cilkm::hypermap_policy> sum_l;
  cilkm::string_reducer<cilkm::mm_policy> cat_mm;
  cilkm::string_reducer<cilkm::hypermap_policy> cat_hm;
  cilkm::max_index_reducer<std::int64_t, long> argmax;

  cilkm::run(8, [&] {
    parallel_for(0, 4000, 4, [&](std::int64_t i) {
      *sum_d += 0.5;
      *sum_l += 2;
      cat_mm.view() += static_cast<char>('a' + i % 26);
      cat_hm.view() += static_cast<char>('A' + i % 26);
      decltype(argmax)::monoid_type::update(argmax.view(), i, (i * 37) % 1000);
    });
  });

  EXPECT_DOUBLE_EQ(sum_d.get_value(), 2000.0);
  EXPECT_EQ(sum_l.get_value(), 8000);
  std::string expect_mm, expect_hm;
  long best = -1;
  std::int64_t best_i = -1;
  for (std::int64_t i = 0; i < 4000; ++i) {
    expect_mm += static_cast<char>('a' + i % 26);
    expect_hm += static_cast<char>('A' + i % 26);
    if ((i * 37) % 1000 > best) {
      best = (i * 37) % 1000;
      best_i = i;
    }
  }
  EXPECT_EQ(cat_mm.get_value(), expect_mm);
  EXPECT_EQ(cat_hm.get_value(), expect_hm);
  EXPECT_EQ(argmax.get_value().index, best_i);
  EXPECT_EQ(argmax.get_value().value, best);
}

TEST(Integration, DeepFiberRecursionAcrossSteals) {
  // A deep spawn chain (every level forks) with a reducer: exercises fiber
  // parking at many nesting depths.
  cilkm::reducer_opadd<long> count;
  std::function<void(int)> descend = [&](int depth) {
    *count += 1;
    if (depth == 0) return;
    fork2join([&] { descend(depth - 1); }, [&] { descend(depth - 1); });
  };
  cilkm::run(4, [&] { descend(12); });
  EXPECT_EQ(count.get_value(), (1L << 13) - 1);  // 2^(d+1) - 1 nodes
}

TEST(Integration, ReducerDeclaredInsideDeepParallelism) {
  // Reducers born and destroyed on arbitrary workers inside the parallel
  // region, nested two levels down.
  std::atomic<long> grand_total{0};
  cilkm::run(4, [&] {
    parallel_for(0, 40, 1, [&](std::int64_t) {
      cilkm::reducer_opadd<long> local_sum;
      parallel_for(0, 200, 8, [&](std::int64_t) { *local_sum += 1; });
      grand_total.fetch_add(local_sum.get_value(), std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(grand_total.load(), 8000);
}

TEST(Integration, LargeReducerValuesSpillToHeapClass) {
  // Views above the largest pool class take the operator-new fallthrough.
  struct Big {
    std::array<double, 128> a{};  // 1 KiB view
  };
  struct BigMonoid {
    using value_type = Big;
    Big identity() const { return {}; }
    void reduce(Big& l, Big& r) const {
      for (std::size_t i = 0; i < l.a.size(); ++i) l.a[i] += r.a[i];
    }
  };
  cilkm::reducer<BigMonoid> big;
  cilkm::run(4, [&] {
    parallel_for(0, 1280, 16, [&](std::int64_t i) {
      big.view().a[static_cast<std::size_t>(i) % 128] += 1.0;
    });
  });
  double total = 0;
  for (const double v : big.get_value().a) total += v;
  EXPECT_DOUBLE_EQ(total, 1280.0);
}

}  // namespace
