// ViewStore-layer unit tests: the FlatViewStore (dense-id ablation policy),
// the FlatIdAllocator, and the ViewStoreSet engine moving all three stores'
// views through one deposit — the contract every policy implements.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "runtime/worker.hpp"
#include "tlmm/region.hpp"
#include "views/flat_registry.hpp"
#include "views/view_store.hpp"

namespace {

using cilkm::ViewOps;
using cilkm::WorkerStats;
using cilkm::rt::Scheduler;
using cilkm::rt::Worker;
using cilkm::views::FlatIdAllocator;
using cilkm::views::FlatViewStore;
using cilkm::views::ViewSetDeposit;

struct StrView {
  std::string text;
};

struct FakeReducer {
  std::string collapsed;
  ViewOps ops{};

  FakeReducer() {
    ops.create_identity = [](void*) -> void* { return new StrView{}; };
    ops.reduce = [](void*, void* l, void* r) {
      static_cast<StrView*>(l)->text += static_cast<StrView*>(r)->text;
      delete static_cast<StrView*>(r);
    };
    ops.destroy = [](void*, void* v) { delete static_cast<StrView*>(v); };
    ops.collapse = [](void* self, void* v) {
      static_cast<FakeReducer*>(self)->collapsed +=
          static_cast<StrView*>(v)->text;
      delete static_cast<StrView*>(v);
    };
    ops.reducer = this;
  }
};

// ---------------------------------------------------------------------------
// FlatIdAllocator
// ---------------------------------------------------------------------------

TEST(FlatIdAllocator, IdsAreDenseAndRecycledLifo) {
  auto& alloc = FlatIdAllocator::instance();
  const std::size_t live_before = alloc.live();
  const std::uint32_t a = alloc.allocate();
  const std::uint32_t b = alloc.allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(alloc.live(), live_before + 2);
  alloc.free(b);
  const std::uint32_t c = alloc.allocate();
  EXPECT_EQ(c, b);  // LIFO reuse keeps the id space dense
  alloc.free(a);
  alloc.free(c);
  EXPECT_EQ(alloc.live(), live_before);
}

// ---------------------------------------------------------------------------
// FlatViewStore in isolation
// ---------------------------------------------------------------------------

class FlatStoreTest : public ::testing::Test {
 protected:
  WorkerStats stats;
  FlatViewStore store{&stats};
};

TEST_F(FlatStoreTest, InstallLookupExtract) {
  FakeReducer r;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.lookup(5), nullptr);

  store.install(5, new StrView{"v"}, &r.ops);
  ASSERT_NE(store.lookup(5), nullptr);
  EXPECT_EQ(static_cast<StrView*>(store.lookup(5))->text, "v");
  EXPECT_FALSE(store.empty());
  EXPECT_GE(store.capacity(), 6u);  // grew to cover the id

  void* out = store.extract(5);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(store.lookup(5), nullptr);
  EXPECT_TRUE(store.empty());
  delete static_cast<StrView*>(out);
}

TEST_F(FlatStoreTest, ExtractAbsentIdIsNull) {
  EXPECT_EQ(store.extract(0), nullptr);
  EXPECT_EQ(store.extract(1u << 20), nullptr);  // beyond capacity
}

TEST_F(FlatStoreTest, DepositMovesViewsAndEmptiesStore) {
  FakeReducer r;
  store.install(0, new StrView{"a"}, &r.ops);
  store.install(7, new StrView{"b"}, &r.ops);

  std::vector<cilkm::views::FlatDepositEntry> dep;
  store.deposit(&dep);
  EXPECT_TRUE(store.empty());
  ASSERT_EQ(dep.size(), 2u);

  store.install_deposit(&dep);
  EXPECT_TRUE(dep.empty());
  EXPECT_EQ(static_cast<StrView*>(store.lookup(0))->text, "a");
  EXPECT_EQ(static_cast<StrView*>(store.lookup(7))->text, "b");
  store.collapse_into_leftmosts();
  EXPECT_EQ(r.collapsed, "ab");
}

TEST_F(FlatStoreTest, MergePreservesOperandOrderBothDirections) {
  FakeReducer r;
  WorkerStats other_stats;
  FlatViewStore other{&other_stats};

  // Left merge: deposit is serially earlier.
  other.install(3, new StrView{"L"}, &r.ops);
  std::vector<cilkm::views::FlatDepositEntry> dep;
  other.deposit(&dep);
  store.install(3, new StrView{"R"}, &r.ops);
  store.merge(&dep, /*deposit_is_left=*/true);
  EXPECT_EQ(static_cast<StrView*>(store.lookup(3))->text, "LR");

  // Right merge: ambient is serially earlier.
  other.install(3, new StrView{"!"}, &r.ops);
  other.deposit(&dep);
  store.merge(&dep, /*deposit_is_left=*/false);
  EXPECT_EQ(static_cast<StrView*>(store.lookup(3))->text, "LR!");

  store.collapse_into_leftmosts();
  EXPECT_EQ(r.collapsed, "LR!");
}

TEST_F(FlatStoreTest, MergeAdoptsViewsAbsentFromAmbient) {
  FakeReducer r;
  WorkerStats other_stats;
  FlatViewStore other{&other_stats};
  other.install(1, new StrView{"x"}, &r.ops);
  other.install(2, new StrView{"y"}, &r.ops);
  std::vector<cilkm::views::FlatDepositEntry> dep;
  other.deposit(&dep);

  store.install(1, new StrView{"q"}, &r.ops);
  store.merge(&dep, /*deposit_is_left=*/true);
  EXPECT_EQ(static_cast<StrView*>(store.lookup(1))->text, "xq");
  EXPECT_EQ(static_cast<StrView*>(store.lookup(2))->text, "y");  // adopted
  store.collapse_into_leftmosts();
  EXPECT_TRUE(store.empty());
}

TEST_F(FlatStoreTest, ReinstallAfterExtractIsCleanDespiteStaleTouchedEntry) {
  // extract() leaves a stale id in the touched log (same convention as the
  // SPA page log); a reinstall plus deposit must not duplicate the view.
  FakeReducer r;
  store.install(4, new StrView{"a"}, &r.ops);
  delete static_cast<StrView*>(store.extract(4));
  store.install(4, new StrView{"b"}, &r.ops);

  std::vector<cilkm::views::FlatDepositEntry> dep;
  store.deposit(&dep);
  ASSERT_EQ(dep.size(), 1u);
  EXPECT_EQ(static_cast<StrView*>(dep[0].slot.view)->text, "b");
  store.install_deposit(&dep);
  store.collapse_into_leftmosts();
  EXPECT_EQ(r.collapsed, "b");
}

// ---------------------------------------------------------------------------
// ViewStoreSet: one deposit carries all three mechanisms at once
// ---------------------------------------------------------------------------

class ViewStoreSetTest : public ::testing::Test {
 protected:
  ViewStoreSetTest() : sched_(2) {}
  ~ViewStoreSetTest() override { cilkm::tlmm::set_current_region(nullptr); }

  Worker& w(unsigned i) { return sched_.worker(i); }

  Scheduler sched_;
};

TEST_F(ViewStoreSetTest, DepositCarriesAllThreeStores) {
  FakeReducer r_spa, r_hmap, r_flat;
  w(0).views().spa().install(cilkm::spa::slot_offset(0, 11),
                             new StrView{"s"}, &r_spa.ops);
  w(0).views().hypermap().install(&r_hmap, new StrView{"h"}, &r_hmap.ops);
  w(0).views().flat().install(9, new StrView{"f"}, &r_flat.ops);
  EXPECT_FALSE(w(0).views().empty());

  ViewSetDeposit dep;
  w(0).views().deposit_ambient(&dep);
  EXPECT_TRUE(w(0).views().empty());
  EXPECT_EQ(dep.spa.size(), 1u);
  EXPECT_EQ(dep.hmap.size(), 1u);
  EXPECT_EQ(dep.flat.size(), 1u);

  w(1).views().install_deposit(&dep);
  EXPECT_TRUE(dep.empty());
  w(1).views().collapse_into_leftmosts();
  EXPECT_EQ(r_spa.collapsed, "s");
  EXPECT_EQ(r_hmap.collapsed, "h");
  EXPECT_EQ(r_flat.collapsed, "f");
}

TEST_F(ViewStoreSetTest, MergeLeftOrdersAllThreeStores) {
  FakeReducer r_spa, r_hmap, r_flat;
  const auto off = cilkm::spa::slot_offset(2, 20);

  w(0).views().spa().install(off, new StrView{"S1"}, &r_spa.ops);
  w(0).views().hypermap().install(&r_hmap, new StrView{"H1"}, &r_hmap.ops);
  w(0).views().flat().install(2, new StrView{"F1"}, &r_flat.ops);
  ViewSetDeposit dep;
  w(0).views().deposit_ambient(&dep);

  w(1).views().spa().install(off, new StrView{"S2"}, &r_spa.ops);
  w(1).views().hypermap().install(&r_hmap, new StrView{"H2"}, &r_hmap.ops);
  w(1).views().flat().install(2, new StrView{"F2"}, &r_flat.ops);
  w(1).views().merge_deposit_left(&dep);
  w(1).views().collapse_into_leftmosts();

  EXPECT_EQ(r_spa.collapsed, "S1S2");
  EXPECT_EQ(r_hmap.collapsed, "H1H2");
  EXPECT_EQ(r_flat.collapsed, "F1F2");
}

}  // namespace
