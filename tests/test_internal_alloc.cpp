// The tagged, NUMA-sharded internal allocator (src/mem/): size-class
// round-trips, per-tag accounting, magazine refill/flush batching,
// cross-worker frees, the teardown leak check, node-shard selection against
// canned sysfs topologies, the consumers rewired through it (SpawnFrame,
// HyperMap tables, fiber headers), the StackPool's per-node trim — and a
// DPRNG-driven property test that random view merge/collapse orders keep
// the allocator's books balanced under all three view-store policies.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "hypermap/hypermap.hpp"
#include "mem/internal_alloc.hpp"
#include "mem/node_map.hpp"
#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "runtime/frame.hpp"
#include "runtime/stack_pool.hpp"
#include "test_support.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;
using cilkm::mem::AllocTag;
using cilkm::mem::InternalAlloc;
using cilkm::mem::NodeMap;
using cilkm::topo::Topology;

// Minimal canned-sysfs helper (same layout as test_topology.cpp's):
// 2 packages x 2 cores x 2 SMT, node0 = cpus 0-3, node1 = cpus 4-7.
class SysfsTree {
 public:
  SysfsTree() {
    static std::atomic<unsigned> counter{0};
    root_ = fs::temp_directory_path() /
            ("cilkm_alloc_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1)));
    fs::create_directories(root_ / "cpu");
  }
  ~SysfsTree() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }
  SysfsTree(const SysfsTree&) = delete;
  SysfsTree& operator=(const SysfsTree&) = delete;

  std::string path() const { return root_.string(); }

  void make_two_node_machine() {
    write(root_ / "cpu" / "online", "0-7");
    for (unsigned cpu = 0; cpu < 8; ++cpu) {
      const fs::path topo =
          root_ / "cpu" / ("cpu" + std::to_string(cpu)) / "topology";
      fs::create_directories(topo);
      write(topo / "physical_package_id", std::to_string(cpu / 4));
      write(topo / "core_id", std::to_string((cpu % 4) / 2));
    }
    add_node(0, "0-3");
    add_node(1, "4-7");
  }
  void add_node(unsigned node, const std::string& cpulist) {
    const fs::path dir = root_ / "node" / ("node" + std::to_string(node));
    fs::create_directories(dir);
    write(dir / "cpulist", cpulist);
  }

 private:
  static void write(const fs::path& file, const std::string& content) {
    std::ofstream out(file);
    out << content << "\n";
  }
  fs::path root_;
};

// ---------------------------------------------------------------------------
// Size classes
// ---------------------------------------------------------------------------

TEST(InternalAlloc, SizeClassBoundaries) {
  EXPECT_EQ(InternalAlloc::size_class(1), 0);
  EXPECT_EQ(InternalAlloc::size_class(16), 0);
  EXPECT_EQ(InternalAlloc::size_class(17), 1);
  EXPECT_EQ(InternalAlloc::size_class(256), 4);
  EXPECT_EQ(InternalAlloc::size_class(257), 5);
  EXPECT_EQ(InternalAlloc::size_class(4096), 8);
  EXPECT_EQ(InternalAlloc::size_class(4097), -1);  // operator-new fall-through
}

TEST(InternalAlloc, EveryClassRoundTrips) {
  InternalAlloc alloc;  // standalone: magazine-less, shard-direct
  for (const std::size_t size : InternalAlloc::kClassSizes) {
    std::set<void*> seen;
    std::vector<void*> ptrs;
    for (int i = 0; i < 50; ++i) {
      void* p = alloc.allocate(size, AllocTag::kGeneral);
      ASSERT_NE(p, nullptr);
      EXPECT_TRUE(seen.insert(p).second) << "duplicate block, class " << size;
      std::memset(p, 0xab, size);
      ptrs.push_back(p);
    }
    for (void* p : ptrs) alloc.deallocate(p, size, AllocTag::kGeneral);
  }
  EXPECT_TRUE(alloc.leak_report().clean);
}

// ---------------------------------------------------------------------------
// Tag accounting
// ---------------------------------------------------------------------------

TEST(InternalAlloc, TagAccountingTracksLiveAndPeak) {
  InternalAlloc alloc;
  std::vector<void*> ptrs;
  for (int i = 0; i < 10; ++i) {
    ptrs.push_back(alloc.allocate(48, AllocTag::kViews));
  }
  auto stats = alloc.tag_stats(AllocTag::kViews);
  EXPECT_EQ(stats.live_blocks, 10u);
  EXPECT_EQ(stats.live_bytes, 10u * 64);  // 48 rounds up to the 64 B class
  EXPECT_EQ(stats.allocs, 10u);
  // Other tags untouched.
  EXPECT_EQ(alloc.tag_stats(AllocTag::kFrames).live_blocks, 0u);

  for (void* p : ptrs) alloc.deallocate(p, 48, AllocTag::kViews);
  stats = alloc.tag_stats(AllocTag::kViews);
  EXPECT_EQ(stats.live_blocks, 0u);
  EXPECT_EQ(stats.live_bytes, 0u);
  // Peaks persist after the frees.
  EXPECT_EQ(stats.peak_blocks, 10u);
  EXPECT_EQ(stats.peak_bytes, 10u * 64);
}

TEST(InternalAlloc, OversizeFallThroughStaysTagCounted) {
  InternalAlloc alloc;
  void* p = alloc.allocate(8192, AllocTag::kGeneral);
  ASSERT_NE(p, nullptr);
  std::memset(p, 1, 8192);
  auto stats = alloc.tag_stats(AllocTag::kGeneral);
  EXPECT_EQ(stats.live_blocks, 1u);
  EXPECT_EQ(stats.live_bytes, 8192u);  // exact, not class-rounded
  alloc.deallocate(p, 8192, AllocTag::kGeneral);
  EXPECT_TRUE(alloc.leak_report().clean);
}

// ---------------------------------------------------------------------------
// Magazine refill / flush batching
// ---------------------------------------------------------------------------

TEST(InternalAlloc, RefillMovesBatchesAndFlushReturnsThem) {
  const Topology topo = Topology::flat(4);  // one shard: deterministic home
  InternalAlloc alloc(&topo);
  const int cls = InternalAlloc::size_class(64);

  // Magazine A's first allocation finds the shard empty and carves a whole
  // chunk into the magazine; flushing returns every block to the shard.
  InternalAlloc::Magazine a;
  void* p = alloc.allocate(64, AllocTag::kViews, &a);
  EXPECT_EQ(alloc.tag_stats(AllocTag::kViews).refills, 1u);
  alloc.deallocate(p, 64, AllocTag::kViews, &a);
  alloc.flush(a);
  const std::size_t shard_after_flush =
      alloc.shard_cached(0, AllocTag::kViews, cls);
  EXPECT_EQ(shard_after_flush, InternalAlloc::kChunkBytes / 64);
  EXPECT_GE(alloc.tag_stats(AllocTag::kViews).flushes, 1u);

  // Magazine B refills from the now-populated shard in kBatch units.
  InternalAlloc::Magazine b;
  void* q = alloc.allocate(64, AllocTag::kViews, &b);
  EXPECT_EQ(alloc.shard_cached(0, AllocTag::kViews, cls),
            shard_after_flush - InternalAlloc::kBatch);
  alloc.deallocate(q, 64, AllocTag::kViews, &b);
  alloc.flush(b);
  EXPECT_TRUE(alloc.leak_report().clean);
}

TEST(InternalAlloc, HighWaterDrainBoundsMagazineGrowth) {
  const Topology topo = Topology::flat(2);
  InternalAlloc alloc(&topo);
  const int cls = InternalAlloc::size_class(128);

  // Fill one magazine well past the high-water mark by freeing blocks that
  // were allocated magazine-less (straight from the shard): the surplus
  // must drain back to the shard rather than accumulate without bound.
  std::vector<void*> ptrs;
  for (std::size_t i = 0; i < 3 * InternalAlloc::kHighWater; ++i) {
    ptrs.push_back(alloc.allocate(128, AllocTag::kGeneral, nullptr));
  }
  InternalAlloc::Magazine mag;
  const std::size_t shard_before =
      alloc.shard_cached(0, AllocTag::kGeneral, cls);
  for (void* p : ptrs) alloc.deallocate(p, 128, AllocTag::kGeneral, &mag);
  EXPECT_GT(alloc.shard_cached(0, AllocTag::kGeneral, cls), shard_before);
  EXPECT_GT(alloc.tag_stats(AllocTag::kGeneral).flushes, 0u);
  alloc.flush(mag);
  EXPECT_TRUE(alloc.leak_report().clean);
}

// ---------------------------------------------------------------------------
// Cross-worker frees
// ---------------------------------------------------------------------------

TEST(InternalAlloc, CrossMagazineFreeKeepsBooksBalanced) {
  // Views are routinely allocated on one worker and freed on another (the
  // hypermerge destroys the right-hand view wherever the join lands).
  const Topology topo = Topology::flat(4);
  InternalAlloc alloc(&topo);
  InternalAlloc::Magazine worker_a, worker_b;
  std::vector<void*> ptrs;
  for (int i = 0; i < 200; ++i) {
    ptrs.push_back(alloc.allocate(32, AllocTag::kViews, &worker_a));
  }
  for (void* p : ptrs) alloc.deallocate(p, 32, AllocTag::kViews, &worker_b);
  alloc.flush(worker_a);
  alloc.flush(worker_b);
  EXPECT_EQ(alloc.tag_stats(AllocTag::kViews).live_blocks, 0u);
  EXPECT_TRUE(alloc.leak_report().clean);
}

TEST(InternalAlloc, CrossThreadFreeOnProcessInstanceIsSafe) {
  auto& alloc = InternalAlloc::instance();
  alloc.stats_sync();
  const auto before = alloc.tag_stats(AllocTag::kGeneral).live_blocks;
  std::vector<void*> ptrs;
  for (int i = 0; i < 300; ++i) {
    ptrs.push_back(alloc.allocate(64, AllocTag::kGeneral));
  }
  std::thread other([&] {
    for (void* p : ptrs) alloc.deallocate(p, 64, AllocTag::kGeneral);
  });
  other.join();
  std::set<void*> seen;
  std::vector<void*> round2;
  for (int i = 0; i < 300; ++i) {
    void* p = alloc.allocate(64, AllocTag::kGeneral);
    EXPECT_TRUE(seen.insert(p).second);
    round2.push_back(p);
  }
  for (void* p : round2) alloc.deallocate(p, 64, AllocTag::kGeneral);
  alloc.stats_sync();  // the freeing thread's magazine reconciled at exit
  EXPECT_EQ(alloc.tag_stats(AllocTag::kGeneral).live_blocks, before);
}

TEST(InternalAlloc, ConcurrentAllocFreeStress) {
  auto& alloc = InternalAlloc::instance();
  constexpr int kThreads = 4, kIters = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const AllocTag tag = t % 2 == 0 ? AllocTag::kViews : AllocTag::kFrames;
      std::vector<void*> held;
      for (int i = 0; i < kIters; ++i) {
        held.push_back(alloc.allocate(16, tag));
        std::memset(held.back(), 0x5a, 16);
        if (held.size() > 48) {
          alloc.deallocate(held.front(), 16, tag);
          held.erase(held.begin());
        }
      }
      for (void* p : held) alloc.deallocate(p, 16, tag);
    });
  }
  for (auto& th : threads) th.join();
}

// ---------------------------------------------------------------------------
// Leak check
// ---------------------------------------------------------------------------

TEST(InternalAlloc, LeakCheckTripsOnDeliberatelyLeakedBlock) {
  InternalAlloc alloc;
  void* leaked = alloc.allocate(96, AllocTag::kHypermapNodes);
  auto report = alloc.leak_report();
  EXPECT_FALSE(report.clean);
  EXPECT_EQ(
      report.blocks[static_cast<std::size_t>(AllocTag::kHypermapNodes)], 1u);
  EXPECT_NE(report.describe().find("hypermap_nodes=1"), std::string::npos);
  // Repaying the debt makes the report clean again.
  alloc.deallocate(leaked, 96, AllocTag::kHypermapNodes);
  report = alloc.leak_report();
  EXPECT_TRUE(report.clean);
  EXPECT_EQ(report.describe(), "no outstanding blocks");
}

// ---------------------------------------------------------------------------
// Node-shard selection
// ---------------------------------------------------------------------------

TEST(NodeMapTest, TwoNodeSysfsMachineShardsByNode) {
  SysfsTree tree;
  tree.make_two_node_machine();
  const Topology topo = Topology::discover_at(tree.path());
  ASSERT_EQ(topo.num_nodes(), 2u);

  NodeMap map(topo);
  EXPECT_EQ(map.num_shards(), 2u);
  for (unsigned cpu = 0; cpu < 4; ++cpu) EXPECT_EQ(map.shard_of_cpu(cpu), 0u);
  for (unsigned cpu = 4; cpu < 8; ++cpu) EXPECT_EQ(map.shard_of_cpu(cpu), 1u);
  EXPECT_EQ(map.shard_of_cpu(99), 0u);  // out of range → shard 0

  InternalAlloc alloc(&topo);
  EXPECT_EQ(alloc.num_shards(), 2u);
  EXPECT_EQ(alloc.shard_of_cpu(2), 0u);
  EXPECT_EQ(alloc.shard_of_cpu(6), 1u);
}

TEST(NodeMapTest, SparseNodeIdsAreDensified) {
  SysfsTree tree;
  tree.make_two_node_machine();
  // Overwrite the node directories: ids 0 and 4 (sparse, as on some
  // multi-socket boxes with memory-less nodes removed).
  std::error_code ec;
  fs::remove_all(fs::path(tree.path()) / "node", ec);
  tree.add_node(0, "0-3");
  tree.add_node(4, "4-7");
  const Topology topo = Topology::discover_at(tree.path());
  NodeMap map(topo);
  EXPECT_EQ(map.num_shards(), 2u);
  EXPECT_EQ(map.shard_of_cpu(0), 0u);
  EXPECT_EQ(map.shard_of_cpu(7), 1u);
}

TEST(NodeMapTest, FlatTopologyCollapsesToOneShard) {
  const Topology topo = Topology::flat(8);
  NodeMap map(topo);
  EXPECT_EQ(map.num_shards(), 1u);
  EXPECT_EQ(map.current_shard(), 0u);  // no sched_getcpu query needed
}

TEST(InternalAlloc, BoundMagazineExchangesWithItsNodeShard) {
  SysfsTree tree;
  tree.make_two_node_machine();
  const Topology topo = Topology::discover_at(tree.path());
  InternalAlloc alloc(&topo);
  const int cls = InternalAlloc::size_class(64);

  // A magazine pinned to node 1 carves/flushes against shard 1 only.
  InternalAlloc::Magazine mag;
  mag.node = 1;
  void* p = alloc.allocate(64, AllocTag::kViews, &mag);
  alloc.deallocate(p, 64, AllocTag::kViews, &mag);
  alloc.flush(mag);
  EXPECT_EQ(alloc.shard_cached(0, AllocTag::kViews, cls), 0u);
  EXPECT_EQ(alloc.shard_cached(1, AllocTag::kViews, cls),
            InternalAlloc::kChunkBytes / 64);
  EXPECT_TRUE(alloc.leak_report().clean);
}

// ---------------------------------------------------------------------------
// Rewired consumers
// ---------------------------------------------------------------------------

TEST(InternalAllocConsumers, HeapSpawnFramesUseTheFramesTag) {
  auto& alloc = InternalAlloc::instance();
  alloc.stats_sync();
  const auto before = alloc.tag_stats(AllocTag::kFrames);
  auto* frame = new cilkm::rt::SpawnFrame();
  alloc.stats_sync();
  const auto during = alloc.tag_stats(AllocTag::kFrames);
  EXPECT_EQ(during.allocs, before.allocs + 1);
  EXPECT_EQ(during.live_blocks, before.live_blocks + 1);
  delete frame;
  alloc.stats_sync();
  EXPECT_EQ(alloc.tag_stats(AllocTag::kFrames).live_blocks,
            before.live_blocks);
}

TEST(InternalAllocConsumers, HyperMapTablesUseTheHypermapTag) {
  auto& alloc = InternalAlloc::instance();
  alloc.stats_sync();
  const auto before = alloc.tag_stats(AllocTag::kHypermapNodes);
  {
    cilkm::hypermap::HyperMap map;
    int keys[100];
    for (int& k : keys) map.insert(&k, &k, nullptr);  // forces expansions
    alloc.stats_sync();
    EXPECT_GT(alloc.tag_stats(AllocTag::kHypermapNodes).allocs,
              before.allocs);
    EXPECT_GT(alloc.tag_stats(AllocTag::kHypermapNodes).live_blocks,
              before.live_blocks);
  }
  alloc.stats_sync();
  EXPECT_EQ(alloc.tag_stats(AllocTag::kHypermapNodes).live_blocks,
            before.live_blocks);
}

TEST(InternalAllocConsumers, StackPoolTrimsBeyondPerNodeHighWater) {
  const Topology topo = Topology::flat(4);  // one shard
  cilkm::rt::StackPool pool(&topo, /*max_cached_per_node=*/2);
  ASSERT_EQ(pool.num_shards(), 1u);

  std::vector<cilkm::rt::Fiber*> fibers;
  for (int i = 0; i < 5; ++i) fibers.push_back(pool.acquire());
  EXPECT_EQ(pool.total_created(), 5u);
  for (auto* f : fibers) pool.release(f);  // no local cache: straight to shard
  // The shard keeps at most the high-water count; the rest were unmapped.
  EXPECT_EQ(pool.cached(0), 2u);
  // Re-acquiring two comes from the cache, the third is fresh.
  cilkm::rt::Fiber* a = pool.acquire();
  cilkm::rt::Fiber* b = pool.acquire();
  cilkm::rt::Fiber* c = pool.acquire();
  EXPECT_EQ(pool.total_created(), 6u);
  pool.release(a);
  pool.release(b);
  pool.release(c);
}

// ---------------------------------------------------------------------------
// DPRNG-driven property: random view merge/collapse orders keep the books
// balanced. A random fork-join DAG creates views on whichever workers steal
// its strands and merges/destroys them wherever joins land; whatever order
// the DAG induces, every policy must return the kViews ledger to its
// starting point once the reducers are gone.
// ---------------------------------------------------------------------------

struct MergeFuzzShape {
  std::uint64_t seed;
  unsigned max_depth;
};

template <typename Policy>
void run_merge_fuzz(const MergeFuzzShape& shape, unsigned workers) {
  struct Node {
    static void walk(cilkm::reducer<cilkm::string_concat, Policy>* cat,
                     cilkm::reducer_opadd<long, Policy>* sum,
                     const MergeFuzzShape& shape, std::uint64_t path,
                     unsigned depth) {
      std::uint64_t state = shape.seed ^ (path * 0x9e3779b97f4a7c15ULL);
      const std::uint64_t r = cilkm::splitmix64(state);
      if (depth >= shape.max_depth || r % 5 == 0) {
        cat->view() += static_cast<char>('a' + r % 26);
        *(*sum) += static_cast<long>(r % 100);
        if (r % 7 == 0) std::this_thread::yield();  // vary steal timing
        return;
      }
      cilkm::fork2join(
          [&] { walk(cat, sum, shape, path * 2 + 1, depth + 1); },
          [&] { walk(cat, sum, shape, path * 2 + 2, depth + 1); });
    }
  };

  auto& alloc = InternalAlloc::instance();
  alloc.stats_sync();
  const auto views_before = alloc.tag_stats(AllocTag::kViews).live_blocks;
  {
    cilkm::reducer<cilkm::string_concat, Policy> cat;
    cilkm::reducer_opadd<long, Policy> sum;
    cilkm::run(workers,
               [&] { Node::walk(&cat, &sum, shape, 0, 0); });
    EXPECT_FALSE(cat.get_value().empty());
  }
  // Every view the run created — ambient, stolen-branch, merged — is gone.
  // Worker magazines reconciled when the run's pool shut down; fold in this
  // thread's own deltas before comparing.
  alloc.stats_sync();
  EXPECT_EQ(alloc.tag_stats(AllocTag::kViews).live_blocks, views_before);
}

class MergeOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(MergeOrderProperty, AllPoliciesKeepViewLedgerBalanced) {
  SCOPED_TRACE(cilkm::test::seed_trace());
  const MergeFuzzShape shape{
      cilkm::test::derived_seed(100 + static_cast<std::uint64_t>(GetParam())),
      9};
  for (const unsigned workers : {2u, 4u}) {
    run_merge_fuzz<cilkm::mm_policy>(shape, workers);
    run_merge_fuzz<cilkm::hypermap_policy>(shape, workers);
    run_merge_fuzz<cilkm::flat_policy>(shape, workers);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergeOrderProperty, ::testing::Range(0, 6));

}  // namespace
