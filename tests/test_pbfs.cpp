// PBFS integration tests: parallel BFS distances must equal serial BFS on
// every generator, under both reducer mechanisms and several worker counts.
#include <gtest/gtest.h>

#include <tuple>

#include "pbfs/graph.hpp"
#include "pbfs/pbfs.hpp"
#include "runtime/api.hpp"

namespace {

using namespace cilkm::pbfs;

TEST(Graph, FromEdgesBuildsSymmetricCsr) {
  const std::vector<std::pair<Vertex, Vertex>> edges{{0, 1}, {1, 2}, {0, 2}};
  const Graph g = Graph::from_edges(4, edges);
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 6u);  // symmetrised
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(Graph, GeneratorsProduceRequestedShapes) {
  const Graph u = uniform_random(1000, 5000, 1);
  EXPECT_EQ(u.num_vertices(), 1000u);
  EXPECT_EQ(u.num_edges(), 10000u);

  const Graph r = rmat(10, 4000, 0.45, 0.22, 0.22, 2);
  EXPECT_EQ(r.num_vertices(), 1024u);
  EXPECT_EQ(r.num_edges(), 8000u);

  const Graph g3 = grid3d(10);
  EXPECT_EQ(g3.num_vertices(), 1000u);
  // 3 * side^2 * (side-1) undirected edges, stored both ways.
  EXPECT_EQ(g3.num_edges(), 2u * 3u * 100u * 9u);
}

TEST(Graph, RmatDegreesAreSkewed) {
  const Graph r = rmat(12, 40000, 0.55, 0.2, 0.2, 3);
  std::uint32_t max_deg = 0;
  std::uint64_t total = 0;
  for (Vertex v = 0; v < r.num_vertices(); ++v) {
    max_deg = std::max(max_deg, r.degree(v));
    total += r.degree(v);
  }
  const double avg = static_cast<double>(total) / r.num_vertices();
  EXPECT_GT(max_deg, 20 * avg);  // power-law hubs
}

TEST(SerialBfs, HandLineGraph) {
  // 0-1-2-3: distances are the indices.
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto result = serial_bfs(g, 0);
  EXPECT_EQ(result.dist, (std::vector<Vertex>{0, 1, 2, 3}));
  EXPECT_EQ(result.num_layers, 4u);
}

TEST(SerialBfs, DisconnectedVerticesStayUnreached) {
  const Graph g = Graph::from_edges(5, {{0, 1}, {3, 4}});
  const auto result = serial_bfs(g, 0);
  EXPECT_EQ(result.dist[2], kUnreached);
  EXPECT_EQ(result.dist[3], kUnreached);
  EXPECT_EQ(result.dist[1], 1u);
}

struct PbfsParams {
  const char* kind;
  unsigned workers;
};

class PbfsMatchesSerial : public ::testing::TestWithParam<PbfsParams> {
 protected:
  Graph make_graph() const {
    const std::string kind = GetParam().kind;
    if (kind == "uniform") return uniform_random(20000, 100000, 7);
    if (kind == "rmat") return rmat(14, 80000, 0.45, 0.22, 0.22, 8);
    if (kind == "grid") return grid3d(22);
    if (kind == "sparse") return uniform_random(30000, 25000, 9);
    return grid3d(8);
  }
};

TEST_P(PbfsMatchesSerial, MemoryMappedPolicy) {
  const Graph g = make_graph();
  const auto expect = serial_bfs(g, 0);
  BfsResult got;
  cilkm::run(GetParam().workers,
             [&] { got = pbfs<cilkm::mm_policy>(g, 0); });
  EXPECT_EQ(got.dist, expect.dist);
  EXPECT_EQ(got.num_layers, expect.num_layers);
}

TEST_P(PbfsMatchesSerial, HypermapPolicy) {
  const Graph g = make_graph();
  const auto expect = serial_bfs(g, 0);
  BfsResult got;
  cilkm::run(GetParam().workers,
             [&] { got = pbfs<cilkm::hypermap_policy>(g, 0); });
  EXPECT_EQ(got.dist, expect.dist);
  EXPECT_EQ(got.num_layers, expect.num_layers);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PbfsMatchesSerial,
    ::testing::Values(PbfsParams{"uniform", 1}, PbfsParams{"uniform", 4},
                      PbfsParams{"rmat", 1}, PbfsParams{"rmat", 4},
                      PbfsParams{"rmat", 8}, PbfsParams{"grid", 2},
                      PbfsParams{"grid", 4}, PbfsParams{"sparse", 4}));

TEST(Pbfs, WorksOutsideSchedulerServially) {
  const Graph g = uniform_random(5000, 20000, 11);
  const auto expect = serial_bfs(g, 0);
  const auto got = pbfs<cilkm::mm_policy>(g, 0);  // serial fallback path
  EXPECT_EQ(got.dist, expect.dist);
}

TEST(Pbfs, CountsReducerLookups) {
  const Graph g = grid3d(16);
  BfsResult got;
  cilkm::run(2, [&] { got = pbfs<cilkm::mm_policy>(g, 0); });
  EXPECT_GT(got.reducer_lookups, 0u);
  // Lookups are per chunk, not per edge — orders of magnitude below |E|
  // (the paper's Figure 10(b) lookup counts are small for this reason).
  EXPECT_LT(got.reducer_lookups, g.num_edges() / 4);
}

TEST(Pbfs, PaperSuiteSpecsAreGenerable) {
  // Tiny-scale sanity pass over the Figure 10(b) stand-ins.
  for (const auto& spec : paper_graph_suite(/*shrink=*/256)) {
    const Graph g = generate(spec);
    EXPECT_GT(g.num_vertices(), 0u) << spec.name;
    EXPECT_GT(g.num_edges(), 0u) << spec.name;
    const auto result = serial_bfs(g, 0);
    EXPECT_GT(result.num_layers, 0u) << spec.name;
  }
}

}  // namespace
