// Death tests for release-enforced preconditions (CILKM_CHECK, active even
// with NDEBUG): the deque's spawn-depth overflow and flat-registry id
// exhaustion. The HyperMap duplicate-insert death test lives with the other
// hypermap tests (test_hypermap.cpp). Each EXPECT_DEATH body runs in a
// forked child, so exhausting a process-wide singleton there leaves this
// process untouched.
#include <gtest/gtest.h>

#include <memory>

#include "runtime/deque.hpp"
#include "runtime/frame.hpp"
#include "views/flat_registry.hpp"

namespace {

TEST(DequeDeathTest, OverflowOnSpawnDepthBeyondCapacity) {
  // Deque is ~512 KiB of atomics; keep it off the test's stack.
  auto deque = std::make_unique<cilkm::rt::Deque>();
  cilkm::rt::SpawnFrame frame;
  EXPECT_DEATH(
      {
        for (std::size_t i = 0; i <= cilkm::rt::Deque::kCapacity; ++i) {
          deque->push(&frame);
        }
      },
      "deque overflow");
}

TEST(FlatRegistryDeathTest, IdExhaustionIsCaught) {
  using cilkm::views::FlatIdAllocator;
  using cilkm::views::kMaxFlatIds;
  // The child inherits whatever ids the parent already handed out, so
  // kMaxFlatIds + 1 fresh allocations (never freed) must hit the ceiling.
  EXPECT_DEATH(
      {
        auto& allocator = FlatIdAllocator::instance();
        for (std::uint32_t i = 0; i <= kMaxFlatIds; ++i) {
          allocator.allocate();
        }
      },
      "flat reducer ids exhausted");
}

}  // namespace
