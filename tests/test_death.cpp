// Death tests for the hard aborts that remain AFTER the graceful-degradation
// paths: the run watchdog (a stalled epoch dumps diagnostics and aborts
// instead of hanging) and the assert-context hook (aborts carry the worker
// id and the failing strand's pedigree). The former abort sites for deque
// overflow and flat-id exhaustion are gone — those now degrade (see
// test_chaos.cpp). The HyperMap duplicate-insert death test lives with the
// other hypermap tests (test_hypermap.cpp). Each EXPECT_DEATH body runs in
// a forked child, so aborting a process-wide singleton there leaves this
// process untouched.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "runtime/api.hpp"
#include "runtime/worker.hpp"
#include "util/assert.hpp"

// Death tests fork; under TSan the forked child of a threaded parent is not
// reliably instrumentable (and the watchdog's mid-run metrics snapshot is a
// deliberate best-effort race), so skip the whole file there.
#if defined(__SANITIZE_THREAD__)
#define CILKM_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define CILKM_TEST_TSAN 1
#endif
#endif

namespace {

#ifdef CILKM_TEST_TSAN
#define CILKM_SKIP_UNDER_TSAN() \
  GTEST_SKIP() << "death tests are skipped under ThreadSanitizer"
#else
#define CILKM_SKIP_UNDER_TSAN() (void)0
#endif

TEST(WatchdogDeathTest, StalledRunDumpsAndAborts) {
  CILKM_SKIP_UNDER_TSAN();
  // The child creates worker threads, so the fork-based default style is
  // unsafe; threadsafe re-executes the test binary instead.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        cilkm::SchedulerOptions so;
        so.watchdog_ms = 100;
        cilkm::Scheduler sched(1, so);
        // A root strand that blocks without spawning makes no scheduling
        // progress: the watchdog must dump state and abort rather than let
        // run() wait forever.
        sched.run([] {
          std::this_thread::sleep_for(std::chrono::seconds(30));
        });
      },
      "run watchdog: no scheduling progress");
}

TEST(AssertContextDeathTest, WorkerAbortCarriesIdAndPedigree) {
  CILKM_SKIP_UNDER_TSAN();
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        cilkm::Scheduler sched(2);
        sched.run([] {
          cilkm::fork2join(
              [] {
                cilkm::fork2join([] { CILKM_CHECK(false, "forced failure"); },
                                 [] {});
              },
              [] {});
        });
      },
      "on worker [0-9]+, pedigree \\(root->leaf\\):");
}

TEST(AssertContextDeathTest, ExternalThreadAbortSaysSo) {
  CILKM_SKIP_UNDER_TSAN();
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        cilkm::rt::install_assert_context();
        CILKM_CHECK(false, "forced failure outside any worker");
      },
      "on an external thread \\(no worker\\)");
}

}  // namespace
