// Software-TLMM subsystem tests: the kernel-side semantics of paper
// Section 4 — page descriptors (sys_palloc/sys_pfree), per-thread root page
// directories, sys_pmap with PD_NULL unmapping, same-VA/different-frame
// isolation, shared-region sharing — plus the fast user-space region
// emulation the production reducer path uses.
#include <gtest/gtest.h>

#include <array>
#include <thread>
#include <vector>

#include "tlmm/address_space.hpp"
#include "tlmm/page_descriptor.hpp"
#include "tlmm/region.hpp"

namespace {

using namespace cilkm::tlmm;

TEST(PageDescriptors, AllocateFreeReuse) {
  PageDescriptorManager pdm;
  const std::uint32_t pd1 = pdm.palloc();
  const std::uint32_t pd2 = pdm.palloc();
  EXPECT_NE(pd1, pd2);
  EXPECT_TRUE(pdm.is_live(pd1));
  EXPECT_EQ(pdm.live_count(), 2u);

  pdm.pfree(pd1);
  EXPECT_FALSE(pdm.is_live(pd1));
  EXPECT_EQ(pdm.live_count(), 1u);

  // Freed descriptors are recycled.
  const std::uint32_t pd3 = pdm.palloc();
  EXPECT_EQ(pd3, pd1);
  EXPECT_TRUE(pdm.is_live(pd3));
}

TEST(PageDescriptors, FreshPagesAreZeroed) {
  PageDescriptorManager pdm;
  const std::uint32_t pd = pdm.palloc();
  pdm.frame(pd)->data[17] = std::byte{0xab};
  pdm.pfree(pd);
  const std::uint32_t pd2 = pdm.palloc();
  ASSERT_EQ(pd2, pd);
  EXPECT_EQ(pdm.frame(pd2)->data[17], std::byte{0});
}

TEST(PageDescriptors, ConcurrentAllocation) {
  PageDescriptorManager pdm;
  constexpr int kThreads = 8, kPer = 200;
  std::vector<std::vector<std::uint32_t>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pdm, &got, t] {
      for (int i = 0; i < kPer; ++i) got[t].push_back(pdm.palloc());
    });
  }
  for (auto& th : threads) th.join();
  std::vector<std::uint32_t> all;
  for (auto& v : got) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::unique(all.begin(), all.end()), all.end());
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kPer));
}

class AddressSpaceTest : public ::testing::Test {
 protected:
  PageDescriptorManager pdm;
  AddressSpace as{pdm};
};

TEST_F(AddressSpaceTest, SameVirtualAddressDifferentFramesPerThread) {
  // The defining TLMM property (paper Figure 3): one virtual address, a
  // different physical page in each thread.
  as.attach_thread(1);
  as.attach_thread(2);
  const std::uint32_t pd_a = pdm.palloc();
  const std::uint32_t pd_b = pdm.palloc();
  const std::uint64_t va = 16 * kPageSize;
  const std::uint32_t map_a[] = {pd_a};
  const std::uint32_t map_b[] = {pd_b};
  as.pmap(1, va, map_a);
  as.pmap(2, va, map_b);

  as.write<int>(1, va, 111);
  as.write<int>(2, va, 222);
  EXPECT_EQ(as.read<int>(1, va), 111);
  EXPECT_EQ(as.read<int>(2, va), 222);
}

TEST_F(AddressSpaceTest, SharedRegionIsVisibleToAllThreads) {
  as.attach_thread(1);
  as.attach_thread(2);
  const std::uint32_t pd = pdm.palloc();
  const std::uint64_t heap_va = kTlmmRegionBytes + 42 * kPageSize;
  as.map_shared(heap_va, pd);
  as.write<long>(1, heap_va + 8, 0xbeef);
  EXPECT_EQ(as.read<long>(2, heap_va + 8), 0xbeef);

  // A thread attached later sees existing shared mappings too.
  as.attach_thread(3);
  EXPECT_EQ(as.read<long>(3, heap_va + 8), 0xbeef);
}

TEST_F(AddressSpaceTest, SharedDirectoriesPopulatedOnce) {
  as.attach_thread(1);
  as.attach_thread(2);
  const std::uint64_t heap_va = kTlmmRegionBytes;
  as.map_shared(heap_va, pdm.palloc());
  const std::size_t dirs_after_first = as.shared_directory_count();
  // Mapping a neighbouring page from "another thread's perspective" must
  // not replicate directories.
  as.map_shared(heap_va + kPageSize, pdm.palloc());
  EXPECT_EQ(as.shared_directory_count(), dirs_after_first);
}

TEST_F(AddressSpaceTest, PmapMapsContiguousRangeFromDescriptorArray) {
  as.attach_thread(7);
  std::array<std::uint32_t, 4> pds{};
  for (auto& pd : pds) pd = pdm.palloc();
  const std::uint64_t base = 128 * kPageSize;
  as.pmap(7, base, pds);
  for (std::size_t i = 0; i < pds.size(); ++i) {
    as.write<std::uint32_t>(7, base + i * kPageSize, static_cast<std::uint32_t>(i));
  }
  for (std::size_t i = 0; i < pds.size(); ++i) {
    // Same data is reachable through the descriptor's frame directly.
    std::uint32_t through_frame;
    __builtin_memcpy(&through_frame, pdm.frame(pds[i])->data.data(), 4);
    EXPECT_EQ(through_frame, i);
  }
}

TEST_F(AddressSpaceTest, PdNullRemovesMapping) {
  as.attach_thread(1);
  const std::uint32_t pd = pdm.palloc();
  const std::uint64_t va = 4 * kPageSize;
  const std::uint32_t map1[] = {pd};
  as.pmap(1, va, map1);
  EXPECT_NE(as.translate(1, va), nullptr);
  const std::uint32_t unmap[] = {kPdNull};
  as.pmap(1, va, unmap);
  EXPECT_EQ(as.translate(1, va), nullptr);
}

TEST_F(AddressSpaceTest, UnmappedAddressesTranslateToNull) {
  as.attach_thread(1);
  EXPECT_EQ(as.translate(1, 0), nullptr);
  EXPECT_EQ(as.translate(1, kTlmmRegionBytes - kPageSize), nullptr);
  EXPECT_EQ(as.translate(1, kTlmmRegionBytes + (1ull << 40)), nullptr);
}

TEST_F(AddressSpaceTest, ViewTransferalThroughPageDescriptors) {
  // The paper's "mapping strategy" for view transferal: worker 1 publishes
  // the descriptors of its TLMM pages; worker 2 maps them into its own TLMM
  // region and reads worker 1's data at its own addresses.
  as.attach_thread(1);
  as.attach_thread(2);
  const std::uint32_t pd = pdm.palloc();
  const std::uint64_t va1 = 8 * kPageSize, va2 = 200 * kPageSize;
  const std::uint32_t map[] = {pd};
  as.pmap(1, va1, map);
  as.write<int>(1, va1, 777);
  as.pmap(2, va2, map);  // same physical page, different thread + address
  EXPECT_EQ(as.read<int>(2, va2), 777);
}

TEST_F(AddressSpaceTest, DetachAndReattach) {
  as.attach_thread(5);
  const std::uint32_t pd = pdm.palloc();
  const std::uint32_t map[] = {pd};
  as.pmap(5, 0, map);
  as.detach_thread(5);
  as.attach_thread(5);  // fresh root directory: TLMM region starts empty
  EXPECT_EQ(as.translate(5, 0), nullptr);
}

TEST(WorkerRegion, CapacityIsPageRoundedAndWritable) {
  WorkerRegion region(10000);
  EXPECT_EQ(region.capacity() % kPageSize, 0u);
  EXPECT_GE(region.capacity(), 10000u);
  region.at(0)[0] = std::byte{1};
  region.at(region.capacity() - 1)[0] = std::byte{2};
  EXPECT_EQ(region.base()[0], std::byte{1});
}

TEST(WorkerRegion, FreshRegionIsZeroFilled) {
  WorkerRegion region(1 << 20);
  for (std::size_t i = 0; i < (1u << 20); i += 4096) {
    EXPECT_EQ(region.base()[i], std::byte{0});
  }
}

TEST(WorkerRegion, TlsResolveUsesCurrentThreadsRegion) {
  WorkerRegion r1(1 << 16), r2(1 << 16);
  r1.base()[128] = std::byte{0x11};
  r2.base()[128] = std::byte{0x22};

  set_current_region(&r1);
  EXPECT_EQ(*resolve(128), std::byte{0x11});

  std::thread other([&] {
    set_current_region(&r2);
    // Same "address" (offset 128), different thread, different view — the
    // emulated TLMM property.
    EXPECT_EQ(*resolve(128), std::byte{0x22});
    set_current_region(nullptr);
  });
  other.join();

  EXPECT_EQ(*resolve(128), std::byte{0x11});
  set_current_region(nullptr);
}

}  // namespace
