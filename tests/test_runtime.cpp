// Scheduler / fork-join runtime tests: serial equivalence, nested
// parallelism, work stealing, parking and joining steals, exceptions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/api.hpp"

namespace {

using cilkm::fork2join;
using cilkm::parallel_for;
using cilkm::parallel_invoke;

TEST(Fork2Join, RunsBothBranchesSerially) {
  // Outside any scheduler: plain serial execution.
  std::vector<int> order;
  fork2join([&] { order.push_back(1); }, [&] { order.push_back(2); });
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Fork2Join, RunsBothBranchesOnOneWorker) {
  std::vector<int> order;
  cilkm::run(1, [&] {
    fork2join([&] { order.push_back(1); }, [&] { order.push_back(2); });
    order.push_back(3);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Fork2Join, SerialOrderIsPreservedOnOneWorker) {
  // With P=1 there are no steals, so execution must match the serial
  // elision exactly — the property the reducer protocol builds on.
  std::vector<int> order;
  cilkm::run(1, [&] {
    fork2join(
        [&] {
          order.push_back(1);
          fork2join([&] { order.push_back(2); }, [&] { order.push_back(3); });
          order.push_back(4);
        },
        [&] { order.push_back(5); });
    order.push_back(6);
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

std::uint64_t fib_serial(unsigned n) {
  return n < 2 ? n : fib_serial(n - 1) + fib_serial(n - 2);
}

std::uint64_t fib_parallel(unsigned n) {
  if (n < 2) return n;
  if (n < 10) return fib_serial(n);
  std::uint64_t a = 0, b = 0;
  fork2join([&] { a = fib_parallel(n - 1); }, [&] { b = fib_parallel(n - 2); });
  return a + b;
}

class FibTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(FibTest, MatchesSerialAcrossWorkerCounts) {
  const unsigned workers = GetParam();
  std::uint64_t result = 0;
  cilkm::run(workers, [&] { result = fib_parallel(27); });
  EXPECT_EQ(result, fib_serial(27));
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, FibTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr int kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  cilkm::run(4, [&] {
    parallel_for(0, kN, 64, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (int i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  std::atomic<int> count{0};
  cilkm::run(2, [&] {
    parallel_for(5, 5, 1, [&](std::int64_t) { count.fetch_add(1); });
    parallel_for(7, 8, 1, [&](std::int64_t i) {
      EXPECT_EQ(i, 7);
      count.fetch_add(1);
    });
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelInvoke, RunsAllInSerialOrderOnOneWorker) {
  std::vector<int> order;
  cilkm::run(1, [&] {
    parallel_invoke([&] { order.push_back(1); }, [&] { order.push_back(2); },
                    [&] { order.push_back(3); }, [&] { order.push_back(4); });
  });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Stealing, ForcedStealExecutesBothSidesConcurrently) {
  // The left branch blocks until the right branch runs — this only
  // terminates if a thief steals the continuation. Also exercises parking:
  // the left worker arrives at the join first and must park.
  std::atomic<bool> right_ran{false};
  cilkm::Scheduler sched(2);
  sched.run([&] {
    fork2join(
        [&] {
          while (!right_ran.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
        },
        [&] { right_ran.store(true, std::memory_order_release); });
  });
  EXPECT_TRUE(right_ran.load());
  EXPECT_GE(sched.total_steals(), 1u);
}

TEST(Stealing, JoiningStealResumesContinuationOnThief) {
  // Left side sleeps; thief finishes right side first in the common case,
  // then the victim arrives last and resumes without parking — or parks and
  // is resumed. Either way the continuation runs exactly once.
  std::atomic<int> continuation_runs{0};
  cilkm::Scheduler sched(2);
  for (int round = 0; round < 20; ++round) {
    sched.run([&] {
      fork2join([&] { std::this_thread::sleep_for(std::chrono::microseconds(100)); },
                [&] { std::this_thread::sleep_for(std::chrono::microseconds(200)); });
      continuation_runs.fetch_add(1);
    });
  }
  EXPECT_EQ(continuation_runs.load(), 20);
}

TEST(Stealing, DeepNestingUnderContention) {
  constexpr int kN = 1 << 12;
  std::vector<std::atomic<int>> hits(kN);
  cilkm::run(8, [&] {
    parallel_for(0, kN, 1, [&](std::int64_t i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    });
  });
  long total = 0;
  for (auto& h : hits) total += h.load();
  EXPECT_EQ(total, kN);
}

TEST(Exceptions, PropagatesFromRoot) {
  EXPECT_THROW(cilkm::run(2, [] { throw std::runtime_error("boom"); }),
               std::runtime_error);
}

TEST(Exceptions, PropagatesFromLeftBranch) {
  EXPECT_THROW(cilkm::run(2,
                          [] {
                            fork2join([] { throw std::logic_error("left"); },
                                      [] {});
                          }),
               std::logic_error);
}

TEST(Exceptions, PropagatesFromRightBranch) {
  EXPECT_THROW(cilkm::run(2,
                          [] {
                            fork2join([] {},
                                      [] { throw std::logic_error("right"); });
                          }),
               std::logic_error);
}

TEST(Exceptions, PropagatesFromStolenBranch) {
  std::atomic<bool> right_started{false};
  EXPECT_THROW(
      cilkm::run(2,
                 [&] {
                   fork2join(
                       [&] {
                         while (!right_started.load()) std::this_thread::yield();
                       },
                       [&] {
                         right_started.store(true);
                         throw std::runtime_error("stolen branch");
                       });
                 }),
      std::runtime_error);
}

TEST(Scheduler, ReusableAcrossRuns) {
  cilkm::Scheduler sched(4);
  for (int round = 0; round < 5; ++round) {
    std::atomic<long> sum{0};
    sched.run([&] {
      parallel_for(0, 1000, 16,
                   [&](std::int64_t i) { sum.fetch_add(i, std::memory_order_relaxed); });
    });
    EXPECT_EQ(sum.load(), 999L * 1000 / 2);
  }
}

TEST(Scheduler, AggregateStatsCountFibers) {
  cilkm::Scheduler sched(2);
  sched.reset_stats();
  sched.run([] {});
  const auto stats = sched.aggregate_stats();
  // At least the root fiber was launched.
  EXPECT_GE(stats[cilkm::StatCounter::kFibersAllocated], 1u);
}

TEST(Scheduler, ManyWorkersTinyWork) {
  for (unsigned p : {1u, 2u, 5u, 16u}) {
    std::atomic<int> x{0};
    cilkm::run(p, [&] { x.store(42); });
    EXPECT_EQ(x.load(), 42);
  }
}

}  // namespace
