// Property tests of the monoid laws for every monoid in the reducer
// library: identity (e ⊗ x = x ⊗ e = x) and associativity
// ((a ⊗ b) ⊗ c = a ⊗ (b ⊗ c)) over randomly generated values. The runtime
// guarantees serial-equivalent reducer results only for associative reduce
// operations, so these laws are the library's contract.
#include <gtest/gtest.h>

#include <list>
#include <string>
#include <vector>

#include "pbfs/bag.hpp"
#include "reducers/extras.hpp"
#include "reducers/monoids.hpp"
#include "util/rng.hpp"

namespace {

using cilkm::Xoshiro256;

// reduce() consumes its right argument, so law checks work on copies.
template <typename M>
typename M::value_type combine(const M& m, typename M::value_type a,
                               typename M::value_type b) {
  m.reduce(a, b);
  return a;
}

template <typename M, typename Gen>
void check_laws(const M& monoid, Gen&& gen, int rounds = 50) {
  for (int round = 0; round < rounds; ++round) {
    const auto a = gen(round * 3 + 0);
    const auto b = gen(round * 3 + 1);
    const auto c = gen(round * 3 + 2);

    // Identity laws.
    EXPECT_EQ(combine(monoid, monoid.identity(), a), a) << "e+x, round " << round;
    EXPECT_EQ(combine(monoid, a, monoid.identity()), a) << "x+e, round " << round;

    // Associativity.
    const auto left_first = combine(monoid, combine(monoid, a, b), c);
    const auto right_first = combine(monoid, a, combine(monoid, b, c));
    EXPECT_EQ(left_first, right_first) << "assoc, round " << round;
  }
}

std::uint64_t rnd(int i) {
  std::uint64_t s = static_cast<std::uint64_t>(i) + 12345;
  return cilkm::splitmix64(s);
}

TEST(MonoidLaws, OpAddIntegral) {
  check_laws(cilkm::op_add<std::uint64_t>{},
             [](int i) { return rnd(i); });
}

TEST(MonoidLaws, OpAddDoubleOnRepresentableValues) {
  // Doubles are associative only on exactly representable sums; use small
  // integers scaled by powers of two.
  check_laws(cilkm::op_add<double>{},
             [](int i) { return static_cast<double>(rnd(i) % 4096) * 0.25; });
}

TEST(MonoidLaws, OpMul) {
  // Stay in a range without wraparound sensitivity: wrap IS associative for
  // unsigned, so full-range values are fine too.
  check_laws(cilkm::op_mul<std::uint64_t>{}, [](int i) { return rnd(i); });
}

TEST(MonoidLaws, OpMinMax) {
  check_laws(cilkm::op_min<std::int64_t>{},
             [](int i) { return static_cast<std::int64_t>(rnd(i)); });
  check_laws(cilkm::op_max<std::int64_t>{},
             [](int i) { return static_cast<std::int64_t>(rnd(i)); });
}

TEST(MonoidLaws, Bitwise) {
  check_laws(cilkm::op_and<std::uint64_t>{}, [](int i) { return rnd(i); });
  check_laws(cilkm::op_or<std::uint64_t>{}, [](int i) { return rnd(i); });
  check_laws(cilkm::op_xor<std::uint64_t>{}, [](int i) { return rnd(i); });
}

TEST(MonoidLaws, StringConcatIsAssociativeNotCommutative) {
  auto gen = [](int i) {
    std::string s;
    for (std::uint64_t k = 0; k < rnd(i) % 8; ++k) {
      s += static_cast<char>('a' + (rnd(i + 1000 + static_cast<int>(k)) % 26));
    }
    return s;
  };
  check_laws(cilkm::string_concat{}, gen);
  // Sanity: the monoid is genuinely non-commutative (so the ordering tests
  // elsewhere actually prove something).
  EXPECT_NE(combine(cilkm::string_concat{}, std::string("ab"), std::string("cd")),
            combine(cilkm::string_concat{}, std::string("cd"), std::string("ab")));
}

TEST(MonoidLaws, ListAppendAndPrepend) {
  auto gen = [](int i) {
    std::list<int> l;
    for (std::uint64_t k = 0; k < rnd(i) % 6; ++k) {
      l.push_back(static_cast<int>(rnd(i + 500 + static_cast<int>(k)) % 100));
    }
    return l;
  };
  check_laws(cilkm::list_append<int>{}, gen);
  check_laws(cilkm::list_prepend<int>{}, gen);
  // prepend(a, b) == append(b, a).
  const auto a = gen(1), b = gen(2);
  EXPECT_EQ(combine(cilkm::list_prepend<int>{}, a, b),
            combine(cilkm::list_append<int>{}, b, a));
}

TEST(MonoidLaws, VectorConcat) {
  auto gen = [](int i) {
    std::vector<int> v;
    for (std::uint64_t k = 0; k < rnd(i) % 6; ++k) {
      v.push_back(static_cast<int>(rnd(i + 700 + static_cast<int>(k))));
    }
    return v;
  };
  check_laws(cilkm::vector_concat<int>{}, gen);
}

TEST(MonoidLaws, MapUnionWithAddCombiner) {
  struct Add {
    void operator()(std::uint64_t& into, const std::uint64_t& from) const {
      into += from;
    }
  };
  auto gen = [](int i) {
    std::unordered_map<std::string, std::uint64_t> m;
    for (std::uint64_t k = 0; k < rnd(i) % 5; ++k) {
      m["k" + std::to_string(rnd(i + 300 + static_cast<int>(k)) % 4)] =
          rnd(i + 900 + static_cast<int>(k)) % 100;
    }
    return m;
  };
  check_laws(cilkm::map_union<std::string, std::uint64_t, Add>{}, gen);
}

TEST(MonoidLaws, MinIndexMaxIndexTieBreakIsAssociative) {
  auto gen = [](int i) {
    cilkm::indexed_value<int, int> v;
    v.valid = rnd(i) % 5 != 0;  // include invalid (identity-like) values
    if (!v.valid) return v;     // canonical identity: zeroed fields
    v.index = static_cast<int>(rnd(i + 1) % 1000);
    v.value = static_cast<int>(rnd(i + 2) % 10);  // many ties
    return v;
  };
  check_laws(cilkm::op_min_index<int, int>{}, gen, 200);
  check_laws(cilkm::op_max_index<int, int>{}, gen, 200);
}

TEST(MonoidLaws, BagMergeOnSizes) {
  // Bags are move-only and structurally unordered: check identity and
  // associativity on sizes and multiset contents.
  cilkm::pbfs::bag_merge<int> monoid;
  Xoshiro256 rng(77);
  for (int round = 0; round < 20; ++round) {
    auto make = [&](int n) {
      cilkm::pbfs::Bag<int> bag;
      for (int i = 0; i < n; ++i) bag.insert(static_cast<int>(rng.below(50)));
      return bag;
    };
    const int na = static_cast<int>(rng.below(100));
    const int nb = static_cast<int>(rng.below(100));
    const int nc = static_cast<int>(rng.below(100));

    auto ab_c = make(na);
    {
      auto b = make(nb);
      monoid.reduce(ab_c, b);
      auto c = make(nc);
      monoid.reduce(ab_c, c);
    }
    EXPECT_EQ(ab_c.size(), static_cast<std::uint64_t>(na + nb + nc));

    auto e = monoid.identity();
    auto x = make(7);
    monoid.reduce(e, x);
    EXPECT_EQ(e.size(), 7u);
  }
}

}  // namespace
