// Property-based tests: random fork-join DAGs performing random updates on
// a set of reducers must produce bit-identical results to a serial replay of
// the same update sequence — for associative, non-commutative monoids, under
// every worker count. This is the strongest end-to-end statement of the
// paper's reducer semantics.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace {

using cilkm::fork2join;

// A reproducible random computation tree. Leaves perform updates; interior
// nodes fork. Every node derives its own RNG from (seed, path), so the tree
// shape and the updates are identical regardless of scheduling.
struct TreeShape {
  std::uint64_t seed;
  unsigned max_depth;
  unsigned updates_per_leaf;
};

template <typename Policy>
struct Harness {
  cilkm::reducer<cilkm::string_concat, Policy>* cat;
  std::vector<cilkm::reducer_opadd<long, Policy>*> sums;
  TreeShape shape;
  bool jitter;

  void leaf(std::uint64_t state) const {
    for (unsigned i = 0; i < shape.updates_per_leaf; ++i) {
      const std::uint64_t r = cilkm::splitmix64(state);
      cat->view() += static_cast<char>('a' + r % 26);
      *(*sums[r % sums.size()]) += static_cast<long>(r % 1000);
      if (jitter && r % 13 == 0) std::this_thread::yield();
    }
  }

  void node(std::uint64_t path, unsigned depth) const {
    std::uint64_t state = shape.seed ^ (path * 0x9e3779b97f4a7c15ULL);
    const std::uint64_t r = cilkm::splitmix64(state);
    if (depth >= shape.max_depth || r % 4 == 0) {
      leaf(state);
      return;
    }
    fork2join([&] { node(path * 2 + 1, depth + 1); },
              [&] { node(path * 2 + 2, depth + 1); });
  }
};

// Serial oracle: same traversal, no scheduler.
struct Oracle {
  std::string cat;
  std::vector<long> sums;
  TreeShape shape;

  void leaf(std::uint64_t state) {
    for (unsigned i = 0; i < shape.updates_per_leaf; ++i) {
      const std::uint64_t r = cilkm::splitmix64(state);
      cat += static_cast<char>('a' + r % 26);
      sums[r % sums.size()] += static_cast<long>(r % 1000);
    }
  }

  void node(std::uint64_t path, unsigned depth) {
    std::uint64_t state = shape.seed ^ (path * 0x9e3779b97f4a7c15ULL);
    const std::uint64_t r = cilkm::splitmix64(state);
    if (depth >= shape.max_depth || r % 4 == 0) {
      leaf(state);
      return;
    }
    node(path * 2 + 1, depth + 1);
    node(path * 2 + 2, depth + 1);
  }
};

struct Params {
  std::uint64_t seed;
  unsigned workers;
  unsigned depth;
  bool jitter;
};

class RandomDagProperty : public ::testing::TestWithParam<Params> {};

template <typename Policy>
void run_property(const Params& p) {
  constexpr unsigned kNumSums = 7;
  const TreeShape shape{p.seed, p.depth, 4};

  Oracle oracle{{}, std::vector<long>(kNumSums, 0), shape};
  oracle.node(0, 0);

  cilkm::reducer<cilkm::string_concat, Policy> cat;
  std::vector<std::unique_ptr<cilkm::reducer_opadd<long, Policy>>> sums;
  std::vector<cilkm::reducer_opadd<long, Policy>*> sum_ptrs;
  for (unsigned i = 0; i < kNumSums; ++i) {
    sums.push_back(std::make_unique<cilkm::reducer_opadd<long, Policy>>());
    sum_ptrs.push_back(sums.back().get());
  }
  Harness<Policy> harness{&cat, sum_ptrs, shape, p.jitter};
  cilkm::run(p.workers, [&] { harness.node(0, 0); });

  EXPECT_EQ(cat.get_value(), oracle.cat);
  for (unsigned i = 0; i < kNumSums; ++i) {
    EXPECT_EQ(sums[i]->get_value(), oracle.sums[i]) << "sum " << i;
  }
}

TEST_P(RandomDagProperty, MemoryMappedMatchesSerialOracle) {
  SCOPED_TRACE(cilkm::test::seed_trace());
  run_property<cilkm::mm_policy>(GetParam());
}

TEST_P(RandomDagProperty, HypermapMatchesSerialOracle) {
  SCOPED_TRACE(cilkm::test::seed_trace());
  run_property<cilkm::hypermap_policy>(GetParam());
}

TEST_P(RandomDagProperty, FlatMatchesSerialOracle) {
  SCOPED_TRACE(cilkm::test::seed_trace());
  run_property<cilkm::flat_policy>(GetParam());
}

// Tree seeds are drawn from the CILKM_TEST_SEED stream (fixed default, env
// overridable), so a failure is replayable from the printed base seed.
std::vector<Params> make_params() {
  std::vector<Params> out;
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    for (const std::uint64_t i : {0ull, 1ull, 2ull}) {
      out.push_back({cilkm::test::derived_seed(i), workers, 9, false});
    }
    // Deeper tree with jitter.
    out.push_back({cilkm::test::derived_seed(3), workers, 11, true});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomDagProperty,
                         ::testing::ValuesIn(make_params()));

// Repeat one contended configuration many times: scheduling differs every
// round, output must not.
TEST(RandomDagStress, RepeatedRunsAreIdentical) {
  SCOPED_TRACE(cilkm::test::seed_trace());
  const Params p{cilkm::test::derived_seed(4), 4, 10, true};
  const TreeShape shape{p.seed, p.depth, 4};
  Oracle oracle{{}, std::vector<long>(7, 0), shape};
  oracle.node(0, 0);
  for (int round = 0; round < 10; ++round) {
    run_property<cilkm::mm_policy>(p);
  }
}

}  // namespace
