// Direct unit tests of the view-transferal and hypermerge engine (paper
// Sections 3 and 7) through the ViewStore layer, without any scheduling: a
// fake monoid records every reduce call so operand ORDER — the heart of
// reducer correctness for non-commutative monoids — is asserted exactly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "runtime/worker.hpp"
#include "tlmm/region.hpp"
#include "views/view_store.hpp"

namespace spa {
inline std::uint64_t offset(std::uint32_t page, std::uint32_t idx) {
  return cilkm::spa::slot_offset(page, idx);
}
}  // namespace spa

namespace {

using cilkm::ViewOps;
using cilkm::rt::Scheduler;
using cilkm::rt::ViewSetDeposit;
using cilkm::rt::Worker;

// A "view" carrying a string; reduce concatenates — order-revealing.
struct StrView {
  std::string text;
};

struct FakeReducer {
  std::string collapsed;  // where collapse() folds into
  ViewOps ops{};

  FakeReducer() {
    ops.create_identity = [](void*) -> void* { return new StrView{}; };
    ops.reduce = [](void*, void* l, void* r) {
      static_cast<StrView*>(l)->text += static_cast<StrView*>(r)->text;
      delete static_cast<StrView*>(r);
    };
    ops.destroy = [](void*, void* v) { delete static_cast<StrView*>(v); };
    ops.collapse = [](void* self, void* v) {
      static_cast<FakeReducer*>(self)->collapsed +=
          static_cast<StrView*>(v)->text;
      delete static_cast<StrView*>(v);
    };
    ops.reducer = this;
  }
};

class ViewMergeTest : public ::testing::Test {
 protected:
  // Two workers from a scheduler that never runs: we drive the view engine
  // by hand through each worker's ViewStoreSet.
  ViewMergeTest() : sched_(2) {}

  ~ViewMergeTest() override { cilkm::tlmm::set_current_region(nullptr); }

  Worker& w(unsigned i) { return sched_.worker(i); }

  void install(Worker& worker, FakeReducer& r, std::uint64_t offset,
               const std::string& text) {
    worker.views().spa().install(offset, new StrView{text}, &r.ops);
  }

  std::string spa_text(Worker& worker, std::uint64_t offset) {
    auto* slot = worker.views().spa().slot_at(offset);
    return slot->empty() ? std::string{}
                         : static_cast<StrView*>(slot->view)->text;
  }

  Scheduler sched_;
};

TEST_F(ViewMergeTest, DepositMovesViewsAndZeroesPrivateMap) {
  FakeReducer r;
  install(w(0), r, spa::offset(0, 5), "A");
  ViewSetDeposit dep;
  w(0).views().deposit_ambient(&dep);
  EXPECT_TRUE(w(0).views().empty());
  ASSERT_EQ(dep.spa.size(), 1u);
  EXPECT_EQ(dep.spa[0].page_index, 0u);
  EXPECT_EQ(dep.spa[0].page->num_valid, 1u);
  // Clean up: install back and collapse.
  w(0).views().install_deposit(&dep);
  w(0).views().collapse_into_leftmosts();
  EXPECT_EQ(r.collapsed, "A");
}

TEST_F(ViewMergeTest, MergeLeftPutsDepositBeforeAmbient) {
  FakeReducer r;
  const auto off = spa::offset(0, 7);
  // Worker 0 (victim, serially earlier) deposits "L"; worker 1 (thief)
  // holds ambient "R". merge_deposit_left must produce "LR".
  install(w(0), r, off, "L");
  ViewSetDeposit dep;
  w(0).views().deposit_ambient(&dep);

  install(w(1), r, off, "R");
  w(1).views().merge_deposit_left(&dep);
  EXPECT_EQ(spa_text(w(1), off), "LR");
  w(1).views().collapse_into_leftmosts();
  EXPECT_EQ(r.collapsed, "LR");
}

TEST_F(ViewMergeTest, MergeRightPutsDepositAfterAmbient) {
  FakeReducer r;
  const auto off = spa::offset(0, 9);
  install(w(1), r, off, "R");
  ViewSetDeposit dep;
  w(1).views().deposit_ambient(&dep);

  install(w(0), r, off, "L");
  w(0).views().merge_deposit_right(&dep);
  EXPECT_EQ(spa_text(w(0), off), "LR");
  w(0).views().collapse_into_leftmosts();
  EXPECT_EQ(r.collapsed, "LR");
}

TEST_F(ViewMergeTest, MergeAdoptsViewsAbsentFromAmbient) {
  FakeReducer r1, r2;
  const auto off1 = spa::offset(0, 1), off2 = spa::offset(0, 2);
  install(w(0), r1, off1, "X");
  install(w(0), r2, off2, "Y");
  ViewSetDeposit dep;
  w(0).views().deposit_ambient(&dep);

  // Ambient has a view only for r1.
  install(w(1), r1, off1, "Z");
  w(1).views().merge_deposit_left(&dep);
  EXPECT_EQ(spa_text(w(1), off1), "XZ");
  EXPECT_EQ(spa_text(w(1), off2), "Y");  // adopted untouched
  w(1).views().collapse_into_leftmosts();
}

TEST_F(ViewMergeTest, DoubleDepositInstallThenMergeRight) {
  // The victim-last join case: both sides deposited; the resumer reinstalls
  // the left deposit into its empty ambient, then merges the right one.
  FakeReducer r;
  const auto off = spa::offset(1, 3);  // second SPA page
  install(w(0), r, off, "A");
  ViewSetDeposit left;
  w(0).views().deposit_ambient(&left);

  install(w(0), r, off, "B");
  ViewSetDeposit right;
  w(0).views().deposit_ambient(&right);

  EXPECT_TRUE(w(0).views().empty());
  w(0).views().install_deposit(&left);
  w(0).views().merge_deposit_right(&right);
  EXPECT_EQ(spa_text(w(0), off), "AB");
  w(0).views().collapse_into_leftmosts();
  EXPECT_EQ(r.collapsed, "AB");
}

TEST_F(ViewMergeTest, HypermapDepositIsPointerSwitchAndOrderCorrect) {
  FakeReducer r;
  // Hypermap side of the same protocol.
  w(0).views().hypermap().install(&r, new StrView{"L"}, &r.ops);
  ViewSetDeposit dep;
  w(0).views().deposit_ambient(&dep);
  EXPECT_TRUE(w(0).views().hypermap().empty());
  EXPECT_EQ(dep.hmap.size(), 1u);

  w(1).views().hypermap().install(&r, new StrView{"R"}, &r.ops);
  w(1).views().merge_deposit_left(&dep);
  auto* entry = w(1).views().hypermap().lookup(&r);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(static_cast<StrView*>(entry->view)->text, "LR");
  w(1).views().collapse_into_leftmosts();
  EXPECT_EQ(r.collapsed, "LR");
}

TEST_F(ViewMergeTest, HypermapMergeIteratesSmallerMapBothDirections) {
  // Deposit larger than ambient triggers the swap optimisation; operand
  // order must survive it.
  FakeReducer rs[8];
  for (auto& r : rs) {
    w(0).views().hypermap().install(&r, new StrView{"l"}, &r.ops);
  }
  ViewSetDeposit dep;
  w(0).views().deposit_ambient(&dep);  // 8 entries

  w(1).views().hypermap().install(&rs[2], new StrView{"r"}, &rs[2].ops);
  w(1).views().merge_deposit_left(&dep);
  EXPECT_EQ(w(1).views().hypermap().map().size(), 8u);
  EXPECT_EQ(static_cast<StrView*>(
                w(1).views().hypermap().lookup(&rs[2])->view)->text,
            "lr");
  EXPECT_EQ(static_cast<StrView*>(
                w(1).views().hypermap().lookup(&rs[5])->view)->text,
            "l");
  w(1).views().collapse_into_leftmosts();
}

TEST_F(ViewMergeTest, HypermapMergeRightSurvivesSwapOptimisation) {
  // The swap path in the OTHER direction: a right-merged deposit larger
  // than the ambient map flips deposit_is_left inside the merge; the
  // result must still read ambient ⊗ deposit for the shared key.
  FakeReducer rs[8];
  // Thief-side deposit: 8 entries, all "r".
  for (auto& r : rs) {
    w(1).views().hypermap().install(&r, new StrView{"r"}, &r.ops);
  }
  ViewSetDeposit dep;
  w(1).views().deposit_ambient(&dep);
  ASSERT_EQ(dep.hmap.size(), 8u);

  // Victim ambient: a single serially-earlier "l" for rs[3].
  w(0).views().hypermap().install(&rs[3], new StrView{"l"}, &rs[3].ops);
  w(0).views().merge_deposit_right(&dep);

  EXPECT_EQ(w(0).views().hypermap().map().size(), 8u);
  EXPECT_EQ(static_cast<StrView*>(
                w(0).views().hypermap().lookup(&rs[3])->view)->text,
            "lr");
  EXPECT_EQ(static_cast<StrView*>(
                w(0).views().hypermap().lookup(&rs[0])->view)->text,
            "r");
  w(0).views().collapse_into_leftmosts();
  EXPECT_EQ(rs[3].collapsed, "lr");
  EXPECT_EQ(rs[0].collapsed, "r");
}

TEST_F(ViewMergeTest, ManyPagesTransferal) {
  // Views spanning several SPA pages transfer and merge page by page.
  FakeReducer r;
  std::vector<std::uint64_t> offsets;
  for (std::uint32_t page = 0; page < 5; ++page) {
    for (std::uint32_t idx = 0; idx < 3; ++idx) {
      const auto off = spa::offset(page, idx * 80);
      offsets.push_back(off);
      install(w(0), r, off, "p" + std::to_string(page));
    }
  }
  ViewSetDeposit dep;
  w(0).views().deposit_ambient(&dep);
  EXPECT_EQ(dep.spa.size(), 5u);

  w(1).views().merge_deposit_left(&dep);  // all adopted (empty ambient)
  for (const auto off : offsets) {
    EXPECT_FALSE(w(1).views().spa().slot_at(off)->empty());
  }
  w(1).views().collapse_into_leftmosts();
  EXPECT_TRUE(w(1).views().empty());
}

}  // namespace
