// Parameterized property sweeps: SPA page behaviour across the full range
// of occupancies, reducer correctness across the (workers × reducer-count)
// grid, and PBFS-vs-serial across every graph of the paper's Figure 10(b)
// stand-in suite.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "pbfs/pbfs.hpp"
#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "spa/spa_map.hpp"
#include "test_support.hpp"

namespace {

// ---------------------------------------------------------------------------
// SPA page occupancy sweep.
// ---------------------------------------------------------------------------

class SpaOccupancy : public ::testing::TestWithParam<unsigned> {};

TEST_P(SpaOccupancy, SequencingVisitsExactlyTheValidSet) {
  using namespace cilkm::spa;
  const unsigned fill = GetParam();
  SpaPage page;
  page.clear();
  static int dummy;
  std::set<std::uint32_t> expect;
  // Scatter the fill across the view array deterministically.
  for (unsigned i = 0; i < fill; ++i) {
    const auto idx = static_cast<std::uint32_t>((i * 101) % kViewsPerPage);
    if (expect.insert(idx).second) {
      page.views[idx] = {&dummy, nullptr};
      page.note_insert(idx);
    }
  }
  EXPECT_EQ(page.num_valid, expect.size());
  if (expect.size() > kLogCapacity) {
    EXPECT_EQ(page.num_logs, kLogsOverflowed);
  } else {
    EXPECT_EQ(page.num_logs, expect.size());
  }
  std::set<std::uint32_t> seen;
  page.for_each_valid([&](std::uint32_t idx, ViewSlot&) {
    EXPECT_TRUE(seen.insert(idx).second) << "visited twice: " << idx;
  });
  EXPECT_EQ(seen, expect);
}

INSTANTIATE_TEST_SUITE_P(FillLevels, SpaOccupancy,
                         ::testing::Values(0u, 1u, 2u, 7u, 60u, 119u, 120u,
                                           121u, 200u, 247u, 248u));

// ---------------------------------------------------------------------------
// (workers × reducer-count) correctness grid.
// ---------------------------------------------------------------------------

struct GridParam {
  unsigned workers;
  unsigned reducers;
};

class ReducerGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(ReducerGrid, SumsAreExactForBothMechanisms) {
  const auto [workers, n] = GetParam();
  std::vector<std::unique_ptr<cilkm::reducer_opadd<long, cilkm::mm_policy>>> mm(n);
  std::vector<std::unique_ptr<cilkm::reducer_opadd<long, cilkm::hypermap_policy>>>
      hm(n);
  for (unsigned i = 0; i < n; ++i) {
    mm[i] = std::make_unique<cilkm::reducer_opadd<long, cilkm::mm_policy>>();
    hm[i] = std::make_unique<cilkm::reducer_opadd<long, cilkm::hypermap_policy>>();
  }
  constexpr std::int64_t kIters = 20000;
  cilkm::run(workers, [&] {
    cilkm::parallel_for(0, kIters, 32, [&](std::int64_t i) {
      *(*mm[static_cast<std::size_t>(i) % n]) += 1;
      *(*hm[static_cast<std::size_t>(i) % n]) += 1;
    });
  });
  long mm_total = 0, hm_total = 0;
  for (unsigned i = 0; i < n; ++i) {
    mm_total += mm[i]->get_value();
    hm_total += hm[i]->get_value();
    EXPECT_EQ(mm[i]->get_value(), hm[i]->get_value()) << "reducer " << i;
  }
  EXPECT_EQ(mm_total, kIters);
  EXPECT_EQ(hm_total, kIters);
}

std::vector<GridParam> grid() {
  std::vector<GridParam> out;
  for (const unsigned w : {1u, 2u, 4u, 8u}) {
    for (const unsigned n : {1u, 3u, 64u, 300u}) {  // 300 spans 2 SPA pages
      out.push_back({w, n});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(WorkersByReducers, ReducerGrid,
                         ::testing::ValuesIn(grid()));

// ---------------------------------------------------------------------------
// PBFS across the paper-suite stand-ins.
// ---------------------------------------------------------------------------

class PaperSuite : public ::testing::TestWithParam<int> {};

TEST_P(PaperSuite, PbfsMatchesSerialOnSuiteGraph) {
  SCOPED_TRACE(cilkm::test::seed_trace());
  using namespace cilkm::pbfs;
  const auto specs = paper_graph_suite(/*shrink=*/512);
  GraphSpec spec = specs[static_cast<std::size_t>(GetParam())];
  // Mix the run's base seed into the generator seed: the default replays
  // byte-identically, CILKM_TEST_SEED explores fresh graphs.
  spec.seed = cilkm::test::derived_seed(spec.seed);
  const Graph g = generate(spec);
  const auto expect = serial_bfs(g, 0);
  BfsResult mm, hm;
  cilkm::run(4, [&] {
    mm = pbfs<cilkm::mm_policy>(g, 0);
    hm = pbfs<cilkm::hypermap_policy>(g, 0);
  });
  EXPECT_EQ(mm.dist, expect.dist) << spec.name;
  EXPECT_EQ(hm.dist, expect.dist) << spec.name;
  EXPECT_EQ(mm.num_layers, expect.num_layers) << spec.name;
}

INSTANTIATE_TEST_SUITE_P(AllEightGraphs, PaperSuite,
                         ::testing::Range(0, 8));

}  // namespace
