// Bag (pennant) data-structure tests: insert carry propagation, merge as a
// full adder, pennant shape invariants, element preservation.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "pbfs/bag.hpp"
#include "util/rng.hpp"

namespace {

using cilkm::pbfs::Bag;

template <typename T>
std::multiset<T> contents(const Bag<T>& bag) {
  std::multiset<T> out;
  bag.for_each([&](const T& v) { out.insert(v); });
  return out;
}

// A pennant of rank k must contain exactly 2^k nodes; its left child is a
// complete binary tree. Verify by counting.
template <typename T>
std::uint64_t count_tree(const typename Bag<T>::Node* n) {
  if (n == nullptr) return 0;
  return 1 + count_tree<T>(n->left) + count_tree<T>(n->right);
}

TEST(Bag, StartsEmpty) {
  Bag<int> bag;
  EXPECT_TRUE(bag.empty());
  EXPECT_EQ(bag.size(), 0u);
  EXPECT_TRUE(bag.pennants().empty());
}

TEST(Bag, InsertMaintainsBinaryCountingStructure) {
  Bag<int> bag;
  for (int i = 0; i < 100; ++i) {
    bag.insert(i);
    EXPECT_EQ(bag.size(), static_cast<std::uint64_t>(i + 1));
    // The spine mirrors the binary representation of the size, and every
    // rank-k pennant holds exactly 2^k elements.
    std::uint64_t total = 0;
    for (const auto& [root, rank] : bag.pennants()) {
      const std::uint64_t count = count_tree<int>(root);
      EXPECT_EQ(count, std::uint64_t{1} << rank);
      total += count;
    }
    EXPECT_EQ(total, bag.size());
  }
}

TEST(Bag, PreservesAllElements) {
  Bag<int> bag;
  std::multiset<int> expect;
  for (int i = 0; i < 1000; ++i) {
    bag.insert(i % 37);
    expect.insert(i % 37);
  }
  EXPECT_EQ(contents(bag), expect);
}

TEST(Bag, MergeIsAFullAdder) {
  for (const int na : {0, 1, 3, 7, 8, 100, 255}) {
    for (const int nb : {0, 1, 5, 64, 127}) {
      Bag<int> a, b;
      std::multiset<int> expect;
      for (int i = 0; i < na; ++i) {
        a.insert(i);
        expect.insert(i);
      }
      for (int i = 0; i < nb; ++i) {
        b.insert(1000 + i);
        expect.insert(1000 + i);
      }
      a.merge(std::move(b));
      EXPECT_EQ(a.size(), static_cast<std::uint64_t>(na + nb));
      EXPECT_TRUE(b.empty());
      EXPECT_EQ(contents(a), expect) << "na=" << na << " nb=" << nb;
      // Structure invariant after merge too.
      for (const auto& [root, rank] : a.pennants()) {
        EXPECT_EQ(count_tree<int>(root), std::uint64_t{1} << rank);
      }
    }
  }
}

TEST(Bag, MoveSemantics) {
  Bag<int> a;
  for (int i = 0; i < 10; ++i) a.insert(i);
  Bag<int> b = std::move(a);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(b.size(), 10u);
  a = std::move(b);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_TRUE(b.empty());
}

TEST(Bag, RandomisedMergeSequence) {
  cilkm::Xoshiro256 rng(2024);
  Bag<std::uint64_t> accumulated;
  std::multiset<std::uint64_t> expect;
  for (int round = 0; round < 50; ++round) {
    Bag<std::uint64_t> fresh;
    const int n = static_cast<int>(rng.below(200));
    for (int i = 0; i < n; ++i) {
      const std::uint64_t v = rng.below(1000);
      fresh.insert(v);
      expect.insert(v);
    }
    accumulated.merge(std::move(fresh));
  }
  EXPECT_EQ(contents(accumulated), expect);
}

TEST(BagMonoid, SatisfiesMonoidLaws) {
  // identity ⊗ x == x, and associativity on sizes/contents.
  cilkm::pbfs::bag_merge<int> monoid;
  auto x = monoid.identity();
  Bag<int> y;
  y.insert(1);
  y.insert(2);
  monoid.reduce(x, y);  // x = e ⊗ y
  EXPECT_EQ(x.size(), 2u);
  EXPECT_TRUE(y.empty());
}

}  // namespace
