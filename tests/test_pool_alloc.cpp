// ViewPool (Hoard-style pooled view allocator) tests: size classes, reuse,
// cross-thread free, oversized fallthrough, and typed create/destroy.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "util/pool_alloc.hpp"

namespace {

using cilkm::ViewPool;

TEST(ViewPool, SizeClassMapping) {
  EXPECT_EQ(ViewPool::size_class(1), 0);
  EXPECT_EQ(ViewPool::size_class(16), 0);
  EXPECT_EQ(ViewPool::size_class(17), 1);
  EXPECT_EQ(ViewPool::size_class(32), 1);
  EXPECT_EQ(ViewPool::size_class(256), 4);
  EXPECT_EQ(ViewPool::size_class(257), 5);
  EXPECT_EQ(ViewPool::size_class(4096), 8);
  EXPECT_EQ(ViewPool::size_class(4097), -1);  // falls through to new/delete
}

TEST(ViewPool, AllocationsAreUsableAndDistinct) {
  auto& pool = ViewPool::instance();
  std::set<void*> seen;
  std::vector<void*> ptrs;
  for (int i = 0; i < 500; ++i) {
    void* p = pool.allocate(48);
    EXPECT_TRUE(seen.insert(p).second);
    std::memset(p, 0xab, 48);
    ptrs.push_back(p);
  }
  for (void* p : ptrs) pool.deallocate(p, 48);
}

TEST(ViewPool, FreedSlotsAreReused) {
  // Free a batch, allocate again: the chunk count must not grow — every
  // new allocation is served from recycled slots (local cache or global
  // shard after rebalancing).
  auto& pool = ViewPool::instance();
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) ptrs.push_back(pool.allocate(24));
  for (void* p : ptrs) pool.deallocate(p, 24);
  const std::size_t chunks_before = pool.chunks_allocated();
  std::vector<void*> round2;
  for (int i = 0; i < 100; ++i) round2.push_back(pool.allocate(24));
  EXPECT_EQ(pool.chunks_allocated(), chunks_before);
  for (void* p : round2) pool.deallocate(p, 24);
}

TEST(ViewPool, OversizedAllocationsFallThrough) {
  auto& pool = ViewPool::instance();
  void* p = pool.allocate(8192);
  ASSERT_NE(p, nullptr);
  std::memset(p, 1, 8192);
  pool.deallocate(p, 8192);
}

TEST(ViewPool, CreateDestroyRunConstructors) {
  struct Probe {
    static int& live() {
      static int count = 0;
      return count;
    }
    int payload;
    explicit Probe(int v) : payload(v) { ++live(); }
    ~Probe() { --live(); }
  };
  auto& pool = ViewPool::instance();
  Probe* p = pool.create<Probe>(42);
  EXPECT_EQ(p->payload, 42);
  EXPECT_EQ(Probe::live(), 1);
  pool.destroy(p);
  EXPECT_EQ(Probe::live(), 0);
}

TEST(ViewPool, CrossThreadFreeIsSafe) {
  // Views are routinely allocated on one worker and freed on another (the
  // hypermerge destroys the right view wherever the join happens).
  auto& pool = ViewPool::instance();
  std::vector<void*> ptrs;
  for (int i = 0; i < 200; ++i) ptrs.push_back(pool.allocate(64));
  std::thread other([&] {
    for (void* p : ptrs) pool.deallocate(p, 64);
  });
  other.join();
  // Allocate again on this thread; must not crash or duplicate.
  std::set<void*> seen;
  std::vector<void*> round2;
  for (int i = 0; i < 200; ++i) {
    void* p = pool.allocate(64);
    EXPECT_TRUE(seen.insert(p).second);
    round2.push_back(p);
  }
  for (void* p : round2) pool.deallocate(p, 64);
}

TEST(ViewPool, ConcurrentAllocFreeStress) {
  auto& pool = ViewPool::instance();
  constexpr int kThreads = 4, kIters = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<void*> held;
      for (int i = 0; i < kIters; ++i) {
        held.push_back(pool.allocate(16));
        std::memset(held.back(), 0x5a, 16);
        if (held.size() > 32) {
          pool.deallocate(held.front(), 16);
          held.erase(held.begin());
        }
      }
      for (void* p : held) pool.deallocate(p, 16);
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace
