// Google-benchmark microbenchmarks of the primitive operations underlying
// Figures 1 and 6: a single L1 update, a memory-mapped reducer lookup, a
// hypermap reducer lookup (at several table sizes), spinlocked updates, and
// the runtime's fork-join primitives.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"

namespace {

void BM_L1Access(benchmark::State& state) {
  volatile std::uint64_t cells[4] = {};
  std::uint64_t i = 0;
  for (auto _ : state) {
    cells[i & 3] = cells[i & 3] + 1;
    ++i;
  }
  benchmark::DoNotOptimize(cells[0]);
}
BENCHMARK(BM_L1Access);

void BM_MmReducerLookup(benchmark::State& state) {
  cilkm::Scheduler sched(1);
  sched.run([&] {
    cilkm::reducer_opadd<std::uint64_t> r0, r1, r2, r3;
    cilkm::reducer_opadd<std::uint64_t>* r[4] = {&r0, &r1, &r2, &r3};
    std::uint64_t i = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(*(*r[i & 3]) += 1);
      ++i;
    }
  });
}
BENCHMARK(BM_MmReducerLookup);

void BM_HypermapReducerLookup(benchmark::State& state) {
  // The hypermap's probe cost depends on occupancy: state.range(0) gives the
  // number of co-resident reducers.
  const auto n = static_cast<std::size_t>(state.range(0));
  cilkm::Scheduler sched(1);
  sched.run([&] {
    std::vector<
        std::unique_ptr<cilkm::reducer_opadd<std::uint64_t, cilkm::hypermap_policy>>>
        r;
    for (std::size_t k = 0; k < n; ++k) {
      r.push_back(std::make_unique<
                  cilkm::reducer_opadd<std::uint64_t, cilkm::hypermap_policy>>());
    }
    std::uint64_t i = 0;
    for (auto _ : state) {
      benchmark::DoNotOptimize(*(*r[i % n]) += 1);
      ++i;
    }
  });
}
BENCHMARK(BM_HypermapReducerLookup)->Arg(4)->Arg(64)->Arg(1024);

void BM_SpinLockedUpdate(benchmark::State& state) {
  cilkm::SpinLock locks[4];
  volatile std::uint64_t cells[4] = {};
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::uint64_t k = i & 3;
    locks[k].lock();
    cells[k] = cells[k] + 1;
    locks[k].unlock();
    ++i;
  }
  benchmark::DoNotOptimize(cells[0]);
}
BENCHMARK(BM_SpinLockedUpdate);

void BM_Fork2JoinUnstolen(benchmark::State& state) {
  // The fork-join fast path: push + conditional pop, no view operations.
  cilkm::Scheduler sched(1);
  sched.run([&] {
    std::uint64_t sink = 0;
    for (auto _ : state) {
      cilkm::fork2join([&] { sink += 1; }, [&] { sink += 2; });
    }
    benchmark::DoNotOptimize(sink);
  });
}
BENCHMARK(BM_Fork2JoinUnstolen);

void BM_ParallelFor1M(benchmark::State& state) {
  const auto procs = static_cast<unsigned>(state.range(0));
  cilkm::Scheduler sched(procs);
  for (auto _ : state) {
    std::atomic<std::uint64_t> sum{0};
    sched.run([&] {
      cilkm::parallel_for(0, 1 << 20, 4096, [&](std::int64_t i) {
        benchmark::DoNotOptimize(i);
      });
      sum.store(1);
    });
    benchmark::DoNotOptimize(sum.load());
  }
}
BENCHMARK(BM_ParallelFor1M)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
