// Figure 1: relative overhead of ordinary L1-cache accesses, memory-mapped
// reducer lookups, hypermap reducer lookups, and spinlocking — additions on
// four memory locations in a tight loop on a single processor, each bar
// normalized to the L1 baseline.
//
//   ./fig01_overhead [--iters N] [--reps R]
#include <pthread.h>

#include <cstdio>

#include "harness.hpp"

namespace {

constexpr unsigned kLocations = 4;

void l1_baseline(std::uint64_t iters) {
  // Volatile precludes promoting the four accumulators into registers, so
  // each update is a genuine L1 load+store (the paper's methodology).
  volatile std::uint64_t cells[kLocations] = {};
  for (std::uint64_t i = 0; i < iters; ++i) {
    cells[i & (kLocations - 1)] = cells[i & (kLocations - 1)] + 1;
  }
  if (cells[0] + cells[1] + cells[2] + cells[3] != iters) std::abort();
}

template <typename Policy>
void reducer_bench(std::uint64_t iters) {
  cilkm::reducer_opadd<std::uint64_t, Policy> r0, r1, r2, r3;
  cilkm::reducer_opadd<std::uint64_t, Policy>* r[kLocations] = {&r0, &r1, &r2,
                                                                &r3};
  for (std::uint64_t i = 0; i < iters; ++i) {
    *(*r[i & (kLocations - 1)]) += 1;
  }
  if (r0.get_value() + r1.get_value() + r2.get_value() + r3.get_value() !=
      iters) {
    std::abort();
  }
}

void locking_bench(std::uint64_t iters) {
  pthread_spinlock_t locks[kLocations];
  volatile std::uint64_t cells[kLocations] = {};
  for (auto& lock : locks) pthread_spin_init(&lock, PTHREAD_PROCESS_PRIVATE);
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t k = i & (kLocations - 1);
    pthread_spin_lock(&locks[k]);
    cells[k] = cells[k] + 1;
    pthread_spin_unlock(&locks[k]);
  }
  for (auto& lock : locks) pthread_spin_destroy(&lock);
  if (cells[0] + cells[1] + cells[2] + cells[3] != iters) std::abort();
}

}  // namespace

int main(int argc, char** argv) {
  const auto iters =
      static_cast<std::uint64_t>(bench::flag_int(argc, argv, "--iters", 1 << 25));
  const int reps = static_cast<int>(bench::flag_int(argc, argv, "--reps", 5));

  double l1 = 0, mm = 0, hyper = 0, lock = 0;

  // All variants run on one worker inside the scheduler so the reducer
  // lookup paths are the real (worker-context) paths; the persistent pool is
  // reused across all four variants. Unlike the delta-based figures, this
  // one reports RATIOS, so each variant times its reps inside a single
  // run() — the per-run dispatch constant must stay out of the samples or
  // it would compress every ratio toward 1 at small --iters.
  cilkm::Scheduler sched(1);
  sched.run([&] { l1 = bench::repeat(reps, [&] { l1_baseline(iters); }).mean_s; });
  sched.run([&] {
    mm = bench::repeat(reps, [&] {
           reducer_bench<cilkm::mm_policy>(iters);
         }).mean_s;
  });
  sched.run([&] {
    hyper = bench::repeat(reps, [&] {
              reducer_bench<cilkm::hypermap_policy>(iters);
            }).mean_s;
  });
  sched.run(
      [&] { lock = bench::repeat(reps, [&] { locking_bench(iters); }).mean_s; });

  std::printf("# Figure 1: normalized overhead of updates to 4 memory "
              "locations (1 processor, %llu iterations)\n",
              static_cast<unsigned long long>(iters));
  std::printf("%-16s %12s %12s\n", "variant", "time (s)", "normalized");
  std::printf("%-16s %12.4f %12.2f\n", "L1-memory", l1, 1.0);
  std::printf("%-16s %12.4f %12.2f\n", "memory-mapped", mm, mm / l1);
  std::printf("%-16s %12.4f %12.2f\n", "hypermap", hyper, hyper / l1);
  std::printf("%-16s %12.4f %12.2f\n", "locking", lock, lock / l1);
  std::printf("# paper (Opteron 8354): L1 1.0, memory-mapped ~3, hypermap "
              "~12, locking ~13\n");

  bench::JsonReport report("fig01_overhead");
  report.add("l1", 0, {{"time_s", l1}, {"normalized", 1.0}});
  report.add("mm", 0, {{"time_s", mm}, {"normalized", mm / l1}});
  report.add("hypermap", 0, {{"time_s", hyper}, {"normalized", hyper / l1}});
  report.add("locking", 0, {{"time_s", lock}, {"normalized", lock / l1}});
  return 0;
}
