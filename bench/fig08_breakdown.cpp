// Figure 8: the breakdown of Cilk-M's reduce overhead for add-n on 16
// workers into its four components: view creation, view insertion,
// hypermerge (including the monoid reduce operations), and view transferal.
//
//   ./fig08_breakdown [--lookups N] [--reps R] [--procs P]
#include <cstdio>

#include "harness.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  const auto lookups = static_cast<std::uint64_t>(
      bench::flag_int(argc, argv, "--lookups", 1 << 23));
  const int reps = static_cast<int>(bench::flag_int(argc, argv, "--reps", 5));
  const auto procs =
      static_cast<unsigned>(bench::flag_int(argc, argv, "--procs", 16));
  using cilkm::StatCounter;

  std::printf("# Figure 8: breakdown of Cilk-M reduce overhead, add-n on %u "
              "workers (microseconds; mean of %d runs)\n",
              procs, reps);
  std::printf("%-10s %12s %12s %12s %12s %12s %10s\n", "bench", "create",
              "insert", "hypermerge", "transferal", "total", "views");

  bench::JsonReport report("fig08_breakdown");
  cilkm::Scheduler sched(procs);
  for (unsigned n = 4; n <= 1024; n *= 2) {
    double create = 0, insert = 0, merge = 0, transfer = 0;
    std::uint64_t views = 0;
    for (int r = 0; r < reps; ++r) {
      sched.reset_stats();
      sched.run([&] {
        bench::MicroBench<cilkm::mm_policy>::add_n(n, lookups, /*grain=*/1024,
                                                   /*yield_period=*/2048);
      });
      const auto stats = sched.aggregate_stats();
      create += static_cast<double>(stats[StatCounter::kViewCreateNs]) / 1e3;
      insert += static_cast<double>(stats[StatCounter::kViewInsertNs]) / 1e3;
      merge += static_cast<double>(stats[StatCounter::kHypermergeNs]) / 1e3;
      transfer += static_cast<double>(stats[StatCounter::kViewTransferNs]) / 1e3;
      views += stats[StatCounter::kViewsCreated];
    }
    create /= reps;
    insert /= reps;
    merge /= reps;
    transfer /= reps;
    views /= static_cast<std::uint64_t>(reps);
    std::printf("%s%-6u %12.1f %12.1f %12.1f %12.1f %12.1f %10llu\n", "add-",
                n, create, insert, merge, transfer,
                create + insert + merge + transfer,
                static_cast<unsigned long long>(views));
    report.add("mm", n,
               {{"create_us", create},
                {"insert_us", insert},
                {"merge_us", merge},
                {"transfer_us", transfer},
                {"total_us", create + insert + merge + transfer},
                {"views", static_cast<double>(views)}});
  }
  std::printf("# paper: view creation dominates; transferal grows slowly "
              "with n (the SPA map sequences efficiently)\n");
  return 0;
}
