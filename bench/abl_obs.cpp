// Ablation: observability overhead on a spawn-dense fork tree. The whole
// point of the obs layer is that it costs nothing when off — the fork2join
// hot path pays one relaxed load per spawn — so this bench pins that claim
// to a number the bench-smoke diff can hold across PRs. Series:
//
//   obs/off            — tracer and profiler both disabled (the default)
//   obs/trace          — Tracer enabled (ring writes on steals/parks/merges)
//   obs/trace+profile  — Tracer and the work/span profiler enabled
//
// x is the worker count (1 and --workers). The workload is a binary fork
// tree of --depth levels with trivial leaves: virtually all time is spent
// in fork2join itself, the worst case for per-spawn instrumentation.
//
//   ./abl_obs [--reps R] [--workers P] [--depth D]
#include <cstdint>
#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "obs/profiler.hpp"
#include "runtime/api.hpp"
#include "runtime/trace.hpp"
#include "topo/topology.hpp"

namespace {

struct Mode {
  const char* series;
  bool trace;
  bool profile;
};

/// Binary fork tree: 2^depth trivial leaves, nothing but spawn machinery.
std::uint64_t fork_tree(unsigned depth) {
  if (depth == 0) return 1;
  std::uint64_t l = 0, r = 0;
  cilkm::fork2join([&] { l = fork_tree(depth - 1); },
                   [&] { r = fork_tree(depth - 1); });
  return l + r;
}

double run_mode(const Mode& mode, cilkm::Scheduler& sched, unsigned workers,
                int reps, unsigned depth, bench::JsonReport& report) {
  auto& tracer = cilkm::rt::Tracer::instance();
  auto& profiler = cilkm::obs::Profiler::instance();
  if (mode.trace) tracer.enable();
  if (mode.profile) profiler.enable();
  tracer.reset();
  profiler.reset();

  volatile std::uint64_t sink = 0;
  const bench::RunStat stat = bench::repeat(sched, reps, [&] {
    sink = fork_tree(depth);
  });
  if (sink != (1ull << depth)) std::abort();

  tracer.disable();
  profiler.disable();

  std::printf("%-18s %4u %12.6f %12.6f\n", mode.series, workers, stat.median_s,
              stat.stddev_s);
  report.add(std::string(mode.series), static_cast<double>(workers),
             {{"median_s", stat.median_s}, {"stddev_s", stat.stddev_s}});
  return stat.median_s;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = static_cast<int>(bench::flag_int(argc, argv, "--reps", 7));
  const auto workers =
      static_cast<unsigned>(bench::flag_int(argc, argv, "--workers", 4));
  const auto depth =
      static_cast<unsigned>(bench::flag_int(argc, argv, "--depth", 16));

  const cilkm::topo::Topology& topo = cilkm::topo::Topology::machine();
  std::printf("# Ablation: observability overhead on a 2^%u-leaf fork tree\n",
              depth);
  std::printf("# machine: %s\n", topo.describe().c_str());
  std::printf("%-18s %4s %12s %12s\n", "series", "P", "median_s", "stddev_s");

  bench::JsonReport report("abl_obs");
  report.add("machine:" + topo.describe(), static_cast<double>(topo.num_cpus()),
             {{"depth", static_cast<double>(depth)}});

  const Mode modes[] = {
      {"obs/off", false, false},
      {"obs/trace", true, false},
      {"obs/trace+profile", true, true},
  };
  std::vector<unsigned> counts{1};
  if (workers > 1) counts.push_back(workers);
  for (const unsigned p : counts) {
    cilkm::Scheduler sched(p);
    double off_s = 0;
    for (const Mode& mode : modes) {
      const double s = run_mode(mode, sched, p, reps, depth, report);
      if (!mode.trace && !mode.profile) off_s = s;
      else if (off_s > 0) {
        std::printf("#   %-18s on/off ratio: %.3f\n", mode.series, s / off_s);
      }
    }
  }
  return 0;
}
