// Ablation: chaos fail-point overhead on a spawn-dense fork tree. The
// chaos layer's contract is that disarmed sites cost one relaxed load +
// branch on the hot path (the same bar the tracer's enabled() gate meets),
// so the bench-smoke diff can hold chaos/off at ratio ~1.0 of the pre-chaos
// baseline across PRs. Series:
//
//   chaos/off      — disarmed (the default; every consult is one load)
//   chaos/armed-p0 — armed with p=0: consults hash pedigrees but never fire
//   chaos/inject   — armed with a small p on the push+fiber fault sites:
//                    the runtime absorbs real degradations mid-run
//
// x is the worker count (1 and --workers). The workload is a binary fork
// tree of --depth levels with trivial leaves: virtually all time is spent
// in fork2join itself, the worst case for per-spawn fail points.
//
//   ./abl_chaos [--reps R] [--workers P] [--depth D]
#include <cstdint>
#include <cstdio>
#include <vector>

#include "chaos/chaos.hpp"
#include "harness.hpp"
#include "runtime/api.hpp"
#include "topo/topology.hpp"

namespace {

struct Mode {
  const char* series;
  bool armed;
  double p;
  std::uint32_t sites;
};

/// Binary fork tree: 2^depth trivial leaves, nothing but spawn machinery.
std::uint64_t fork_tree(unsigned depth) {
  if (depth == 0) return 1;
  std::uint64_t l = 0, r = 0;
  cilkm::fork2join([&] { l = fork_tree(depth - 1); },
                   [&] { r = fork_tree(depth - 1); });
  return l + r;
}

double run_mode(const Mode& mode, cilkm::Scheduler& sched, unsigned workers,
                int reps, unsigned depth, bench::JsonReport& report) {
  if (mode.armed) {
    cilkm::chaos::Config cfg;
    cfg.p = mode.p;
    cfg.seed = 0xc4a05c4a05c4a05ULL;
    cfg.sites = mode.sites;
    cilkm::chaos::arm(cfg);
  } else {
    cilkm::chaos::disarm();
    // arm() resets the counters; the disarmed mode must too, or it would
    // report the previous armed mode's injected count.
    cilkm::chaos::reset_stats();
  }

  volatile std::uint64_t sink = 0;
  const bench::RunStat stat = bench::repeat(sched, reps, [&] {
    sink = fork_tree(depth);
  });
  // Injected push/fiber faults degrade to serial execution — the tree's
  // value must survive every mode bit for bit.
  if (sink != (1ull << depth)) std::abort();

  const cilkm::chaos::SiteStats push =
      cilkm::chaos::site_stats(cilkm::chaos::Site::kDequePush);
  const cilkm::chaos::SiteStats fiber =
      cilkm::chaos::site_stats(cilkm::chaos::Site::kFiberAcquire);
  cilkm::chaos::disarm();

  std::printf("%-18s %4u %12.6f %12.6f %10llu\n", mode.series, workers,
              stat.median_s, stat.stddev_s,
              static_cast<unsigned long long>(push.injected + fiber.injected));
  report.add(std::string(mode.series), static_cast<double>(workers),
             {{"median_s", stat.median_s},
              {"stddev_s", stat.stddev_s},
              {"injected",
               static_cast<double>(push.injected + fiber.injected)}});
  return stat.median_s;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = static_cast<int>(bench::flag_int(argc, argv, "--reps", 7));
  const auto workers =
      static_cast<unsigned>(bench::flag_int(argc, argv, "--workers", 4));
  const auto depth =
      static_cast<unsigned>(bench::flag_int(argc, argv, "--depth", 16));

  const cilkm::topo::Topology& topo = cilkm::topo::Topology::machine();
  std::printf("# Ablation: chaos fail-point overhead on a 2^%u-leaf fork tree\n",
              depth);
  std::printf("# machine: %s\n", topo.describe().c_str());
  std::printf("%-18s %4s %12s %12s %10s\n", "series", "P", "median_s",
              "stddev_s", "injected");

  bench::JsonReport report("abl_chaos");
  report.add("machine:" + topo.describe(), static_cast<double>(topo.num_cpus()),
             {{"depth", static_cast<double>(depth)}});

  using cilkm::chaos::Site;
  using cilkm::chaos::site_bit;
  const Mode modes[] = {
      {"chaos/off", false, 0.0, 0},
      {"chaos/armed-p0", true, 0.0, cilkm::chaos::kAllSites},
      {"chaos/inject", true, 0.001,
       site_bit(Site::kDequePush) | site_bit(Site::kFiberAcquire)},
  };
  std::vector<unsigned> counts{1};
  if (workers > 1) counts.push_back(workers);
  for (const unsigned p : counts) {
    cilkm::Scheduler sched(p);
    double off_s = 0;
    for (const Mode& mode : modes) {
      const double s = run_mode(mode, sched, p, reps, depth, report);
      if (!mode.armed) off_s = s;
      else if (off_s > 0) {
        std::printf("#   %-18s on/off ratio: %.3f\n", mode.series, s / off_s);
      }
    }
  }
  return 0;
}
