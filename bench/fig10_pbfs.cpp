// Figure 10: PBFS on the eight-graph input suite. (a) Cilk-M execution time
// normalized to Cilk Plus on 1 and 16 workers; (b) the graph-characteristics
// table (|V|, |E|, diameter D, number of bag-reducer lookups).
//
// The paper's graphs (florida matrix collection + wikipedia crawl) are
// replaced by synthetic stand-ins with matching |V|, |E| and diameter class,
// scaled down by --shrink (default 64) so the suite regenerates in minutes
// on one core. See DESIGN.md's substitution table.
//
//   ./fig10_pbfs [--shrink S] [--reps R]
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"
#include "pbfs/pbfs.hpp"

namespace {

using namespace cilkm::pbfs;

struct Row {
  std::string name;
  Vertex v;
  std::uint64_t e;
  Vertex diameter;
  std::uint64_t lookups;
  double ratio_p1;
  double ratio_p16;
};

template <typename Policy>
double time_pbfs(cilkm::Scheduler& sched, const Graph& g, int reps,
                 BfsResult* out) {
  // Ratio figure (mm normalized to hypermap): time the reps inside one
  // run() so the per-run dispatch constant stays out of the samples.
  double mean = 0;
  sched.run([&] {
    mean = bench::repeat(reps, [&] { *out = pbfs<Policy>(g, 0); }).mean_s;
  });
  return mean;
}

}  // namespace

int main(int argc, char** argv) {
  const auto shrink =
      static_cast<unsigned>(bench::flag_int(argc, argv, "--shrink", 64));
  const int reps = static_cast<int>(bench::flag_int(argc, argv, "--reps", 3));

  std::vector<Row> rows;
  for (const auto& spec : paper_graph_suite(shrink)) {
    const Graph g = generate(spec);
    const auto serial = serial_bfs(g, 0);

    Row row;
    row.name = spec.name;
    row.v = g.num_vertices();
    row.e = g.num_edges() / 2;  // undirected count, as the paper reports
    row.diameter = serial.num_layers - 1;

    BfsResult mm, hyper;
    {
      cilkm::Scheduler sched(1);
      const double t_mm = time_pbfs<cilkm::mm_policy>(sched, g, reps, &mm);
      const double t_hy =
          time_pbfs<cilkm::hypermap_policy>(sched, g, reps, &hyper);
      row.ratio_p1 = t_mm / t_hy;
    }
    {
      cilkm::Scheduler sched(16);
      const double t_mm = time_pbfs<cilkm::mm_policy>(sched, g, reps, &mm);
      const double t_hy =
          time_pbfs<cilkm::hypermap_policy>(sched, g, reps, &hyper);
      row.ratio_p16 = t_mm / t_hy;
    }
    row.lookups = mm.reducer_lookups;
    if (mm.dist != serial.dist || hyper.dist != serial.dist) {
      std::fprintf(stderr, "BFS MISMATCH on %s\n", row.name.c_str());
      return 1;
    }
    rows.push_back(row);
  }

  std::printf("# Figure 10(b): graph characteristics (shrink=%u)\n", shrink);
  std::printf("%-12s %10s %12s %6s %10s\n", "name", "|V|", "|E|", "D",
              "lookups");
  for (const auto& r : rows) {
    std::printf("%-12s %10u %12llu %6u %10llu\n", r.name.c_str(), r.v,
                static_cast<unsigned long long>(r.e), r.diameter,
                static_cast<unsigned long long>(r.lookups));
  }

  std::printf("\n# Figure 10(a): Cilk-M execution time normalized to "
              "Cilk Plus (lower-than-1 = Cilk-M faster)\n");
  std::printf("%-12s %14s %14s\n", "name", "P=1", "P=16");
  bench::JsonReport report("fig10_pbfs");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::printf("%-12s %14.3f %14.3f\n", r.name.c_str(), r.ratio_p1,
                r.ratio_p16);
    report.add(r.name, static_cast<double>(i),
               {{"vertices", static_cast<double>(r.v)},
                {"edges", static_cast<double>(r.e)},
                {"diameter", static_cast<double>(r.diameter)},
                {"lookups", static_cast<double>(r.lookups)},
                {"ratio_p1", r.ratio_p1},
                {"ratio_p16", r.ratio_p16}});
  }
  std::printf("# paper: ~1.0 (Cilk-M slightly slower) serial; 0.7-0.9 "
              "(Cilk-M faster) on 16 procs\n");
  return 0;
}
