// Figure 6: reducer lookup overhead — time(add-n) minus time(add-base-n) on
// a single processor, n ∈ {4, 8, ..., 1024}, for every view-store policy.
// The paper's result: Cilk-M's overhead is flat in n (two loads and a
// branch), while Cilk Plus's hash-table lookup cost varies with n. The flat
// policy (dense-id array) is the ablation floor: what lookup costs when the
// key is already a perfect index.
//
//   ./fig06_lookup [--lookups N] [--reps R]
#include <cstdio>

#include "harness.hpp"

int main(int argc, char** argv) {
  const auto lookups = static_cast<std::uint64_t>(
      bench::flag_int(argc, argv, "--lookups", 1 << 24));
  const int reps = static_cast<int>(bench::flag_int(argc, argv, "--reps", 5));
  const std::int64_t grain = 1 << 30;  // single chunk: pure serial loop

  std::printf("# Figure 6: lookup overhead on 1 processor "
              "(time of add-n minus time of add-base-n, %llu lookups)\n",
              static_cast<unsigned long long>(lookups));
  std::printf("%-10s %14s %14s %14s %10s\n", "bench", "Cilk-M (s)",
              "Cilk Plus (s)", "flat (s)", "CP/M");

  bench::JsonReport report("fig06_lookup");
  cilkm::Scheduler sched(1);
  for (unsigned n = 4; n <= 1024; n *= 2) {
    const double base =
        bench::repeat(sched, reps,
                      [&] { bench::add_base_n(n, lookups, grain); }).mean_s;
    const double mm = bench::repeat(sched, reps, [&] {
                        bench::MicroBench<cilkm::mm_policy>::add_n(n, lookups,
                                                                   grain);
                      }).mean_s;
    const double hyper =
        bench::repeat(sched, reps, [&] {
          bench::MicroBench<cilkm::hypermap_policy>::add_n(n, lookups, grain);
        }).mean_s;
    const double flat =
        bench::repeat(sched, reps, [&] {
          bench::MicroBench<cilkm::flat_policy>::add_n(n, lookups, grain);
        }).mean_s;
    const double mm_over = mm - base;
    const double hyper_over = hyper - base;
    const double flat_over = flat - base;
    std::printf("add-%-6u %14.4f %14.4f %14.4f %9.2fx\n", n, mm_over,
                hyper_over, flat_over, hyper_over / mm_over);
    report.add("mm", n, {{"overhead_s", mm_over}, {"time_s", mm}});
    report.add("hypermap", n, {{"overhead_s", hyper_over}, {"time_s", hyper}});
    report.add("flat", n, {{"overhead_s", flat_over}, {"time_s", flat}});
    report.add("base", n, {{"time_s", base}});
  }
  std::printf("# paper: Cilk-M overhead flat in n; Cilk Plus overhead larger "
              "and varying with n\n");
  return 0;
}
