// Shared benchmark harness: repetition with mean/stddev, flag parsing,
// machine-readable JSON reporting (one BENCH_<figure>.json per figure, so
// the perf trajectory is tracked across PRs), and the microbenchmark
// kernels of paper Figure 4 (add-n / min-n / max-n and the add-base-n
// control), parameterised over the reducer view-store policy.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "util/timing.hpp"

namespace bench {

/// Machine-readable companion to each figure's console table. Collects
/// (series, x, metrics) rows and writes BENCH_<figure>.json in the working
/// directory when flushed (or destroyed), e.g.
///
///   {"figure": "fig06_lookup", "schema": "cilkm-bench-v1",
///    "rows": [{"series": "mm", "x": 4, "metrics": {"overhead_s": 0.012}}]}
class JsonReport {
 public:
  explicit JsonReport(std::string figure) : figure_(std::move(figure)) {}
  ~JsonReport() { flush(); }

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  void add(std::string series, double x,
           std::initializer_list<std::pair<const char*, double>> metrics) {
    Row row;
    row.series = std::move(series);
    row.x = x;
    for (const auto& [key, value] : metrics) row.metrics.emplace_back(key, value);
    rows_.push_back(std::move(row));
  }

  void flush() {
    if (flushed_) return;
    flushed_ = true;
    const std::string path = "BENCH_" + figure_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"figure\": \"%s\",\n  \"schema\": \"cilkm-bench-v1\",\n"
                    "  \"rows\": [",
                 figure_.c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      std::fprintf(f, "%s\n    {\"series\": \"%s\", ", i == 0 ? "" : ",",
                   row.series.c_str());
      print_number(f, "x", row.x);
      std::fprintf(f, ", \"metrics\": {");
      for (std::size_t m = 0; m < row.metrics.size(); ++m) {
        if (m != 0) std::fprintf(f, ", ");
        print_number(f, row.metrics[m].first.c_str(), row.metrics[m].second);
      }
      std::fprintf(f, "}}");
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
  }

 private:
  struct Row {
    std::string series;
    double x = 0;
    std::vector<std::pair<std::string, double>> metrics;
  };

  // JSON has no NaN/Inf literals; emit null for non-finite values.
  static void print_number(std::FILE* f, const char* key, double v) {
    if (std::isfinite(v)) {
      std::fprintf(f, "\"%s\": %.17g", key, v);
    } else {
      std::fprintf(f, "\"%s\": null", key);
    }
  }

  std::string figure_;
  std::vector<Row> rows_;
  bool flushed_ = false;
};

struct RunStat {
  double mean_s = 0;
  double median_s = 0;
  double stddev_s = 0;
};

/// Median of a sample set (the value reported by BENCH_*.json rows: robust
/// against the occasional descheduled run on a shared host).
inline double median(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  if (n == 0) return 0;
  return n % 2 == 1 ? samples[n / 2]
                    : (samples[n / 2 - 1] + samples[n / 2]) / 2;
}

/// Mean/median/population-stddev of a sample set — the one definition of
/// these statistics behind every BENCH_*.json producer (figure benches via
/// repeat(), the workload driver via its per-cell samples).
inline RunStat stats_of(std::vector<double> samples) {
  RunStat out;
  if (samples.empty()) return out;
  const auto n = static_cast<double>(samples.size());
  for (const double s : samples) out.mean_s += s;
  out.mean_s /= n;
  for (const double s : samples) {
    out.stddev_s += (s - out.mean_s) * (s - out.mean_s);
  }
  out.stddev_s = std::sqrt(out.stddev_s / n);
  out.median_s = median(std::move(samples));
  return out;
}

/// Run `body` `reps` times; returns mean, median, and standard deviation of
/// wall time.
template <typename F>
RunStat repeat(int reps, F&& body) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = cilkm::now_ns();
    body();
    const auto t1 = cilkm::now_ns();
    samples.push_back(static_cast<double>(t1 - t0) / 1e9);
  }
  return stats_of(std::move(samples));
}

/// Run `body` under `sched` `reps` times — one sched.run() per rep on the
/// persistent pool. warm_up() first, so every sample times the parallel
/// mechanism (wake, steal, reduce, quiesce) and none pays thread creation.
template <typename F>
RunStat repeat(cilkm::Scheduler& sched, int reps, F&& body) {
  sched.warm_up();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = cilkm::now_ns();
    sched.run([&] { body(); });
    const auto t1 = cilkm::now_ns();
    samples.push_back(static_cast<double>(t1 - t0) / 1e9);
  }
  return stats_of(std::move(samples));
}

/// Strict base-10 parse: the whole string must be one integer. Rejects the
/// silent results std::atol gives for garbage like "abc" or "12abc".
inline bool parse_long_strict(const char* text, long* out) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = v;
  return true;
}

/// Integer flag lookup. A named flag with a missing, non-numeric, partially
/// numeric, or negative value is a hard error (exit 2) rather than a
/// silently substituted default (every bench flag is a count or a size).
inline long flag_int(int argc, char** argv, const char* name, long def) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) != 0) continue;
    if (i + 1 >= argc) {
      std::fprintf(stderr, "missing value for %s\n", name);
      std::exit(2);
    }
    long v = 0;
    if (!parse_long_strict(argv[i + 1], &v) || v < 0) {
      std::fprintf(stderr,
                   "bad value '%s' for %s (want a non-negative integer)\n",
                   argv[i + 1], name);
      std::exit(2);
    }
    return v;
  }
  return def;
}

// ---------------------------------------------------------------------------
// Paper Figure 4 microbenchmark kernels.
//
// add-n: summing 1..x into n add-reducers in parallel.
// min-n/max-n: processing x pseudorandom values in parallel, accumulating
//   the min/max into n reducers.
// For each, x is chosen by the caller so that the number of lookups is the
// same across n (the paper's setup).
// ---------------------------------------------------------------------------

inline std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  return x;
}

template <typename Policy>
struct MicroBench {
  template <template <typename, typename> class Red>
  using Bank = std::vector<std::unique_ptr<Red<std::uint64_t, Policy>>>;

  /// One lookup+update per iteration, reducer chosen round-robin. A nonzero
  /// yield_period inserts sched_yield points: on an oversubscribed host this
  /// provokes the preemption-driven steals that 16 real cores would produce
  /// organically, so the reduce-overhead benches (Figures 7–8) see a
  /// realistic steal rate. Execution-time benches keep it at 0.
  static void add_n(unsigned n, std::uint64_t x, std::int64_t grain,
                    std::int64_t yield_period = 0) {
    std::vector<std::unique_ptr<cilkm::reducer_opadd<std::uint64_t, Policy>>> r;
    r.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      r.push_back(
          std::make_unique<cilkm::reducer_opadd<std::uint64_t, Policy>>());
    }
    const std::uint64_t mask = n - 1;  // n is a power of two
    cilkm::parallel_for(0, static_cast<std::int64_t>(x), grain,
                        [&](std::int64_t i) {
                          *(*r[static_cast<std::size_t>(i) & mask]) += 1;
                          if (yield_period != 0 && i % yield_period == 0) {
                            std::this_thread::yield();
                          }
                        });
    // Consume results so the work cannot be elided.
    std::uint64_t total = 0;
    for (auto& red : r) total += red->get_value();
    if (total != x) std::abort();
  }

  static void min_n(unsigned n, std::uint64_t x, std::int64_t grain) {
    std::vector<std::unique_ptr<cilkm::reducer_min<std::uint64_t, Policy>>> r;
    r.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      r.push_back(
          std::make_unique<cilkm::reducer_min<std::uint64_t, Policy>>());
    }
    const std::uint64_t mask = n - 1;
    cilkm::parallel_for(0, static_cast<std::int64_t>(x), grain,
                        [&](std::int64_t i) {
                          const std::uint64_t v = mix(static_cast<std::uint64_t>(i));
                          auto& view = r[static_cast<std::size_t>(i) & mask]->view();
                          if (v < view) view = v;
                        });
    std::uint64_t lo = ~0ull;
    for (auto& red : r) lo = std::min(lo, red->get_value());
    if (lo == ~0ull) std::abort();
  }

  static void max_n(unsigned n, std::uint64_t x, std::int64_t grain) {
    std::vector<std::unique_ptr<cilkm::reducer_max<std::uint64_t, Policy>>> r;
    r.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      r.push_back(
          std::make_unique<cilkm::reducer_max<std::uint64_t, Policy>>());
    }
    const std::uint64_t mask = n - 1;
    cilkm::parallel_for(0, static_cast<std::int64_t>(x), grain,
                        [&](std::int64_t i) {
                          const std::uint64_t v = mix(static_cast<std::uint64_t>(i));
                          auto& view = r[static_cast<std::size_t>(i) & mask]->view();
                          if (v > view) view = v;
                        });
    std::uint64_t hi = 0;
    for (auto& red : r) hi = std::max(hi, red->get_value());
    if (hi == 0) std::abort();
  }
};

/// add-base-n: identical loop shape but updating a plain array — the
/// control that isolates lookup overhead (paper Figure 6).
inline void add_base_n(unsigned n, std::uint64_t x, std::int64_t grain) {
  std::vector<std::uint64_t> cells(n, 0);
  volatile std::uint64_t* raw = cells.data();
  const std::uint64_t mask = n - 1;
  cilkm::parallel_for(0, static_cast<std::int64_t>(x), grain,
                      [&](std::int64_t i) {
                        raw[static_cast<std::size_t>(i) & mask] =
                            raw[static_cast<std::size_t>(i) & mask] + 1;
                      });
  std::uint64_t total = 0;
  for (unsigned i = 0; i < n; ++i) total += raw[i];
  if (total != x) std::abort();
}

}  // namespace bench
