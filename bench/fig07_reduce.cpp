// Figure 7: reduce overhead — the overheads reducers incur only during
// parallel execution (view creation, view insertion, hypermerges with their
// reduce operations, and, for Cilk-M, view transferal) — measured by
// instrumentation inside the runtime while running add-n on 16 workers.
//
//   ./fig07_reduce [--lookups N] [--reps R] [--procs P]
#include <cstdio>

#include "harness.hpp"
#include "util/stats.hpp"

namespace {

struct Overheads {
  double create_us = 0, insert_us = 0, transfer_us = 0, merge_us = 0;
  std::uint64_t steals = 0;
  double total_us() const {
    return create_us + insert_us + transfer_us + merge_us;
  }
};

template <typename Policy>
Overheads measure(cilkm::Scheduler& sched, unsigned n, std::uint64_t lookups,
                  int reps) {
  using cilkm::StatCounter;
  Overheads out;
  for (int r = 0; r < reps; ++r) {
    sched.reset_stats();
    sched.run([&] {
      bench::MicroBench<Policy>::add_n(n, lookups, /*grain=*/1024,
                                       /*yield_period=*/2048);
    });
    const auto stats = sched.aggregate_stats();
    out.create_us += static_cast<double>(stats[StatCounter::kViewCreateNs]) / 1e3;
    out.insert_us += static_cast<double>(stats[StatCounter::kViewInsertNs]) / 1e3;
    out.transfer_us +=
        static_cast<double>(stats[StatCounter::kViewTransferNs]) / 1e3;
    out.merge_us += static_cast<double>(stats[StatCounter::kHypermergeNs]) / 1e3;
    out.steals += stats[StatCounter::kSteals];
  }
  out.create_us /= reps;
  out.insert_us /= reps;
  out.transfer_us /= reps;
  out.merge_us /= reps;
  out.steals /= static_cast<std::uint64_t>(reps);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto lookups = static_cast<std::uint64_t>(
      bench::flag_int(argc, argv, "--lookups", 1 << 23));
  const int reps = static_cast<int>(bench::flag_int(argc, argv, "--reps", 5));
  const auto procs =
      static_cast<unsigned>(bench::flag_int(argc, argv, "--procs", 16));

  std::printf("# Figure 7: reduce overhead of add-n on %u workers "
              "(microseconds; mean of %d runs)\n",
              procs, reps);
  std::printf("%-10s %14s %14s %10s %10s %10s\n", "bench", "Cilk-M (us)",
              "Cilk Plus (us)", "ratio", "steals-M", "steals-P");

  bench::JsonReport report("fig07_reduce");
  cilkm::Scheduler sched(procs);
  for (unsigned n = 4; n <= 1024; n *= 2) {
    const auto mm = measure<cilkm::mm_policy>(sched, n, lookups, reps);
    const auto hyper = measure<cilkm::hypermap_policy>(sched, n, lookups, reps);
    std::printf("add-%-6u %14.1f %14.1f %9.2fx %10llu %10llu\n", n,
                mm.total_us(), hyper.total_us(),
                hyper.total_us() / (mm.total_us() > 0 ? mm.total_us() : 1e-9),
                static_cast<unsigned long long>(mm.steals),
                static_cast<unsigned long long>(hyper.steals));
    const auto add_row = [&](const char* name, const Overheads& o) {
      report.add(name, n,
                 {{"create_us", o.create_us},
                  {"insert_us", o.insert_us},
                  {"transfer_us", o.transfer_us},
                  {"merge_us", o.merge_us},
                  {"total_us", o.total_us()},
                  {"steals", static_cast<double>(o.steals)}});
    };
    add_row("mm", mm);
    add_row("hypermap", hyper);
  }
  std::printf("# paper: Cilk Plus reduce overhead much higher, gap grows "
              "with n (view insertion dominates); comparable steal counts\n");
  return 0;
}
