// Ablation benchmarks for the design choices DESIGN.md calls out:
//
//  A. The SPA log-overflow rule (paper Section 6): once more than 120 views
//     are inserted, the runtime stops logging and sequences the whole
//     248-slot view array. We sweep valid-view counts and compare
//     log-driven vs full-walk sequencing, locating the crossover that
//     justifies the paper's 2:1 view:log sizing.
//
//  B. View transferal strategies (paper Section 7): the chosen *copying*
//     strategy (copy up to 248 pointers) vs the cost floor of the *mapping*
//     strategy (at least one syscall round trip per remap, measured with an
//     actual mmap/munmap pair as the cheapest kernel-crossing proxy).
//
//  C. Hypermap growth: insertion cost including expansions, as a function
//     of the number of reducers — the "view insertion dominates" effect of
//     Figure 7.
//
//   ./abl_spa [--reps R]
#include <sys/mman.h>

#include <cstdio>

#include "harness.hpp"
#include "hypermap/hypermap.hpp"
#include "spa/spa_map.hpp"

// Minimal keep-alive to stop the optimiser deleting the ablation loops.
void benchmark_keep(void* p);

namespace {

using namespace cilkm::spa;

double sweep_time(SpaPage& page, int reps, std::uint64_t* sink) {
  const auto t0 = cilkm::now_ns();
  for (int r = 0; r < reps; ++r) {
    std::uint64_t local = 0;
    page.for_each_valid([&](std::uint32_t idx, ViewSlot&) { local += idx; });
    *sink += local;
  }
  const auto t1 = cilkm::now_ns();
  return static_cast<double>(t1 - t0) / reps;
}

void ablation_log_overflow(int reps, bench::JsonReport& report) {
  std::printf("# Ablation A: SPA sequencing, log-driven vs full-array walk "
              "(ns per sweep of one page)\n");
  std::printf("%-8s %14s %14s %10s\n", "views", "log-driven", "full-walk",
              "ratio");
  static int dummy;
  std::uint64_t sink = 0;
  for (const std::uint32_t valid : {4u, 16u, 60u, 120u, 180u, 248u}) {
    SpaPage logged;
    logged.clear();
    const std::uint32_t stride = kViewsPerPage / valid;
    for (std::uint32_t i = 0; i < valid; ++i) {
      const std::uint32_t idx = (i * stride) % kViewsPerPage;
      if (logged.views[idx].empty()) {
        logged.views[idx] = {&dummy, nullptr};
        if (valid <= kLogCapacity) {
          logged.note_insert(idx);  // log-tracked
        } else {
          ++logged.num_valid;  // install without logging...
        }
      }
    }
    if (valid > kLogCapacity) logged.num_logs = kLogsOverflowed;

    SpaPage walked = logged;
    walked.num_logs = kLogsOverflowed;  // force the full-array walk

    const double t_log = sweep_time(logged, reps, &sink);
    const double t_walk = sweep_time(walked, reps, &sink);
    std::printf("%-8u %14.1f %14.1f %9.2fx%s\n", valid, t_log, t_walk,
                t_walk / t_log,
                valid > kLogCapacity ? "   (log overflowed: both full walks)"
                                     : "");
    // Past the log capacity both columns are full walks; flag it so
    // cross-PR tracking doesn't chart walk timings as log-driven ones.
    const double overflowed = valid > kLogCapacity ? 1.0 : 0.0;
    report.add("seq:log", valid,
               {{"ns_per_sweep", t_log}, {"log_overflowed", overflowed}});
    report.add("seq:walk", valid,
               {{"ns_per_sweep", t_walk}, {"log_overflowed", overflowed}});
  }
  if (sink == 0) std::abort();
  std::printf("# full walk costs ~flat 248 probes; the log wins below the "
              "120-entry cap, beyond it the walk is amortised (2:1 rule)\n\n");
}

void ablation_transferal(int reps, bench::JsonReport& report) {
  std::printf("# Ablation B: view transferal, copying strategy vs syscall "
              "floor of the mapping strategy (ns per page)\n");
  std::printf("%-8s %14s %18s\n", "views", "copy (ns)", "mmap+munmap (ns)");
  static int dummy;
  for (const std::uint32_t valid : {4u, 32u, 120u, 248u}) {
    SpaPage src;
    src.clear();
    for (std::uint32_t i = 0; i < valid; ++i) {
      src.views[i] = {&dummy, nullptr};
      src.note_insert(i);
    }
    SpaPage dst;
    dst.clear();
    // Copying strategy: sequence the source, copy pointer pairs, zero them
    // (then restore for the next rep).
    const auto t0 = cilkm::now_ns();
    for (int r = 0; r < reps; ++r) {
      SpaPage work = src;
      work.for_each_valid([&](std::uint32_t idx, ViewSlot& slot) {
        dst.views[idx] = slot;
        slot = ViewSlot{nullptr, nullptr};
      });
      benchmark_keep(&dst);
    }
    const auto t1 = cilkm::now_ns();
    // Mapping strategy floor: one map + one unmap round trip.
    const auto t2 = cilkm::now_ns();
    for (int r = 0; r < reps; ++r) {
      void* p = ::mmap(nullptr, kPageBytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
      benchmark_keep(p);
      ::munmap(p, kPageBytes);
    }
    const auto t3 = cilkm::now_ns();
    const double copy_ns = static_cast<double>(t1 - t0) / reps;
    const double map_ns = static_cast<double>(t3 - t2) / reps;
    std::printf("%-8u %14.1f %18.1f\n", valid, copy_ns, map_ns);
    report.add("transferal:copy", valid, {{"ns_per_page", copy_ns}});
    report.add("transferal:mmap", valid, {{"ns_per_page", map_ns}});
  }
  std::printf("# the paper picks copying: few reducers -> copying a handful "
              "of pointers beats kernel crossings\n\n");
}

void ablation_hypermap_growth(int reps, bench::JsonReport& report) {
  std::printf("# Ablation C: hypermap insertion cost including expansions "
              "(ns per insert, table grown from empty)\n");
  std::printf("%-8s %14s %12s\n", "inserts", "ns/insert", "final-cap");
  static int key_block[4096];
  for (const int n : {4, 16, 64, 256, 1024, 4096}) {
    double total = 0;
    std::size_t cap = 0;
    for (int r = 0; r < reps; ++r) {
      cilkm::hypermap::HyperMap map;
      const auto t0 = cilkm::now_ns();
      for (int i = 0; i < n; ++i) map.insert(&key_block[i], &key_block[i], nullptr);
      const auto t1 = cilkm::now_ns();
      total += static_cast<double>(t1 - t0) / n;
      cap = map.capacity();
    }
    std::printf("%-8d %14.1f %12zu\n", n, total / reps, cap);
    report.add("hypermap_growth", n,
               {{"ns_per_insert", total / reps},
                {"final_capacity", static_cast<double>(cap)}});
  }
  std::printf("# insertion cost includes rehash-on-expand: the overhead "
              "Figure 7 sees grow with n in Cilk Plus\n");
}

}  // namespace

// Minimal keep-alive to stop the optimiser deleting the ablation loops.
void benchmark_keep(void* p) { asm volatile("" : : "g"(p) : "memory"); }

int main(int argc, char** argv) {
  const int reps = static_cast<int>(bench::flag_int(argc, argv, "--reps", 2000));
  bench::JsonReport report("abl_spa");
  ablation_log_overflow(reps, report);
  ablation_transferal(reps / 10 + 1, report);
  ablation_hypermap_growth(reps / 100 + 1, report);
  return 0;
}
