// Ablation: pooled view allocation (Hoard-style per-worker caches, what the
// runtime uses) vs plain heap new/delete for view-sized objects. View
// creation dominates Cilk-M's reduce overhead (paper Figure 8), so this is
// the allocation path the runtime optimises. Also measures the end-to-end
// effect: reduce overhead of add-n with many steals, which stresses view
// creation/destruction.
//
//   ./abl_views [--reps R]
#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "util/pool_alloc.hpp"
#include "util/stats.hpp"

namespace {

void keep(void* p) { asm volatile("" : : "g"(p) : "memory"); }

double time_alloc_cycle(int iters, bool pooled, std::size_t bytes) {
  auto& pool = cilkm::ViewPool::instance();
  std::vector<void*> held(64, nullptr);
  const auto t0 = cilkm::now_ns();
  for (int i = 0; i < iters; ++i) {
    const std::size_t k = static_cast<std::size_t>(i) & 63;
    if (held[k] != nullptr) {
      if (pooled) {
        pool.deallocate(held[k], bytes);
      } else {
        ::operator delete(held[k]);
      }
    }
    held[k] = pooled ? pool.allocate(bytes) : ::operator new(bytes);
    keep(held[k]);
  }
  for (auto& p : held) {
    if (p != nullptr) {
      if (pooled) {
        pool.deallocate(p, bytes);
      } else {
        ::operator delete(p);
      }
      p = nullptr;
    }
  }
  const auto t1 = cilkm::now_ns();
  return static_cast<double>(t1 - t0) / iters;
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = static_cast<int>(bench::flag_int(argc, argv, "--reps", 5));
  const int iters = 200000;

  std::printf("# Ablation: view allocation, Hoard-style pool vs heap "
              "(ns per alloc/free cycle, %d iterations)\n",
              iters);
  std::printf("%-10s %12s %12s %10s\n", "view-bytes", "pool (ns)", "heap (ns)",
              "speedup");
  for (const std::size_t bytes : {16ul, 32ul, 64ul, 128ul, 256ul}) {
    double pool_ns = 0, heap_ns = 0;
    for (int r = 0; r < reps; ++r) {
      pool_ns += time_alloc_cycle(iters, /*pooled=*/true, bytes);
      heap_ns += time_alloc_cycle(iters, /*pooled=*/false, bytes);
    }
    std::printf("%-10zu %12.1f %12.1f %9.2fx\n", bytes, pool_ns / reps,
                heap_ns / reps, heap_ns / pool_ns);
  }

  // End-to-end: reduce overhead (which includes view creation) under a
  // steal-heavy add-n run.
  std::printf("\n# End-to-end: Cilk-M view-creation overhead in a "
              "steal-heavy add-256 run (16 workers)\n");
  cilkm::Scheduler sched(16);
  double create_us = 0;
  std::uint64_t views = 0;
  for (int r = 0; r < reps; ++r) {
    sched.reset_stats();
    sched.run([&] {
      bench::MicroBench<cilkm::mm_policy>::add_n(256, 1 << 20, 1024, 2048);
    });
    const auto stats = sched.aggregate_stats();
    create_us +=
        static_cast<double>(stats[cilkm::StatCounter::kViewCreateNs]) / 1e3;
    views += stats[cilkm::StatCounter::kViewsCreated];
  }
  std::printf("view creation: %.1f us for %llu views (%.0f ns/view, pooled)\n",
              create_us / reps,
              static_cast<unsigned long long>(views / static_cast<std::uint64_t>(reps)),
              1e3 * create_us / static_cast<double>(views));
  return 0;
}
