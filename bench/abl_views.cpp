// Ablation: pooled view allocation (Hoard-style per-worker caches, what the
// runtime uses) vs plain heap new/delete for view-sized objects. View
// creation dominates Cilk-M's reduce overhead (paper Figure 8), so this is
// the allocation path the runtime optimises. Also measures the end-to-end
// effect: reduce overhead of add-n with many steals, which stresses view
// creation/destruction.
//
//   ./abl_views [--reps R]
#include <cstdio>
#include <vector>

#include "harness.hpp"
#include "util/pool_alloc.hpp"
#include "util/stats.hpp"

namespace {

void keep(void* p) { asm volatile("" : : "g"(p) : "memory"); }

double time_alloc_cycle(int iters, bool pooled, std::size_t bytes) {
  auto& pool = cilkm::ViewPool::instance();
  std::vector<void*> held(64, nullptr);
  const auto t0 = cilkm::now_ns();
  for (int i = 0; i < iters; ++i) {
    const std::size_t k = static_cast<std::size_t>(i) & 63;
    if (held[k] != nullptr) {
      if (pooled) {
        pool.deallocate(held[k], bytes);
      } else {
        ::operator delete(held[k]);
      }
    }
    held[k] = pooled ? pool.allocate(bytes) : ::operator new(bytes);
    keep(held[k]);
  }
  for (auto& p : held) {
    if (p != nullptr) {
      if (pooled) {
        pool.deallocate(p, bytes);
      } else {
        ::operator delete(p);
      }
      p = nullptr;
    }
  }
  const auto t1 = cilkm::now_ns();
  return static_cast<double>(t1 - t0) / iters;
}

template <typename Policy>
void end_to_end(cilkm::Scheduler& sched, int reps, bench::JsonReport& report) {
  const char* name = cilkm::policy_traits<Policy>::name;
  double total_s = 0, create_us = 0, insert_us = 0;
  std::uint64_t views = 0;
  for (int r = 0; r < reps; ++r) {
    sched.reset_stats();
    const auto t0 = cilkm::now_ns();
    sched.run([&] {
      bench::MicroBench<Policy>::add_n(256, 1 << 20, 1024, 2048);
    });
    const auto t1 = cilkm::now_ns();
    total_s += static_cast<double>(t1 - t0) / 1e9;
    const auto stats = sched.aggregate_stats();
    create_us +=
        static_cast<double>(stats[cilkm::StatCounter::kViewCreateNs]) / 1e3;
    insert_us +=
        static_cast<double>(stats[cilkm::StatCounter::kViewInsertNs]) / 1e3;
    views += stats[cilkm::StatCounter::kViewsCreated];
  }
  total_s /= reps;
  create_us /= reps;
  insert_us /= reps;
  views /= static_cast<std::uint64_t>(reps);
  std::printf("%-10s %12.4f %12.1f %12.1f %10llu\n", name, total_s, create_us,
              insert_us, static_cast<unsigned long long>(views));
  report.add(std::string("e2e:") + name, 256,
             {{"time_s", total_s},
              {"view_create_us", create_us},
              {"view_insert_us", insert_us},
              {"views", static_cast<double>(views)}});
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = static_cast<int>(bench::flag_int(argc, argv, "--reps", 5));
  const int iters = 200000;
  bench::JsonReport report("abl_views");

  std::printf("# Ablation: view allocation, Hoard-style pool vs heap "
              "(ns per alloc/free cycle, %d iterations)\n",
              iters);
  std::printf("%-10s %12s %12s %10s\n", "view-bytes", "pool (ns)", "heap (ns)",
              "speedup");
  for (const std::size_t bytes : {16ul, 32ul, 64ul, 128ul, 256ul}) {
    double pool_ns = 0, heap_ns = 0;
    for (int r = 0; r < reps; ++r) {
      pool_ns += time_alloc_cycle(iters, /*pooled=*/true, bytes);
      heap_ns += time_alloc_cycle(iters, /*pooled=*/false, bytes);
    }
    std::printf("%-10zu %12.1f %12.1f %9.2fx\n", bytes, pool_ns / reps,
                heap_ns / reps, heap_ns / pool_ns);
    report.add("alloc:pool", static_cast<double>(bytes),
               {{"ns_per_cycle", pool_ns / reps}});
    report.add("alloc:heap", static_cast<double>(bytes),
               {{"ns_per_cycle", heap_ns / reps}});
  }

  // End-to-end: reduce overhead (which includes view creation) under a
  // steal-heavy add-256 run, for each view-store policy.
  std::printf("\n# End-to-end: steal-heavy add-256 run (16 workers), per "
              "view-store policy\n");
  std::printf("%-10s %12s %12s %12s %10s\n", "policy", "time (s)",
              "create (us)", "insert (us)", "views");
  cilkm::Scheduler sched(16);
  end_to_end<cilkm::mm_policy>(sched, reps, report);
  end_to_end<cilkm::hypermap_policy>(sched, reps, report);
  end_to_end<cilkm::flat_policy>(sched, reps, report);
  return 0;
}
