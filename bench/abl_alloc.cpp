// Ablation: the tagged internal allocator against raw operator new on a
// fig08-style view-creation load — view-sized blocks churned through a
// small live window (view creation is the dominant reduce overhead the
// paper's Figure 8 breaks down), plus a cross-thread handoff phase (the
// hypermerge frees the right-hand views wherever the join happens to land,
// so cross-worker frees are part of the steady state, not a corner case).
// Series:
//
//   pooled/pin     — InternalAlloc magazines, threads pinned + node-bound
//   pooled/nopin   — InternalAlloc magazines, OS placement
//   malloc/pin     — operator new/delete, threads pinned
//   malloc/nopin   — operator new/delete, OS placement
//
// x is the thread count (1 and --workers). Pooled rows also report the
// magazine refill/flush traffic so the batch-exchange rate is visible.
//
//   ./abl_alloc [--reps R] [--workers P] [--iters N]
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <new>
#include <thread>
#include <vector>

#include "harness.hpp"
#include "mem/internal_alloc.hpp"
#include "topo/placement.hpp"
#include "topo/topology.hpp"

namespace {

constexpr std::size_t kViewBytes = 48;  // a typical reducer view
constexpr std::size_t kWindow = 64;     // live blocks per thread (churn depth)

struct Mode {
  const char* series;
  bool pooled;
  bool pin;
};

/// One thread's slice: local churn through a ring of kWindow live blocks,
/// then produce a handoff batch that a *different* thread frees.
void thread_body(const Mode& mode, unsigned tid, unsigned threads, long iters,
                 std::vector<std::vector<void*>>& handoff,
                 std::atomic<unsigned>& phase_barrier) {
  const cilkm::topo::Topology& topo = cilkm::topo::Topology::machine();
  if (mode.pin && topo.num_cpus() > 0) {
    const unsigned cpu = topo.cpus()[tid % topo.num_cpus()].cpu;
    cilkm::topo::pin_current_thread(cpu);
    if (mode.pooled) cilkm::mem::InternalAlloc::bind_current_thread(cpu);
  }
  cilkm::mem::InternalAlloc& pool = cilkm::mem::InternalAlloc::instance();
  const auto tag = cilkm::mem::AllocTag::kViews;
  auto alloc = [&]() -> void* {
    return mode.pooled ? pool.allocate(kViewBytes, tag)
                       : ::operator new(kViewBytes);
  };
  auto dealloc = [&](void* p) {
    if (mode.pooled) {
      pool.deallocate(p, kViewBytes, tag);
    } else {
      ::operator delete(p);
    }
  };

  // Phase A: windowed churn (identity-create / collapse-destroy traffic).
  void* ring[kWindow] = {};
  for (long i = 0; i < iters; ++i) {
    const std::size_t slot = static_cast<std::size_t>(i) % kWindow;
    if (ring[slot] != nullptr) dealloc(ring[slot]);
    void* p = alloc();
    std::memset(p, 0x5a, 8);  // touch: first-touch page placement
    ring[slot] = p;
  }
  for (void*& p : ring) {
    if (p != nullptr) dealloc(p);
    p = nullptr;
  }

  // Phase B: cross-thread frees. Produce a batch, wait for everyone, then
  // free the neighbour's batch (alloc on W_i, free on W_i+1).
  std::vector<void*>& mine = handoff[tid];
  mine.reserve(static_cast<std::size_t>(iters) / 8);
  for (long i = 0; i < iters / 8; ++i) mine.push_back(alloc());
  phase_barrier.fetch_add(1, std::memory_order_acq_rel);
  while (phase_barrier.load(std::memory_order_acquire) < threads) {
    std::this_thread::yield();
  }
  for (void* p : handoff[(tid + 1) % threads]) dealloc(p);
}

void run_mode(const Mode& mode, unsigned threads, int reps, long iters,
              bench::JsonReport& report) {
  const auto before = cilkm::mem::InternalAlloc::instance().tag_stats(
      cilkm::mem::AllocTag::kViews);
  const bench::RunStat stat = bench::repeat(reps, [&] {
    std::vector<std::vector<void*>> handoff(threads);
    std::atomic<unsigned> phase_barrier{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        thread_body(mode, t, threads, iters, handoff, phase_barrier);
      });
    }
    for (auto& th : pool) th.join();
  });
  const auto after = cilkm::mem::InternalAlloc::instance().tag_stats(
      cilkm::mem::AllocTag::kViews);
  const double ops = static_cast<double>(threads) *
                     (static_cast<double>(iters) +
                      static_cast<double>(iters) / 8) *
                     reps;
  const double mops =
      stat.median_s > 0 ? ops / reps / stat.median_s / 1e6 : 0.0;
  std::printf("%-14s %4u %12.6f %10.2f %10llu %10llu\n", mode.series, threads,
              stat.median_s, mops,
              static_cast<unsigned long long>(after.refills - before.refills),
              static_cast<unsigned long long>(after.flushes - before.flushes));
  report.add(std::string(mode.series), static_cast<double>(threads),
             {{"median_s", stat.median_s},
              {"stddev_s", stat.stddev_s},
              {"mops", mops},
              {"refills", static_cast<double>(after.refills - before.refills)},
              {"flushes", static_cast<double>(after.flushes - before.flushes)}});
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = static_cast<int>(bench::flag_int(argc, argv, "--reps", 5));
  const auto workers =
      static_cast<unsigned>(bench::flag_int(argc, argv, "--workers", 4));
  const long iters = bench::flag_int(argc, argv, "--iters", 200000);

  const cilkm::topo::Topology& topo = cilkm::topo::Topology::machine();
  std::printf("# Ablation: pooled (tagged magazines) vs malloc view churn\n");
  std::printf("# machine: %s, shards=%u\n", topo.describe().c_str(),
              cilkm::mem::InternalAlloc::instance().num_shards());
  std::printf("%-14s %4s %12s %10s %10s %10s\n", "series", "T", "median_s",
              "Mops/s", "refills", "flushes");

  bench::JsonReport report("abl_alloc");
  report.add("machine:" + topo.describe(), static_cast<double>(topo.num_cpus()),
             {{"nodes", static_cast<double>(topo.num_nodes())},
              {"shards", static_cast<double>(
                   cilkm::mem::InternalAlloc::instance().num_shards())}});

  const Mode modes[] = {
      {"pooled/pin", true, true},
      {"pooled/nopin", true, false},
      {"malloc/pin", false, true},
      {"malloc/nopin", false, false},
  };
  std::vector<unsigned> thread_counts{1};
  if (workers > 1) thread_counts.push_back(workers);
  for (const unsigned threads : thread_counts) {
    for (const Mode& mode : modes) {
      run_mode(mode, threads, reps, iters, report);
    }
  }
  return 0;
}
