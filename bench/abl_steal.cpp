// Ablation: steal-half deques, one knob at a time on the registered
// steal-heavy workloads (fib, nqueens, pbfs — the self-checking scenarios
// of src/workloads/). Series, per workload:
//
//   <w>/sb1/wb1    — classic single-frame Chase–Lev stealing, single wakes
//                    (the PR 4 steal discipline)
//   <w>/sb2/wb1    — steal up to 2 frames per theft
//   <w>/sbhalf/wb1 — steal ceil(available/2) per theft (the new default cap)
//   <w>/sb1/wb4    — wake batching alone, for attribution
//   <w>/sbhalf/wb4 — steal-half + batched wake-ups combined
//
// Each series reports the median wall time plus the counters that make the
// policy visible: genuine thefts, frames acquired (stolen_frames / steals
// = mean batch size), and the per-proximity-tier steal-latency totals. The
// console additionally prints the tier-0 latency histogram so fence
// amortisation is visible without post-processing. The JSON keeps the
// machine's describe() string so a cross-host comparison knows what it is
// looking at (bench_diff.py skips comparison when the machine changed).
//
//   ./abl_steal [--reps R] [--workers P] [--scale S]
#include <cstdio>
#include <string>
#include <vector>

#include "harness.hpp"
#include "runtime/scheduler.hpp"
#include "topo/topology.hpp"
#include "util/stats.hpp"
#include "workloads/workload.hpp"

namespace {

struct Config {
  const char* suffix;  // "/sb1/wb1" etc.
  cilkm::rt::SchedulerOptions options;
};

void run_config(const cilkm::workloads::Workload& workload, const Config& cfg,
                unsigned workers, int reps, unsigned scale,
                bench::JsonReport& report) {
  cilkm::rt::Scheduler sched(workers, cfg.options);
  sched.warm_up();

  cilkm::workloads::RunConfig run_cfg;
  run_cfg.workers = workers;
  run_cfg.scale = scale;
  run_cfg.scheduler = &sched;

  const auto policy = cilkm::workloads::PolicyKind::kMm;
  (void)workload.run_policy(policy, run_cfg);  // warm the pool + view stores
  sched.reset_stats();

  std::vector<double> samples;
  bool verified = true;
  for (int rep = 0; rep < reps; ++rep) {
    const auto result = workload.run_policy(policy, run_cfg);
    samples.push_back(result.seconds);
    verified = verified && result.verified;
  }
  const bench::RunStat stat = bench::stats_of(std::move(samples));
  const auto stats = sched.aggregate_stats();
  const auto steals = stats[cilkm::StatCounter::kSteals];
  const auto frames = stats[cilkm::StatCounter::kStolenFrames];
  const double frames_per_steal =
      steals == 0 ? 0.0
                  : static_cast<double>(frames) / static_cast<double>(steals);

  const std::string series = workload.name + cfg.suffix;
  std::printf("%-20s %6s %12.6f %10llu %12llu %8.2f   [", series.c_str(),
              verified ? "ok" : "FAIL", stat.median_s,
              static_cast<unsigned long long>(steals),
              static_cast<unsigned long long>(frames), frames_per_steal);
  // Tier-0 (nearest-victim) latency histogram, log2 buckets from 128 ns.
  for (std::size_t b = 0; b < cilkm::WorkerStats::kStealLatBuckets; ++b) {
    std::printf("%s%llu", b == 0 ? "" : " ",
                static_cast<unsigned long long>(stats.steal_lat_hist[0][b]));
  }
  std::printf("]\n");

  report.add(series, static_cast<double>(workers),
             {{"median_s", stat.median_s},
              {"stddev_s", stat.stddev_s},
              {"verified", verified ? 1.0 : 0.0},
              {"steals", static_cast<double>(steals)},
              {"stolen_frames", static_cast<double>(frames)},
              {"frames_per_steal", frames_per_steal},
              {"steal_ns_t0", static_cast<double>(stats.steal_lat_ns[0])},
              {"steal_ns_t1", static_cast<double>(stats.steal_lat_ns[1])},
              {"steal_ns_t2", static_cast<double>(stats.steal_lat_ns[2])}});
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = static_cast<int>(bench::flag_int(argc, argv, "--reps", 5));
  const auto workers =
      static_cast<unsigned>(bench::flag_int(argc, argv, "--workers", 8));
  const auto scale =
      static_cast<unsigned>(bench::flag_int(argc, argv, "--scale", 1));

  const cilkm::topo::Topology& topo = cilkm::topo::Topology::machine();
  std::printf("# Ablation: steal-half batch size x wake batching\n");
  std::printf("# machine: %s, P=%u, scale=%u\n", topo.describe().c_str(),
              workers, scale);
  std::printf("%-20s %6s %12s %10s %12s %8s   %s\n", "series", "verify",
              "median_s", "steals", "stolen_frm", "frm/stl",
              "t0 latency histogram (128ns log2 buckets)");

  bench::JsonReport report("abl_steal");
  report.add("machine:" + topo.describe(), static_cast<double>(topo.num_cpus()),
             {{"cores", static_cast<double>(topo.num_cores())},
              {"packages", static_cast<double>(topo.num_packages())}});

  std::vector<Config> configs;
  {
    Config sb1{"/sb1/wb1", {}};
    sb1.options.steal_batch = 1;
    sb1.options.wake_batch = 1;
    configs.push_back(sb1);

    Config sb2{"/sb2/wb1", {}};
    sb2.options.steal_batch = 2;
    sb2.options.wake_batch = 1;
    configs.push_back(sb2);

    Config sbhalf{"/sbhalf/wb1", {}};
    sbhalf.options.steal_batch = 0;  // half
    sbhalf.options.wake_batch = 1;
    configs.push_back(sbhalf);

    Config wb4{"/sb1/wb4", {}};
    wb4.options.steal_batch = 1;
    wb4.options.wake_batch = 4;
    configs.push_back(wb4);

    Config both{"/sbhalf/wb4", {}};
    both.options.steal_batch = 0;  // half
    both.options.wake_batch = 4;
    configs.push_back(both);
  }

  const char* names[] = {"fib", "nqueens", "pbfs"};
  cilkm::workloads::Registry& registry = cilkm::workloads::Registry::instance();
  for (const char* name : names) {
    const cilkm::workloads::Workload* workload = registry.find(name);
    if (workload == nullptr) {
      std::fprintf(stderr, "abl_steal: workload '%s' not registered\n", name);
      return 1;
    }
    for (const Config& cfg : configs) {
      run_config(*workload, cfg, workers, reps, scale, report);
    }
  }
  return 0;
}
