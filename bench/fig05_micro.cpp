// Figure 5: execution times of the add-n / min-n / max-n microbenchmarks
// with n ∈ {4, 16, 64, 256, 1024} reducers under Cilk-M (memory-mapped) and
// Cilk Plus (hypermap), on (a) a single processor and (b) 16 processors.
// The lookup count is held constant across n, as in the paper.
//
//   ./fig05_micro [--lookups N] [--procs P] [--reps R]
#include <cstdio>

#include "harness.hpp"

namespace {

constexpr unsigned kNs[] = {4, 16, 64, 256, 1024};

template <typename Policy>
double run_kernel(cilkm::Scheduler& sched, const char* kernel, unsigned n,
                  std::uint64_t lookups, std::int64_t grain, int reps) {
  // This figure reports a Cilk Plus / Cilk-M RATIO, so the reps are timed
  // inside one run() on the persistent pool: the per-run dispatch constant
  // stays out of the samples (it would compress the ratio toward 1 at
  // small --lookups), and no sample pays thread creation.
  double mean = 0;
  sched.run([&] {
    mean = bench::repeat(reps, [&] {
             using MB = bench::MicroBench<Policy>;
             if (kernel[0] == 'a') {
               MB::add_n(n, lookups, grain);
             } else if (kernel[0] == 'm' && kernel[1] == 'i') {
               MB::min_n(n, lookups, grain);
             } else {
               MB::max_n(n, lookups, grain);
             }
           }).mean_s;
  });
  return mean;
}

}  // namespace

int main(int argc, char** argv) {
  const auto lookups = static_cast<std::uint64_t>(
      bench::flag_int(argc, argv, "--lookups", 1 << 24));
  const auto procs =
      static_cast<unsigned>(bench::flag_int(argc, argv, "--procs", 0));
  const int reps = static_cast<int>(bench::flag_int(argc, argv, "--reps", 3));
  const std::int64_t grain = 2048;

  const char* kernels[] = {"add", "min", "max"};
  bench::JsonReport report("fig05_micro");

  for (const unsigned p : {1u, 16u}) {
    if (procs != 0 && p != procs) continue;
    std::printf("# Figure 5%s: microbenchmark execution times, %u worker(s), "
                "%llu lookups\n",
                p == 1 ? "(a)" : "(b)", p,
                static_cast<unsigned long long>(lookups));
    std::printf("%-10s %14s %14s %10s\n", "bench", "Cilk-M (s)",
                "Cilk Plus (s)", "ratio");
    cilkm::Scheduler sched(p);
    for (const char* kernel : kernels) {
      for (const unsigned n : kNs) {
        const double mm = run_kernel<cilkm::mm_policy>(sched, kernel, n,
                                                       lookups, grain, reps);
        const double hyper = run_kernel<cilkm::hypermap_policy>(
            sched, kernel, n, lookups, grain, reps);
        std::printf("%s-%-6u %14.4f %14.4f %9.2fx\n", kernel, n, mm, hyper,
                    hyper / mm);
        const std::string tag =
            std::string(kernel) + ":p" + std::to_string(p);
        report.add("mm:" + tag, n, {{"time_s", mm}});
        report.add("hypermap:" + tag, n, {{"time_s", hyper}});
      }
    }
    std::printf("# paper: Cilk-M 4-9x faster serial, 3-9x faster on 16 procs\n\n");
  }
  return 0;
}
