// Ablation: the topology subsystem's policy choices, measured one axis at a
// time on a steal-heavy spawn tree. Series:
//
//   uniform/wb1    — uniform random victims, one wake per push (the PR 3
//                    baseline discipline)
//   locality/wb1   — proximity-ordered victims, single wakes
//   locality/wb4   — proximity-ordered victims + wake batches of 4
//   locality/wb4/pin — the full default-plus-pinning configuration
//
// Each series reports the median wall time plus the steal/wake counters
// that make the policy visible: genuine thefts, the local fraction (same
// core or package), and batched wake-ups. On a single-package (or
// container-flattened) host every steal is "local" and the locality rows
// converge to uniform — the JSON keeps the machine's describe() string so
// a cross-host comparison knows what it is looking at.
//
//   ./abl_topology [--reps R] [--workers P]
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "harness.hpp"
#include "topo/topology.hpp"
#include "util/stats.hpp"

namespace {

struct Config {
  const char* series;
  cilkm::rt::SchedulerOptions options;
};

/// Spawn-dense kernel: a fine-grained parallel_for with per-leaf yields, so
/// even an oversubscribed host sees a realistic steal rate (the same trick
/// the reduce-overhead figures use).
void spawn_tree(std::uint64_t items) {
  bench::MicroBench<cilkm::mm_policy>::add_n(64, items, 64, 512);
}

void run_config(const Config& cfg, unsigned workers, int reps,
                std::uint64_t items, bench::JsonReport& report) {
  cilkm::Scheduler sched(workers, cfg.options);
  sched.warm_up();
  sched.run([&] { spawn_tree(items / 8); });  // warm the view stores
  sched.reset_stats();
  const bench::RunStat stat =
      bench::repeat(sched, reps, [&] { spawn_tree(items); });
  const auto stats = sched.aggregate_stats();
  const auto steals = stats[cilkm::StatCounter::kSteals];
  const auto local = stats[cilkm::StatCounter::kLocalSteals];
  const double local_frac =
      steals == 0 ? 1.0 : static_cast<double>(local) / static_cast<double>(steals);
  const auto batch_wakes = stats[cilkm::StatCounter::kBatchWakes];

  std::printf("%-18s %12.6f %10llu %10.3f %12llu\n", cfg.series, stat.median_s,
              static_cast<unsigned long long>(steals), local_frac,
              static_cast<unsigned long long>(batch_wakes));
  report.add(cfg.series, static_cast<double>(workers),
             {{"median_s", stat.median_s},
              {"stddev_s", stat.stddev_s},
              {"steals", static_cast<double>(steals)},
              {"local_frac", local_frac},
              {"batch_wakes", static_cast<double>(batch_wakes)}});
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = static_cast<int>(bench::flag_int(argc, argv, "--reps", 5));
  const auto workers = static_cast<unsigned>(
      bench::flag_int(argc, argv, "--workers", 8));
  const std::uint64_t items = 1 << 20;

  const cilkm::topo::Topology& topo = cilkm::topo::Topology::machine();
  std::printf("# Ablation: steal locality and batched wake-ups\n");
  std::printf("# machine: %s, P=%u\n", topo.describe().c_str(), workers);
  std::printf("%-18s %12s %10s %10s %12s\n", "series", "median_s", "steals",
              "local_frac", "batch_wakes");

  bench::JsonReport report("abl_topology");
  // machine row: num_cpus as x so the trajectory diff can spot host changes.
  report.add("machine:" + topo.describe(), static_cast<double>(topo.num_cpus()),
             {{"cores", static_cast<double>(topo.num_cores())},
              {"packages", static_cast<double>(topo.num_packages())}});

  std::vector<Config> configs;
  {
    Config uniform{"uniform/wb1", {}};
    uniform.options.locality_steal = false;
    uniform.options.wake_batch = 1;
    configs.push_back(uniform);

    Config locality{"locality/wb1", {}};
    locality.options.wake_batch = 1;
    configs.push_back(locality);

    Config batched{"locality/wb4", {}};
    batched.options.wake_batch = 4;
    configs.push_back(batched);

    Config pinned{"locality/wb4/pin", {}};
    pinned.options.wake_batch = 4;
    pinned.options.pin = true;
    configs.push_back(pinned);
  }
  for (const Config& cfg : configs) {
    run_config(cfg, workers, reps, items, report);
  }
  return 0;
}
