// Figure 9: speedup of add-n on Cilk-M (memory-mapped reducers) for
// P ∈ {1, 2, 4, 8, 16} workers and n ∈ {4, 16, 64, 256, 1024}, relative to
// the single-worker execution.
//
// NOTE (EXPERIMENTS.md): this reproduction host has a single physical core,
// so worker counts beyond 1 are oversubscribed OS threads and wall-clock
// speedup cannot exceed ~1x. The figure's claim — that reduce overhead does
// not *degrade* scalability (speedup stays flat-or-better as n grows) — is
// still observable in the relative numbers per column.
//
//   ./fig09_speedup [--lookups N] [--reps R]
#include <cstdio>

#include "harness.hpp"

int main(int argc, char** argv) {
  const auto lookups = static_cast<std::uint64_t>(
      bench::flag_int(argc, argv, "--lookups", 1 << 23));
  const int reps = static_cast<int>(bench::flag_int(argc, argv, "--reps", 3));
  constexpr unsigned kNs[] = {4, 16, 64, 256, 1024};
  constexpr unsigned kProcs[] = {1, 2, 4, 8, 16};

  double base[5] = {};
  bench::JsonReport report("fig09_speedup");

  std::printf("# Figure 9: speedup of add-n over the 1-worker execution "
              "(Cilk-M, %llu lookups)\n",
              static_cast<unsigned long long>(lookups));
  std::printf("%-8s", "P");
  for (const unsigned n : kNs) std::printf(" add-%-8u", n);
  std::printf("\n");

  for (const unsigned p : kProcs) {
    cilkm::Scheduler sched(p);
    std::printf("%-8u", p);
    for (std::size_t ni = 0; ni < std::size(kNs); ++ni) {
      const double mean =
          bench::repeat(sched, reps, [&] {
            bench::MicroBench<cilkm::mm_policy>::add_n(kNs[ni], lookups,
                                                       /*grain=*/1024);
          }).mean_s;
      if (p == 1) base[ni] = mean;
      std::printf(" %12.2f", base[ni] / mean);
      report.add("add-" + std::to_string(kNs[ni]), p,
                 {{"time_s", mean}, {"speedup", base[ni] / mean}});
    }
    std::printf("\n");
  }
  std::printf("# paper (16 real cores): near-linear speedup for all n, "
              "superlinear for add-1024\n");
  return 0;
}
