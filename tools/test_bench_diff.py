#!/usr/bin/env python3
"""Unit tests for bench_diff.py: regression detection, min-abs noise
skipping, one-sided rows, malformed input, and the machine-change skip.

Run directly (python3 tools/test_bench_diff.py) or via ctest, which
registers it as `bench_diff_py`.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_diff  # noqa: E402


def doc(rows, schema="cilkm-bench-v1"):
    return {"schema": schema, "figure": "t", "rows": rows}


def row(series, x, **metrics):
    return {"series": series, "x": x, "metrics": metrics}


class BenchDiffTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)
        self._n = 0

    def write(self, document):
        self._n += 1
        path = os.path.join(self._dir.name, f"bench_{self._n}.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(document, f)
        return path

    def diff(self, base_doc, curr_doc, *extra):
        return bench_diff.main([self.write(base_doc), self.write(curr_doc),
                                *extra])

    def test_identical_files_pass(self):
        d = doc([row("fib/mm", 4, median_s=0.5)])
        self.assertEqual(self.diff(d, d), 0)

    def test_regression_past_threshold_fails(self):
        base = doc([row("fib/mm", 4, median_s=0.5)])
        curr = doc([row("fib/mm", 4, median_s=0.8)])
        self.assertEqual(self.diff(base, curr, "--threshold", "0.25"), 1)

    def test_improvement_and_small_delta_pass(self):
        base = doc([row("fib/mm", 4, median_s=0.5)])
        faster = doc([row("fib/mm", 4, median_s=0.3)])
        self.assertEqual(self.diff(base, faster), 0)
        slightly = doc([row("fib/mm", 4, median_s=0.55)])
        self.assertEqual(self.diff(base, slightly, "--threshold", "0.25"), 0)

    def test_noise_floor_skips_tiny_baselines(self):
        base = doc([row("fib/mm", 4, median_s=1e-6)])
        curr = doc([row("fib/mm", 4, median_s=1e-3)])  # 1000x, but noise
        self.assertEqual(self.diff(base, curr, "--min-abs", "1e-4"), 0)

    def test_one_sided_rows_never_fail(self):
        base = doc([row("gone/mm", 4, median_s=0.5)])
        curr = doc([row("new/mm", 4, median_s=9.5)])
        self.assertEqual(self.diff(base, curr), 0)

    def test_bad_schema_is_usage_error(self):
        good = doc([row("fib/mm", 4, median_s=0.5)])
        bad = doc([], schema="not-a-bench-file")
        with self.assertRaises(SystemExit) as ctx:
            self.diff(good, bad)
        self.assertEqual(ctx.exception.code, 2)

    # ---- machine-row handling ----

    def test_same_machine_still_compares(self):
        machine = row("machine:8 cpus / 4 cores", 8, cores=4)
        base = doc([machine, row("fib/mm", 4, median_s=0.5)])
        curr = doc([machine, row("fib/mm", 4, median_s=0.8)])
        self.assertEqual(self.diff(base, curr, "--threshold", "0.25"), 1)

    def test_changed_machine_skips_comparison(self):
        base = doc([row("machine:8 cpus / 4 cores", 8, cores=4),
                    row("fib/mm", 4, median_s=0.5)])
        # 10x slower on a different host: not comparable, must pass.
        curr = doc([row("machine:2 cpus / 1 cores", 2, cores=1),
                    row("fib/mm", 4, median_s=5.0)])
        self.assertEqual(self.diff(base, curr, "--threshold", "0.25"), 0)

    def test_machine_row_on_one_side_only_still_compares(self):
        # Old artifacts predate machine rows; their absence must not disable
        # the gate.
        base = doc([row("fib/mm", 4, median_s=0.5)])
        curr = doc([row("machine:8 cpus / 4 cores", 8, cores=4),
                    row("fib/mm", 4, median_s=0.8)])
        self.assertEqual(self.diff(base, curr, "--threshold", "0.25"), 1)


if __name__ == "__main__":
    unittest.main()
