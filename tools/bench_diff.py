#!/usr/bin/env python3
"""Compare two cilkm-bench-v1 BENCH_*.json files and flag regressions.

Rows are joined on (series, x); for each joined row the chosen metric
(median_s by default) is compared, and the exit status reports whether any
row regressed past the threshold:

    bench_diff.py baseline.json current.json [--metric median_s]
                  [--threshold 0.25] [--min-abs 1e-4]

Exit status: 0 = no regression, 1 = at least one row regressed,
2 = usage / malformed input. Rows present on only one side are reported but
never fail the diff (workloads and series come and go across PRs), and rows
whose baseline is below --min-abs seconds are skipped as noise (sub-0.1 ms
medians on shared CI runners are timer jitter, not signal).

Benches record the host in a "machine:<describe>" row. When both files
carry machine rows and they differ, the two runs executed on different
hardware and a time comparison is meaningless: the diff prints the two
descriptions, skips every comparison, and exits 0 (CI runner pools rotate
hosts; that must not read as a regression).

The CI bench-smoke job runs this against the previous successful run's
uploaded artifact, so every PR gets a perf-trajectory gate.
"""

import argparse
import json
import sys


def load_rows(path):
    """-> {(series, x): {metric: value}} from one cilkm-bench-v1 file."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"bench_diff: cannot read {path}: {err}", file=sys.stderr)
        raise SystemExit(2)
    if doc.get("schema") != "cilkm-bench-v1":
        print(
            f"bench_diff: {path}: unexpected schema {doc.get('schema')!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    rows = {}
    for row in doc.get("rows", []):
        key = (row.get("series"), row.get("x"))
        rows[key] = row.get("metrics", {}) or {}
    return rows


def machine_of(rows):
    """The sorted 'machine:' descriptions recorded in one file's rows."""
    return sorted(
        series
        for series, _x in rows
        if isinstance(series, str) and series.startswith("machine:")
    )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Diff medians between two BENCH_*.json files."
    )
    parser.add_argument("baseline", help="previous run's BENCH_*.json")
    parser.add_argument("current", help="this run's BENCH_*.json")
    parser.add_argument(
        "--metric",
        default="median_s",
        help="metric key to compare (default: median_s)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative regression that fails the diff (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--min-abs",
        type=float,
        default=1e-4,
        help="skip rows whose baseline metric is below this (timer noise)",
    )
    args = parser.parse_args(argv)
    if args.threshold < 0:
        parser.error("--threshold must be >= 0")

    base = load_rows(args.baseline)
    curr = load_rows(args.current)

    base_machine = machine_of(base)
    curr_machine = machine_of(curr)
    if base_machine and curr_machine and base_machine != curr_machine:
        print("bench_diff: machine changed between runs; skipping comparison")
        print(f"  baseline: {', '.join(base_machine)}")
        print(f"  current:  {', '.join(curr_machine)}")
        return 0

    regressions = 0
    compared = 0
    for key in sorted(base.keys() | curr.keys(), key=str):
        series, x = key
        label = f"{series} @ x={x}"
        if key not in base:
            print(f"  NEW    {label}")
            continue
        if key not in curr:
            print(f"  GONE   {label}")
            continue
        b = base[key].get(args.metric)
        c = curr[key].get(args.metric)
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
            continue  # metric absent on one side (e.g. the machine row)
        if b < args.min_abs:
            print(f"  SKIP   {label}: baseline {b:.6g} below --min-abs")
            continue
        compared += 1
        delta = (c - b) / b
        verdict = "ok"
        if delta > args.threshold:
            verdict = "REGRESSED"
            regressions += 1
        print(
            f"  {verdict:<10}{label}: {args.metric} "
            f"{b:.6g} -> {c:.6g} ({delta:+.1%})"
        )

    print(
        f"bench_diff: {compared} row(s) compared, {regressions} regression(s) "
        f"past +{args.threshold:.0%}"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
