#!/usr/bin/env python3
"""Unit tests for trace_check.py: the valid shape, each structural and
grammar violation, the ring_wrapped grammar skip, and unreadable input.

Run directly (python3 tools/test_trace_check.py) or via ctest, which
registers it as `trace_check_py`.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import trace_check  # noqa: E402


def meta(tid, name):
    return {"ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
            "args": {"name": name}}


def instant(tid, ts, name, frame="0x0"):
    return {"ph": "i", "pid": 1, "tid": tid, "s": "t", "name": name,
            "ts": ts, "args": {"frame": frame}}


def slice_x(tid, ts, dur, name="strand"):
    return {"ph": "X", "pid": 1, "tid": tid, "name": name, "ts": ts,
            "dur": dur, "args": {"frame": "0x0"}}


def counter(ts, **args):
    return {"ph": "C", "pid": 1, "tid": 0, "name": "sched", "ts": ts,
            "args": args}


def valid_doc():
    """A minimal two-worker trace: worker 1 steals a frame from worker 0,
    worker 0 parks on the join, the thief resumes it."""
    return {
        "schema": "cilkm-trace-v1",
        "displayTimeUnit": "ms",
        "otherData": {"ring_wrapped": 0, "workers": 2},
        "traceEvents": [
            meta(0, "worker 0"),
            meta(1, "worker 1"),
            slice_x(0, 0.0, 50.0),
            slice_x(1, 11.0, 30.0),
            instant(0, 0.0, "launch"),
            instant(1, 10.0, "steal", "0xf00"),
            instant(1, 11.0, "launch", "0xf00"),
            instant(0, 20.0, "deposit_left", "0xf00"),
            instant(0, 21.0, "park", "0xf00"),
            instant(1, 40.0, "merge", "0xf00"),
            instant(1, 41.0, "resume_by_thief", "0xf00"),
            instant(1, 50.0, "root_done"),
            counter(10.0, steals=1, merges=0, parks=0),
            counter(50.0, steals=1, merges=1, parks=1),
        ],
    }


class TraceCheckTest(unittest.TestCase):
    def setUp(self):
        self._dir = tempfile.TemporaryDirectory()
        self.addCleanup(self._dir.cleanup)
        self._n = 0

    def check(self, doc):
        self._n += 1
        path = os.path.join(self._dir.name, f"trace_{self._n}.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return trace_check.main([path])

    def test_valid_trace_passes(self):
        self.assertEqual(self.check(valid_doc()), 0)

    def test_empty_events_fail(self):
        doc = valid_doc()
        doc["traceEvents"] = []
        self.assertEqual(self.check(doc), 1)
        del doc["traceEvents"]
        self.assertEqual(self.check(doc), 1)

    def test_bad_ph_fails(self):
        doc = valid_doc()
        doc["traceEvents"].append({"ph": "Z", "pid": 1, "tid": 0})
        self.assertEqual(self.check(doc), 1)

    def test_negative_slice_fields_fail(self):
        doc = valid_doc()
        doc["traceEvents"].append(slice_x(0, -1.0, 5.0))
        self.assertEqual(self.check(doc), 1)
        doc = valid_doc()
        doc["traceEvents"].append(slice_x(0, 60.0, -5.0))
        self.assertEqual(self.check(doc), 1)

    def test_overlapping_slices_fail(self):
        doc = valid_doc()
        doc["traceEvents"].append(slice_x(0, 10.0, 20.0))  # inside [0, 50)
        self.assertEqual(self.check(doc), 1)

    def test_instant_timestamps_must_be_monotonic_per_tid(self):
        doc = valid_doc()
        doc["traceEvents"].append(instant(1, 5.0, "merge"))  # before 50.0
        self.assertEqual(self.check(doc), 1)

    def test_decreasing_counter_fails(self):
        doc = valid_doc()
        doc["traceEvents"].append(counter(60.0, steals=0, merges=1, parks=1))
        self.assertEqual(self.check(doc), 1)

    def test_steal_without_launch_fails(self):
        doc = valid_doc()
        doc["traceEvents"].append(instant(1, 60.0, "steal", "0xbad"))
        self.assertEqual(self.check(doc), 1)

    def test_self_pop_must_be_followed_by_launch(self):
        doc = valid_doc()
        doc["traceEvents"].extend([
            instant(0, 60.0, "self_pop", "0xabc"),
            instant(0, 61.0, "merge", "0xabc"),
        ])
        self.assertEqual(self.check(doc), 1)

    def test_unbalanced_park_fails(self):
        doc = valid_doc()
        doc["traceEvents"].append(instant(0, 60.0, "park", "0xbad"))
        self.assertEqual(self.check(doc), 1)

    def test_resume_without_park_fails(self):
        doc = valid_doc()
        doc["traceEvents"].append(instant(1, 60.0, "resume_self", "0xbad"))
        self.assertEqual(self.check(doc), 1)

    def test_missing_root_done_fails(self):
        doc = valid_doc()
        doc["traceEvents"] = [
            ev for ev in doc["traceEvents"] if ev.get("name") != "root_done"
        ]
        self.assertEqual(self.check(doc), 1)

    def test_ring_wrapped_skips_grammar_not_structure(self):
        doc = valid_doc()
        doc["otherData"]["ring_wrapped"] = 1
        doc["traceEvents"].append(instant(1, 60.0, "steal", "0xbad"))
        self.assertEqual(self.check(doc), 0)  # grammar skipped
        doc["traceEvents"].append(slice_x(0, 10.0, 20.0))
        self.assertEqual(self.check(doc), 1)  # structure still enforced

    def test_malformed_json_returns_2(self):
        path = os.path.join(self._dir.name, "garbage.json")
        with open(path, "w", encoding="utf-8") as f:
            f.write("{not json")
        self.assertEqual(trace_check.main([path]), 2)
        self.assertEqual(trace_check.main(["/nonexistent/trace.json"]), 2)
        self.assertEqual(trace_check.main([]), 2)

    def test_non_object_top_level_fails(self):
        path = os.path.join(self._dir.name, "list.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump([1, 2, 3], f)
        self.assertEqual(trace_check.main([path]), 1)


if __name__ == "__main__":
    unittest.main()
