#!/usr/bin/env python3
"""Validate a cilkm Chrome-trace JSON artifact (cilkm_run --trace-out).

Checks two layers:

Structure — the file is one JSON object with a non-empty traceEvents list,
every event's ph is one of M/X/i/C, X slices have non-negative ts/dur and
per-track (tid) slices are time-sorted and non-overlapping, per-track
instants have monotonically non-decreasing timestamps, and counter samples
never decrease (they are cumulative).

Grammar — the scheduler-event protocol the runtime guarantees: every steal
or self_pop instant is immediately followed (same tid, next instant) by a
launch, every park on a frame eventually pairs with exactly one resume
(resume_by_thief or resume_self), and at least one root_done exists.
Grammar checks are skipped when otherData.ring_wrapped is set: a full ring
overwrote its oldest events, so the retained stream may start mid-pair.

Exit status: 0 valid, 1 invalid, 2 unreadable/parse error or usage error.
"""

import json
import sys
from collections import defaultdict

VALID_PH = {"M", "X", "i", "C"}


def _fail(errors, msg):
    errors.append(msg)


def check_structure(doc, errors):
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        _fail(errors, "traceEvents missing or empty")
        return []
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            _fail(errors, f"event {i} is not an object")
            return []
        ph = ev.get("ph")
        if ph not in VALID_PH:
            _fail(errors, f"event {i}: bad ph {ph!r}")
    slices = defaultdict(list)
    instants = defaultdict(list)
    counters = defaultdict(list)
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                _fail(errors, f"event {i}: X slice with bad ts {ts!r}")
                continue
            if not isinstance(dur, (int, float)) or dur < 0:
                _fail(errors, f"event {i}: X slice with bad dur {dur!r}")
                continue
            slices[ev.get("tid")].append((ts, dur, i))
        elif ph == "i":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                _fail(errors, f"event {i}: instant with bad ts {ts!r}")
                continue
            if "name" not in ev:
                _fail(errors, f"event {i}: instant without a name")
                continue
            instants[ev.get("tid")].append((ts, ev, i))
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict):
                _fail(errors, f"event {i}: counter without args")
                continue
            counters[ev.get("name")].append((ev.get("ts", 0), args, i))
    for tid, rows in slices.items():
        for (a_ts, a_dur, a_i), (b_ts, _, b_i) in zip(rows, rows[1:]):
            if b_ts < a_ts:
                _fail(errors,
                      f"tid {tid}: X slices out of order "
                      f"(event {a_i} then {b_i})")
            elif b_ts + 1e-9 < a_ts + a_dur:
                _fail(errors,
                      f"tid {tid}: overlapping X slices "
                      f"(event {a_i} [{a_ts},{a_ts + a_dur}) then "
                      f"event {b_i} at {b_ts})")
    for tid, rows in instants.items():
        for (a_ts, _, a_i), (b_ts, _, b_i) in zip(rows, rows[1:]):
            if b_ts < a_ts:
                _fail(errors,
                      f"tid {tid}: instant timestamps decrease "
                      f"(event {a_i} at {a_ts} then event {b_i} at {b_ts})")
    for name, rows in counters.items():
        prev = {}
        for ts, args, i in rows:
            for key, value in args.items():
                if not isinstance(value, (int, float)):
                    _fail(errors, f"counter {name}: non-numeric {key}")
                elif key in prev and value < prev[key]:
                    _fail(errors,
                          f"counter {name}: {key} decreases at event {i} "
                          f"({prev[key]} -> {value})")
                else:
                    prev[key] = value
    return [(tid, rows) for tid, rows in sorted(instants.items())]


def check_grammar(per_tid_instants, errors):
    saw_root_done = False
    park_balance = defaultdict(int)  # frame -> parks minus resumes
    for tid, rows in per_tid_instants:
        for (ts, ev, i), nxt in zip(rows, list(rows[1:]) + [None]):
            name = ev.get("name")
            frame = (ev.get("args") or {}).get("frame")
            if name == "root_done":
                saw_root_done = True
            elif name in ("steal", "self_pop"):
                nxt_name = nxt[1].get("name") if nxt else None
                if nxt_name != "launch":
                    _fail(errors,
                          f"tid {tid}: {name} at event {i} not followed by "
                          f"launch (got {nxt_name!r})")
            elif name == "park":
                park_balance[frame] += 1
            elif name in ("resume_by_thief", "resume_self"):
                park_balance[frame] -= 1
    # Resumes happen on the resuming worker's tid, parks on the victim's, so
    # balance only holds per frame across all tids.
    for frame, balance in park_balance.items():
        if balance != 0:
            _fail(errors,
                  f"frame {frame}: {'unresumed park' if balance > 0 else 'resume without park'}"
                  f" (balance {balance:+d})")
    if not saw_root_done:
        _fail(errors, "no root_done event")


def main(argv):
    if len(argv) != 1:
        print("usage: trace_check.py TRACE.json", file=sys.stderr)
        return 2
    try:
        with open(argv[0], "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_check: cannot read {argv[0]}: {e}", file=sys.stderr)
        return 2
    if not isinstance(doc, dict):
        print("trace_check: top level is not a JSON object", file=sys.stderr)
        return 1

    errors = []
    per_tid_instants = check_structure(doc, errors)
    ring_wrapped = bool((doc.get("otherData") or {}).get("ring_wrapped"))
    if not errors and per_tid_instants and not ring_wrapped:
        check_grammar(per_tid_instants, errors)
    elif ring_wrapped:
        print("trace_check: ring_wrapped set, skipping grammar checks")

    if errors:
        for msg in errors:
            print(f"trace_check: {msg}", file=sys.stderr)
        print(f"trace_check: {argv[0]}: INVALID ({len(errors)} error(s))",
              file=sys.stderr)
        return 1
    n = len(doc.get("traceEvents", []))
    print(f"trace_check: {argv[0]}: ok ({n} events)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
