// TLMM kernel-design walkthrough, now a registered workload
// (src/workloads/w_tlmm_sim.cpp): sys_palloc / sys_pmap / page-table-walk
// lookups and view transferal by the mapping strategy, on the software TLMM
// subsystem. This shim runs it and self-verifies the merged result.
//
//   $ ./tlmm_sim [workers] [scale]
#include "workloads/driver.hpp"

int main(int argc, char** argv) {
  return cilkm::workloads::example_main("tlmm_sim", argc, argv);
}
