// Kernel-design walkthrough: runs the paper's Section 4–7 machinery on the
// *software* TLMM subsystem (page descriptors + per-thread 4-level page
// tables + sys_pmap), rather than the fast user-space emulation the
// production reducer path uses. Demonstrates, step by step:
//
//   1. sys_palloc-ing physical pages for two workers' private SPA maps,
//   2. sys_pmap-ing them at the SAME virtual address in each worker's TLMM
//      region (same address -> different view, the TLMM property),
//   3. reducer lookups through the simulated page-table walk,
//   4. view transferal via the paper's *mapping* strategy: worker 2 maps
//      worker 1's physical page (by its page descriptor) into its own TLMM
//      region to perform the hypermerge.
//
//   $ ./tlmm_sim
#include <cstdio>

#include "spa/spa_map.hpp"
#include "tlmm/address_space.hpp"

using namespace cilkm;
using namespace cilkm::tlmm;

namespace {

// A toy "view": just a long living in the shared heap region.
struct HeapAllocator {
  AddressSpace& as;
  PageDescriptorManager& pdm;
  std::uint64_t next_va = kTlmmRegionBytes;  // shared region starts here
  std::uint64_t bump = 0;

  std::uint64_t alloc_long(long initial) {
    if (bump == 0 || bump + sizeof(long) > kPageSize) {
      as.map_shared(next_va += kPageSize, pdm.palloc());
      bump = 0;
    }
    const std::uint64_t va = next_va + bump;
    bump += sizeof(long);
    as.write<long>(/*any thread*/ 1, va, initial);
    return va;
  }
};

// A reducer lookup in the simulation: read the slot (one translated access),
// check the view pointer (the predictable branch).
std::uint64_t lookup(AddressSpace& as, ThreadId tid, std::uint64_t tlmm_addr) {
  const auto view_va = as.read<std::uint64_t>(tid, tlmm_addr);
  return view_va;  // 0 = empty slot -> miss path would create an identity
}

}  // namespace

int main() {
  PageDescriptorManager pdm;
  AddressSpace as(pdm);
  as.attach_thread(1);
  as.attach_thread(2);
  HeapAllocator heap{as, pdm};

  std::printf("== TLMM kernel-design walkthrough (software simulation) ==\n");

  // Step 1: each worker allocates a physical page for its private SPA map.
  const std::uint32_t pd_w1 = pdm.palloc();
  const std::uint32_t pd_w2 = pdm.palloc();
  std::printf("sys_palloc: worker1 SPA page pd=%u, worker2 SPA page pd=%u\n",
              pd_w1, pd_w2);

  // Step 2: both map their own page at the SAME virtual address.
  const std::uint64_t spa_base = 64 * kPageSize;  // low end of TLMM region
  const std::uint32_t m1[] = {pd_w1};
  const std::uint32_t m2[] = {pd_w2};
  as.pmap(1, spa_base, m1);
  as.pmap(2, spa_base, m2);
  std::printf("sys_pmap: both workers mapped their page at VA 0x%llx\n",
              static_cast<unsigned long long>(spa_base));

  // A reducer is allocated slot 3 of page 0: its tlmm_addr is the same for
  // every worker, forever.
  const std::uint64_t tlmm_addr = spa_base + spa::slot_offset(0, 3);

  // Step 3: each worker installs and updates its own local view.
  const std::uint64_t view1 = heap.alloc_long(0);
  const std::uint64_t view2 = heap.alloc_long(0);
  as.write<std::uint64_t>(1, tlmm_addr, view1);
  as.write<std::uint64_t>(2, tlmm_addr, view2);

  for (int i = 0; i < 100; ++i) {
    const ThreadId tid = (i % 2) ? 1 : 2;
    const std::uint64_t view_va = lookup(as, tid, tlmm_addr);
    as.write<long>(tid, view_va, as.read<long>(tid, view_va) + 1);
  }
  std::printf("after 100 updates: worker1 view = %ld, worker2 view = %ld "
              "(same tlmm_addr, different views)\n",
              as.read<long>(1, lookup(as, 1, tlmm_addr)),
              as.read<long>(2, lookup(as, 2, tlmm_addr)));

  // Step 4: view transferal by the mapping strategy. Worker 1 terminates
  // its frame; worker 2 maps worker 1's SPA page (published as a page
  // descriptor) into a scratch range of its own TLMM region and merges.
  const std::uint64_t scratch = 4096 * kPageSize;
  const std::uint32_t pub[] = {pd_w1};
  as.pmap(2, scratch, pub);
  const auto left_view_va =
      as.read<std::uint64_t>(2, scratch + spa::slot_offset(0, 3));
  const long left = as.read<long>(2, left_view_va);
  const auto right_view_va = lookup(as, 2, tlmm_addr);
  const long right = as.read<long>(2, right_view_va);
  as.write<long>(2, left_view_va, left + right);  // REDUCE: left ⊗ right
  const std::uint32_t unmap[] = {kPdNull};
  as.pmap(2, scratch, unmap);
  std::printf("hypermerge via mapping strategy: %ld (+) %ld = %ld\n", left,
              right, as.read<long>(2, left_view_va));

  const bool ok = as.read<long>(2, left_view_va) == 100;
  std::printf("final reduced value: %ld — %s\n",
              as.read<long>(2, left_view_va),
              ok ? "matches the 100 serial updates" : "MISMATCH");
  return ok ? 0 : 1;
}
