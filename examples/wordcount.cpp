// Wordcount: a user-defined monoid (map-union with summed counts) plugged
// into the reducer template — the "write your own reducer type" workflow the
// Cilk Plus reducer API supports via IDENTITY and REDUCE overrides.
//
//   $ ./wordcount [workers] [num_sentences]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "util/rng.hpp"

namespace {

struct AddCounts {
  void operator()(std::uint64_t& into, const std::uint64_t& from) const {
    into += from;
  }
};

using WordCountMonoid =
    cilkm::map_union<std::string, std::uint64_t, AddCounts>;

const char* kLexicon[] = {"cilk",   "reducer", "view",     "steal",
                          "worker", "monoid",  "hypermap", "tlmm",
                          "page",   "spa"};

std::vector<std::string> synth_corpus(int sentences) {
  cilkm::Xoshiro256 rng(7);
  std::vector<std::string> corpus;
  corpus.reserve(static_cast<std::size_t>(sentences));
  for (int i = 0; i < sentences; ++i) {
    std::string s;
    const int words = 3 + static_cast<int>(rng.below(10));
    for (int w = 0; w < words; ++w) {
      s += kLexicon[rng.below(std::size(kLexicon))];
      s += ' ';
    }
    corpus.push_back(std::move(s));
  }
  return corpus;
}

void count_words(const std::string& sentence,
                 std::unordered_map<std::string, std::uint64_t>& counts) {
  std::size_t pos = 0;
  while (pos < sentence.size()) {
    const std::size_t space = sentence.find(' ', pos);
    if (space == std::string::npos) break;
    if (space > pos) ++counts[sentence.substr(pos, space - pos)];
    pos = space + 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned workers = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const int sentences = argc > 2 ? std::atoi(argv[2]) : 100000;

  const auto corpus = synth_corpus(sentences);

  cilkm::reducer<WordCountMonoid> counts;
  cilkm::run(workers, [&] {
    cilkm::parallel_for(0, static_cast<std::int64_t>(corpus.size()), 64,
                        [&](std::int64_t i) {
                          count_words(corpus[static_cast<std::size_t>(i)],
                                      counts.view());
                        });
  });

  // Serial oracle.
  std::unordered_map<std::string, std::uint64_t> expect;
  for (const auto& s : corpus) count_words(s, expect);

  const bool ok = counts.get_value() == expect;
  std::printf("wordcount over %d sentences on %u workers — %s\n", sentences,
              workers, ok ? "matches serial count" : "MISMATCH");
  for (const char* word : kLexicon) {
    std::printf("  %-8s %llu\n", word,
                static_cast<unsigned long long>(counts.get_value()[word]));
  }
  return ok ? 0 : 1;
}
