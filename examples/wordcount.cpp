// Wordcount, now a registered workload (src/workloads/w_wordcount.cpp): a
// user-defined map-union monoid plugged into the reducer template. This
// shim runs it under all three view-store policies and self-verifies
// against a serial count.
//
//   $ ./wordcount [workers] [scale]
#include "workloads/driver.hpp"

int main(int argc, char** argv) {
  return cilkm::workloads::example_main("wordcount", argc, argv);
}
