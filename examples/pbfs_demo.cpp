// PBFS demo, now a registered workload (src/workloads/w_pbfs.cpp): parallel
// breadth-first search with bag reducers over an RMAT graph. This shim runs
// it under all three view-store policies and self-verifies against serial
// BFS distances.
//
//   $ ./pbfs_demo [workers] [scale]
#include "workloads/driver.hpp"

int main(int argc, char** argv) {
  return cilkm::workloads::example_main("pbfs", argc, argv);
}
