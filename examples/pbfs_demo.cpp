// PBFS demo: generate an RMAT graph, run parallel breadth-first search with
// bag reducers under both mechanisms, verify against serial BFS, and print
// the layer histogram (paper Section 8's application benchmark).
//
//   $ ./pbfs_demo [workers] [rmat_scale]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "pbfs/pbfs.hpp"
#include "runtime/api.hpp"
#include "util/timing.hpp"

int main(int argc, char** argv) {
  const unsigned workers = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const unsigned scale = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 16;

  using namespace cilkm::pbfs;
  std::printf("generating RMAT graph: scale=%u ...\n", scale);
  const Graph g = rmat(scale, (1ull << scale) * 8, 0.45, 0.22, 0.22, 42);
  std::printf("|V| = %u, |E| = %llu (symmetrised)\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  const auto serial = serial_bfs(g, 0);

  BfsResult mm, hyper;
  const auto t0 = cilkm::now_ns();
  cilkm::run(workers, [&] { mm = pbfs<cilkm::mm_policy>(g, 0); });
  const auto t1 = cilkm::now_ns();
  cilkm::run(workers, [&] { hyper = pbfs<cilkm::hypermap_policy>(g, 0); });
  const auto t2 = cilkm::now_ns();

  const bool ok = mm.dist == serial.dist && hyper.dist == serial.dist;
  std::printf("memory-mapped reducers: %8.2f ms, %llu bag-reducer lookups\n",
              (t1 - t0) / 1e6, static_cast<unsigned long long>(mm.reducer_lookups));
  std::printf("hypermap reducers:      %8.2f ms, %llu bag-reducer lookups\n",
              (t2 - t1) / 1e6,
              static_cast<unsigned long long>(hyper.reducer_lookups));
  std::printf("distances vs serial BFS: %s\n", ok ? "identical" : "MISMATCH");

  // Layer histogram.
  std::vector<std::uint64_t> layer_sizes(serial.num_layers, 0);
  std::uint64_t reached = 0;
  for (const Vertex d : serial.dist) {
    if (d != kUnreached) {
      ++layer_sizes[d];
      ++reached;
    }
  }
  std::printf("reached %llu/%u vertices in %u layers:\n",
              static_cast<unsigned long long>(reached), g.num_vertices(),
              serial.num_layers);
  for (Vertex d = 0; d < serial.num_layers; ++d) {
    std::printf("  layer %2u: %llu\n", d,
                static_cast<unsigned long long>(layer_sizes[d]));
  }
  return ok ? 0 : 1;
}
