// N-queens: the classic Cilk search benchmark, counting solutions with an
// add-reducer and (for the solution list) a vector reducer — demonstrating
// SpawnGroup for irregular fan-out and that the collected solutions come
// back in deterministic serial order.
//
//   $ ./nqueens [workers] [n]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"

namespace {

constexpr int kMaxN = 16;

struct Board {
  int rows[kMaxN];
  int n = 0;

  bool safe(int row, int col) const {
    for (int r = 0; r < row; ++r) {
      const int c = rows[r];
      if (c == col || c - r == col - row || c + r == col + row) return false;
    }
    return true;
  }
};

void solve(Board board, int row, int n,
           cilkm::reducer_opadd<long>& count,
           cilkm::vector_reducer<std::uint64_t>& solutions) {
  if (row == n) {
    *count += 1;
    std::uint64_t packed = 0;
    for (int r = 0; r < n; ++r) {
      packed |= static_cast<std::uint64_t>(board.rows[r]) << (4 * r);
    }
    solutions->push_back(packed);
    return;
  }
  cilkm::SpawnGroup group;
  for (int col = 0; col < n; ++col) {
    if (!board.safe(row, col)) continue;
    Board next = board;
    next.rows[row] = col;
    if (row < 3) {
      // Parallel fan-out near the root; serial below (grain control).
      group.spawn([next, row, n, &count, &solutions] {
        solve(next, row + 1, n, count, solutions);
      });
    } else {
      solve(next, row + 1, n, count, solutions);
    }
  }
  group.sync();
}

long expected(int n) {
  static const long table[] = {1, 1, 0, 0, 2, 10, 4, 40, 92, 352, 724, 2680,
                               14200, 73712, 365596, 2279184, 14772512};
  return n <= 16 ? table[n] : -1;
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned workers = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const int n = argc > 2 ? std::atoi(argv[2]) : 10;
  if (n > kMaxN) {
    std::fprintf(stderr, "n must be <= %d\n", kMaxN);
    return 2;
  }

  cilkm::reducer_opadd<long> count;
  cilkm::vector_reducer<std::uint64_t> solutions;

  cilkm::run(workers, [&] { solve(Board{{}, n}, 0, n, count, solutions); });

  // Serial replay for the determinism check.
  cilkm::reducer_opadd<long> count2;
  cilkm::vector_reducer<std::uint64_t> solutions2;
  solve(Board{{}, n}, 0, n, count2, solutions2);  // outside run: serial

  const bool count_ok = count.get_value() == expected(n);
  const bool order_ok = solutions.get_value() == solutions2.get_value();
  std::printf("%d-queens: %ld solutions on %u workers (expected %ld) — %s\n",
              n, count.get_value(), workers, expected(n),
              count_ok ? "OK" : "WRONG COUNT");
  std::printf("solution list order vs serial replay: %s\n",
              order_ok ? "identical (deterministic)" : "MISMATCH");
  return (count_ok && order_ok) ? 0 : 1;
}
