// N-queens, now a registered workload (src/workloads/w_nqueens.cpp): counts
// solutions with an add-reducer and collects every board into a vector
// reducer in deterministic serial order. This shim runs it under all three
// view-store policies and self-verifies against the serial search.
//
//   $ ./nqueens [workers] [scale]
#include "workloads/driver.hpp"

int main(int argc, char** argv) {
  return cilkm::workloads::example_main("nqueens", argc, argv);
}
