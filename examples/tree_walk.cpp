// The paper's Figure 2: walk a binary tree in parallel and collect, into a
// list reducer, every node that satisfies a property — in exact serial
// (preorder) order, even though the walk is parallel. The incorrect version
// (a plain std::list) would have a determinacy race; the reducer makes the
// parallel code produce the identical list.
//
//   $ ./tree_walk [workers] [num_nodes]
#include <cstdio>
#include <cstdlib>
#include <list>
#include <memory>
#include <vector>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"
#include "util/rng.hpp"

namespace {

struct Node {
  int key;
  Node* left = nullptr;
  Node* right = nullptr;
};

bool has_property(const Node* n) { return n->key % 7 == 0; }

// Build a random binary tree over keys [0, n) with deterministic shape.
Node* build(std::vector<Node>& pool, int lo, int hi, cilkm::Xoshiro256& rng) {
  if (lo >= hi) return nullptr;
  const int mid = lo + static_cast<int>(rng.below(static_cast<std::uint64_t>(hi - lo)));
  Node* n = &pool[static_cast<std::size_t>(mid)];
  n->key = mid;
  n->left = build(pool, lo, mid, rng);
  n->right = build(pool, mid + 1, hi, rng);
  return n;
}

// Figure 2(b), desugared: `cilk_spawn walk(left); walk(right); cilk_sync;`
// becomes fork2join(walk(left), walk(right)).
void walk(const Node* n, cilkm::list_append_reducer<const Node*>& l) {
  if (n != nullptr) {
    if (has_property(n)) l->push_back(n);
    cilkm::fork2join([&] { walk(n->left, l); }, [&] { walk(n->right, l); });
  }
}

void serial_walk(const Node* n, std::list<const Node*>& out) {
  if (n != nullptr) {
    if (has_property(n)) out.push_back(n);
    serial_walk(n->left, out);
    serial_walk(n->right, out);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned workers = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  const int n = argc > 2 ? std::atoi(argv[2]) : 200000;

  std::vector<Node> pool(static_cast<std::size_t>(n));
  cilkm::Xoshiro256 rng(99);
  Node* root = build(pool, 0, n, rng);

  cilkm::list_append_reducer<const Node*> l;
  cilkm::run(workers, [&] { walk(root, l); });

  std::list<const Node*> expect;
  serial_walk(root, expect);

  const bool same = l.get_value() == expect;
  std::printf("tree_walk: %d nodes, %zu matches, %u workers — %s\n", n,
              l.get_value().size(), workers,
              same ? "parallel list identical to serial walk"
                   : "MISMATCH (reducer bug)");
  return same ? 0 : 1;
}
