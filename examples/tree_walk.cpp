// The paper's Figure 2 tree walk, now a registered workload
// (src/workloads/w_tree_walk.cpp): collect matching nodes into a
// list-append reducer in exact serial preorder. This shim runs it under all
// three view-store policies and self-verifies against the serial walk.
//
//   $ ./tree_walk [workers] [scale]
#include "workloads/driver.hpp"

int main(int argc, char** argv) {
  return cilkm::workloads::example_main("tree_walk", argc, argv);
}
