// Quickstart: parallel summation with a memory-mapped reducer.
//
//   $ ./quickstart [workers]
//
// Demonstrates the three core pieces of the public API:
//   1. cilkm::run(P, root)           — execute a task on P workers
//   2. cilkm::parallel_for           — fork-join parallel loop
//   3. cilkm::reducer_opadd<T>       — a race-free "global" accumulator
#include <cstdio>
#include <cstdlib>

#include "reducers/reducers.hpp"
#include "runtime/api.hpp"

int main(int argc, char** argv) {
  const unsigned workers = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 4;
  constexpr std::int64_t kN = 10'000'000;

  // A reducer declared like a global accumulator. Every strand updates its
  // own local view; the runtime folds the views so the final value equals
  // the serial result — no locks, no atomics, no races.
  cilkm::reducer_opadd<long long> sum;

  cilkm::run(workers, [&] {
    cilkm::parallel_for(1, kN + 1, 4096, [&](std::int64_t i) { *sum += i; });
  });

  const long long expect = kN * (kN + 1) / 2;
  std::printf("sum(1..%lld) = %lld (expected %lld) on %u workers — %s\n",
              static_cast<long long>(kN), sum.get_value(), expect, workers,
              sum.get_value() == expect ? "OK" : "MISMATCH");
  return sum.get_value() == expect ? 0 : 1;
}
